//! In-memory multiset tables.
//!
//! A [`Relation`] is a schema plus a bag of tuples. It backs base tables in
//! the catalog, the temporary relation a `GApply` group binds to, and fully
//! materialised query results. Because the whole paper operates under
//! multiset semantics, equality helpers here compare *bags*, not sets or
//! sequences.
//!
//! Storage is *dual-representation*, like [`TupleBatch`]: the builder's
//! layout — row tuples ([`Relation::new`]) or [`ColumnVec`]s
//! ([`Relation::from_columns`]) — stays primary, and the other view
//! ([`rows`] / [`columns`]) is derived lazily on first access and cached.
//! Long-lived base tables get columnified once (a table scan forces it)
//! and every scan batch after that is a dictionary-sharing column slice;
//! transient relations — per-group `GApply` bindings, materialised
//! results headed straight for the tagger — stay row-primary and never
//! pay a transpose in either direction.
//!
//! [`TupleBatch`]: crate::TupleBatch
//! [`rows`]: Relation::rows
//! [`columns`]: Relation::columns

use crate::column::ColumnVec;
use crate::delta::DeltaBatch;
use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::OnceLock;

/// Primary storage: whichever representation the builder handed over.
#[derive(Debug, Clone)]
enum Store {
    Rows(Vec<Tuple>),
    Columns(Vec<ColumnVec>),
}

/// A schema plus a multiset of rows.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    store: Store,
    /// Row count, tracked separately so the zero-width unit relation
    /// (`EXISTS`) still knows its cardinality.
    len: usize,
    /// Lazily transposed row view of a column-primary relation;
    /// invalidated by every mutation.
    rows_cache: OnceLock<Vec<Tuple>>,
    /// Lazily columnified view of a row-primary relation; invalidated
    /// by every mutation.
    cols_cache: OnceLock<Vec<ColumnVec>>,
    /// Monotonically increasing mutation stamp. Every mutating call
    /// (`push`, `sort_by_columns`, `apply_delta`) bumps it, so readers
    /// holding derived state — cached documents, propagated deltas —
    /// can detect that the relation they derived from has moved on.
    version: u64,
}

impl Relation {
    /// An empty row-primary relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation::from_rows_unchecked(schema, Vec::new())
    }

    /// Build a relation, checking every row's arity against the schema.
    /// The hot path is one length compare per row; the rich diagnostic
    /// is only rendered once a row actually mismatches.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Result<Self> {
        let width = schema.len();
        if let Some(i) = rows.iter().position(|r| r.len() != width) {
            return Err(arity_error(&schema, rows[i].len(), i));
        }
        Ok(Relation::from_rows_unchecked(schema, rows))
    }

    /// Build without arity checking (used on hot paths where the caller
    /// constructed the rows against this very schema). Row-primary: the
    /// columnar view is only built if something asks for it.
    pub fn from_rows_unchecked(schema: Schema, rows: Vec<Tuple>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == schema.len()));
        let len = rows.len();
        Relation {
            schema,
            store: Store::Rows(rows),
            len,
            rows_cache: OnceLock::new(),
            cols_cache: OnceLock::new(),
            version: 0,
        }
    }

    /// Build directly from columns (all of length `len`).
    pub fn from_columns(schema: Schema, columns: Vec<ColumnVec>, len: usize) -> Self {
        debug_assert_eq!(columns.len(), schema.len(), "column count mismatch");
        debug_assert!(columns.iter().all(|c| c.len() == len), "column length mismatch");
        Relation {
            schema,
            store: Store::Columns(columns),
            len,
            rows_cache: OnceLock::new(),
            cols_cache: OnceLock::new(),
            version: 0,
        }
    }

    /// The mutation stamp: bumped by every mutating call. Fresh builds
    /// start at 0; two relations with equal versions are *not*
    /// necessarily equal (versions are per-instance), but one instance
    /// observed at two equal versions has not changed in between.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows, in their current physical order; a column-primary
    /// relation transposes on first access and caches the view.
    pub fn rows(&self) -> &[Tuple] {
        match &self.store {
            Store::Rows(rows) => rows,
            Store::Columns(cols) => self.rows_cache.get_or_init(|| transpose(cols, self.len)),
        }
    }

    /// The columns, borrowed; a row-primary relation columnifies on
    /// first access and caches the view (base tables pay this once —
    /// the cache lives as long as the catalog entry).
    pub fn columns(&self) -> &[ColumnVec] {
        match &self.store {
            Store::Columns(cols) => cols,
            Store::Rows(rows) => self.cols_cache.get_or_init(|| columnify(rows, self.schema.len())),
        }
    }

    /// The column at `i`, borrowed.
    pub fn column(&self, i: usize) -> &ColumnVec {
        &self.columns()[i]
    }

    /// The columns, but only if already materialised (column-primary, or
    /// a previously forced columnar view) — never triggers a
    /// columnification. Scans use this to decide between slicing column
    /// vectors and chunking rows.
    pub fn columnar(&self) -> Option<&[ColumnVec]> {
        match &self.store {
            Store::Columns(cols) => Some(cols),
            Store::Rows(_) => self.cols_cache.get().map(Vec::as_slice),
        }
    }

    /// The columns restricted to `range` — what a table scan emits per
    /// batch (string columns share their dictionary with the table).
    /// Forces the columnar view on a row-primary relation.
    pub fn slice_columns(&self, range: std::ops::Range<usize>) -> Vec<ColumnVec> {
        debug_assert!(range.end <= self.len);
        self.columns().iter().map(|c| c.slice(range.clone())).collect()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a row. Panics in debug builds if the arity is wrong.
    pub fn push(&mut self, row: Tuple) {
        debug_assert_eq!(row.len(), self.schema.len());
        match &mut self.store {
            Store::Rows(rows) => rows.push(row),
            Store::Columns(cols) => {
                for (col, v) in cols.iter_mut().zip(row.into_values()) {
                    col.push(v);
                }
            }
        }
        self.len += 1;
        self.version += 1;
        self.rows_cache.take();
        self.cols_cache.take();
    }

    /// Apply a batch of appends and deletes atomically.
    ///
    /// Deletes go first (so a batch can delete a row and append its
    /// replacement), each removing the *first* matching occurrence in
    /// physical order; a delete with no matching row is an error and the
    /// relation is left untouched. Appends extend the primary store in
    /// place — for a dictionary-encoded string column that means
    /// extending the existing `Arc<StrDict>` (copy-on-write only when a
    /// scan still shares it), never rebuilding the dictionary.
    ///
    /// Unlike `push`, the lazily derived row/column caches are *updated*
    /// rather than invalidated: a base table that has already paid its
    /// one-time columnification keeps the columnar view (and its
    /// dictionaries) current instead of re-deriving O(data) state on the
    /// next scan — the point of batched deltas is that cost tracks the
    /// batch, not the table.
    pub fn apply_delta(&mut self, delta: &DeltaBatch) -> Result<()> {
        let width = self.schema.len();
        if let Some(i) = delta.appended.iter().position(|r| r.len() != width) {
            return Err(arity_error(&self.schema, delta.appended[i].len(), i));
        }
        if let Some(i) = delta.deleted.iter().position(|r| r.len() != width) {
            return Err(arity_error(&self.schema, delta.deleted[i].len(), i));
        }
        if delta.is_empty() {
            return Ok(());
        }

        if !delta.deleted.is_empty() {
            // Bag delete: count the requested removals, then scan the
            // rows once building a keep mask that drops the first
            // matching occurrences. Checked *before* any mutation.
            let mut pending: BTreeMap<&Tuple, usize> = BTreeMap::new();
            for t in &delta.deleted {
                *pending.entry(t).or_insert(0) += 1;
            }
            let mut remaining = delta.deleted.len();
            let keep: Vec<bool> = self
                .rows()
                .iter()
                .map(|r| {
                    if remaining > 0 {
                        if let Some(c) = pending.get_mut(r) {
                            if *c > 0 {
                                *c -= 1;
                                remaining -= 1;
                                return false;
                            }
                        }
                    }
                    true
                })
                .collect();
            if remaining > 0 {
                let sample = pending
                    .iter()
                    .find(|(_, c)| **c > 0)
                    .map(|(t, _)| t.to_string())
                    .unwrap_or_default();
                return Err(Error::plan(format!(
                    "delete of {remaining} row(s) not present in the relation, e.g. {sample}"
                )));
            }
            match &mut self.store {
                Store::Rows(rows) => {
                    let mut it = keep.iter();
                    rows.retain(|_| *it.next().expect("mask covers every row"));
                }
                Store::Columns(cols) => {
                    for c in cols.iter_mut() {
                        c.retain(&keep);
                    }
                }
            }
            if let Some(rows) = self.rows_cache.get_mut() {
                let mut it = keep.iter();
                rows.retain(|_| *it.next().expect("mask covers every row"));
            }
            if let Some(cols) = self.cols_cache.get_mut() {
                for c in cols.iter_mut() {
                    c.retain(&keep);
                }
            }
            self.len -= delta.deleted.len();
        }

        for row in &delta.appended {
            match &mut self.store {
                Store::Rows(rows) => rows.push(row.clone()),
                Store::Columns(cols) => {
                    for (c, v) in cols.iter_mut().zip(row.values()) {
                        c.push(v.clone());
                    }
                }
            }
            if let Some(rows) = self.rows_cache.get_mut() {
                rows.push(row.clone());
            }
            if let Some(cols) = self.cols_cache.get_mut() {
                for (c, v) in cols.iter_mut().zip(row.values()) {
                    c.push(v.clone());
                }
            }
        }
        self.len += delta.appended.len();
        self.version += 1;
        Ok(())
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Tuple> {
        match self.store {
            Store::Rows(rows) => rows,
            Store::Columns(cols) => match self.rows_cache.into_inner() {
                Some(rows) => rows,
                None => transpose(&cols, self.len),
            },
        }
    }

    /// Sort rows by the engine-internal total order on the given columns
    /// (ascending). Stable, so it can implement multi-pass ORDER BY.
    /// Computes a stable permutation over the row view, then applies it
    /// to the primary representation (column gather or row permute).
    pub fn sort_by_columns(&mut self, columns: &[usize]) {
        let perm: Vec<usize> = {
            let rows = self.rows();
            let mut perm: Vec<usize> = (0..rows.len()).collect();
            perm.sort_by(|&a, &b| {
                for &c in columns {
                    let ord = rows[a].value(c).total_cmp(rows[b].value(c));
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            perm
        };
        match &mut self.store {
            Store::Rows(rows) => {
                let mut slots: Vec<Option<Tuple>> =
                    std::mem::take(rows).into_iter().map(Some).collect();
                *rows = perm.iter().map(|&i| slots[i].take().expect("permutation")).collect();
            }
            Store::Columns(cols) => {
                *cols = cols.iter().map(|c| c.gather(&perm)).collect();
            }
        }
        self.version += 1;
        self.rows_cache.take();
        self.cols_cache.take();
    }

    /// Multiset (bag) equality: same schema arity and same rows regardless
    /// of order. This is the notion of result equivalence the paper's
    /// Theorems 1 and 2 are stated in, and what every property test checks.
    pub fn bag_eq(&self, other: &Relation) -> bool {
        if self.schema.len() != other.schema.len() || self.len() != other.len() {
            return false;
        }
        let mut counts: BTreeMap<&Tuple, i64> = BTreeMap::new();
        for r in self.rows() {
            *counts.entry(r).or_insert(0) += 1;
        }
        for r in other.rows() {
            match counts.get_mut(r) {
                Some(c) => *c -= 1,
                None => return false,
            }
        }
        counts.values().all(|&c| c == 0)
    }

    /// A short human-readable diff used in assertion messages: rows present
    /// in `self` but not `other` and vice versa (bag difference, truncated).
    pub fn bag_diff(&self, other: &Relation) -> String {
        let mut counts: BTreeMap<&Tuple, i64> = BTreeMap::new();
        for r in self.rows() {
            *counts.entry(r).or_insert(0) += 1;
        }
        for r in other.rows() {
            *counts.entry(r).or_insert(0) -= 1;
        }
        let mut only_left = Vec::new();
        let mut only_right = Vec::new();
        for (t, c) in counts {
            if c > 0 {
                only_left.push(format!("{t}x{c}"));
            } else if c < 0 {
                only_right.push(format!("{t}x{}", -c));
            }
        }
        only_left.truncate(5);
        only_right.truncate(5);
        format!("only-left: [{}]; only-right: [{}]", only_left.join(" "), only_right.join(" "))
    }

    /// Collect the distinct values of one column, sorted. Reads whichever
    /// representation is primary — never forces a conversion.
    pub fn distinct_values(&self, column: usize) -> Vec<Value> {
        let mut vals: Vec<Value> = match self.columnar() {
            Some(cols) => (0..self.len).map(|i| cols[column].get(i)).collect(),
            None => self.rows().iter().map(|r| r.value(column).clone()).collect(),
        };
        vals.sort();
        vals.dedup();
        vals
    }

    /// Render as an ASCII table (for examples and debugging).
    pub fn to_table_string(&self) -> String {
        let headers: Vec<String> =
            self.schema.fields().iter().map(|f| f.qualified_name()).collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows()
            .iter()
            .map(|r| r.values().iter().map(|v| v.render().into_owned()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &rendered {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        out
    }
}

/// Build the row view from columns.
fn transpose(columns: &[ColumnVec], len: usize) -> Vec<Tuple> {
    (0..len).map(|i| Tuple::new(columns.iter().map(|c| c.get(i)).collect())).collect()
}

/// Build the columnar view from rows.
fn columnify(rows: &[Tuple], width: usize) -> Vec<ColumnVec> {
    (0..width)
        .map(|c| ColumnVec::from_values(rows.iter().map(|r| r.value(c).clone()).collect()))
        .collect()
}

/// Rich arity diagnostic, kept off the hot construction path.
#[cold]
#[inline(never)]
fn arity_error(schema: &Schema, row_len: usize, i: usize) -> Error {
    Error::plan(format!(
        "row {i} has {row_len} values but schema {} has {} columns",
        schema,
        schema.len()
    ))
}

impl PartialEq for Relation {
    /// Logical equality: same schema, same row sequence (the physical
    /// representation — rows or columns — does not matter).
    fn eq(&self, other: &Self) -> bool {
        if self.schema != other.schema || self.len != other.len {
            return false;
        }
        if let (Store::Columns(a), Store::Columns(b)) = (&self.store, &other.store) {
            return a == b;
        }
        self.rows() == other.rows()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} rows {}", self.len(), self.schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::Field;
    use crate::value::DataType;

    fn schema2() -> Schema {
        Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Str)])
    }

    #[test]
    fn new_checks_arity() {
        assert!(Relation::new(schema2(), vec![row![1, "a"]]).is_ok());
        let err = Relation::new(schema2(), vec![row![1, "a"], row![1]]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("row 1 has 1 values"), "{msg}");
        assert!(msg.contains("has 2 columns"), "{msg}");
    }

    #[test]
    fn bag_eq_ignores_order_but_not_multiplicity() {
        let a = Relation::new(schema2(), vec![row![1, "a"], row![2, "b"], row![1, "a"]]).unwrap();
        let b = Relation::new(schema2(), vec![row![2, "b"], row![1, "a"], row![1, "a"]]).unwrap();
        assert!(a.bag_eq(&b));
        let c = Relation::new(schema2(), vec![row![1, "a"], row![2, "b"], row![2, "b"]]).unwrap();
        assert!(!a.bag_eq(&c));
        let d = Relation::new(schema2(), vec![row![1, "a"], row![2, "b"]]).unwrap();
        assert!(!a.bag_eq(&d));
    }

    #[test]
    fn bag_diff_reports_both_sides() {
        let a = Relation::new(schema2(), vec![row![1, "a"]]).unwrap();
        let b = Relation::new(schema2(), vec![row![2, "b"]]).unwrap();
        let d = a.bag_diff(&b);
        assert!(d.contains("[1, a]x1"), "{d}");
        assert!(d.contains("[2, b]x1"), "{d}");
    }

    #[test]
    fn sort_by_columns_is_stable() {
        let mut r =
            Relation::new(schema2(), vec![row![2, "x"], row![1, "b"], row![1, "a"], row![2, "a"]])
                .unwrap();
        r.sort_by_columns(&[0]);
        // Ties keep input order: (1,"b") before (1,"a").
        assert_eq!(r.rows()[0], row![1, "b"]);
        assert_eq!(r.rows()[1], row![1, "a"]);
        r.sort_by_columns(&[1]);
        assert_eq!(r.rows()[0], row![1, "a"]);
    }

    #[test]
    fn sort_by_columns_works_on_columnar_relations() {
        let r = Relation::new(schema2(), vec![row![2, "x"], row![1, "b"], row![1, "a"]]).unwrap();
        let mut c = Relation::from_columns(schema2(), r.columns().to_vec(), r.len());
        c.sort_by_columns(&[0]);
        assert_eq!(c.rows(), &[row![1, "b"], row![1, "a"], row![2, "x"]]);
    }

    #[test]
    fn distinct_values_sorted() {
        let r = Relation::new(schema2(), vec![row![3, "a"], row![1, "b"], row![3, "c"]]).unwrap();
        assert_eq!(r.distinct_values(0), vec![Value::Int(1), Value::Int(3)]);
    }

    #[test]
    fn table_rendering() {
        let r = Relation::new(schema2(), vec![row![1, "alice"]]).unwrap();
        let s = r.to_table_string();
        assert!(s.contains("| k | v     |"), "{s}");
        assert!(s.contains("| 1 | alice |"), "{s}");
    }

    #[test]
    fn push_and_into_rows() {
        let mut r = Relation::empty(schema2());
        assert!(r.is_empty());
        r.push(row![1, "a"]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.into_rows(), vec![row![1, "a"]]);
    }

    #[test]
    fn representation_is_lazy_and_mutations_invalidate_caches() {
        let r = Relation::new(schema2(), vec![row![1, "a"], row![2, "b"]]).unwrap();
        assert!(r.columnar().is_none(), "row-primary relation must not pre-columnify");
        assert_eq!(r.column(0).get(1), Value::Int(2)); // force (and cache) the columns
        assert!(r.columnar().is_some());
        let mut c = Relation::from_columns(schema2(), r.columns().to_vec(), r.len());
        assert!(c.columnar().is_some());
        assert_eq!(c.rows().len(), 2); // build the row cache
        c.push(row![3, "c"]);
        assert_eq!(c.rows()[2], row![3, "c"]);
        assert_eq!(c.column(0).get(2), Value::Int(3));
    }

    #[test]
    fn apply_delta_appends_deletes_and_bumps_version() {
        let mut r =
            Relation::new(schema2(), vec![row![1, "a"], row![2, "b"], row![1, "a"]]).unwrap();
        assert_eq!(r.version(), 0);
        let delta = crate::DeltaBatch::new(vec![row![3, "c"]], vec![row![1, "a"]]);
        r.apply_delta(&delta).unwrap();
        assert_eq!(r.version(), 1);
        // Bag delete removes the FIRST matching occurrence; appends land at the end.
        assert_eq!(r.rows(), &[row![2, "b"], row![1, "a"], row![3, "c"]]);
        // Empty batch is a no-op (no version bump).
        r.apply_delta(&crate::DeltaBatch::default()).unwrap();
        assert_eq!(r.version(), 1);
        // Phantom delete: error, relation untouched.
        let err = r.apply_delta(&crate::DeltaBatch::deletes(vec![row![9, "z"]])).unwrap_err();
        assert!(err.to_string().contains("not present"), "{err}");
        assert_eq!(r.version(), 1);
        assert_eq!(r.len(), 3);
        // Arity mismatch is rejected up front.
        assert!(r.apply_delta(&crate::DeltaBatch::appends(vec![row![1]])).is_err());
    }

    #[test]
    fn apply_delta_keeps_derived_caches_coherent() {
        // Row-primary with a forced columnar view (the base-table shape
        // after a first scan): the delta must update the cached columns
        // in place, not leave them stale or force a re-columnification.
        let mut r = Relation::new(schema2(), vec![row![1, "a"], row![2, "b"]]).unwrap();
        let dict_before = {
            let col = r.column(1); // force + cache the columnar view
            std::sync::Arc::as_ptr(col.str_dict().expect("dict-encoded"))
        };
        r.apply_delta(&crate::DeltaBatch::new(vec![row![3, "c"]], vec![row![1, "a"]])).unwrap();
        assert!(r.columnar().is_some(), "columnar cache survives the delta");
        assert_eq!(r.column(0).get(1), Value::Int(3));
        assert_eq!(r.column(1).get(1), Value::str("c"));
        assert_eq!(
            std::sync::Arc::as_ptr(r.column(1).str_dict().unwrap()),
            dict_before,
            "delta append extends the existing dictionary in place"
        );

        // Column-primary with a forced row view: same discipline.
        let base = Relation::new(schema2(), vec![row![1, "a"], row![2, "b"]]).unwrap();
        let mut c = Relation::from_columns(schema2(), base.columns().to_vec(), base.len());
        assert_eq!(c.rows().len(), 2); // force + cache the row view
        c.apply_delta(&crate::DeltaBatch::new(vec![row![4, "d"]], vec![row![2, "b"]])).unwrap();
        assert_eq!(c.rows(), &[row![1, "a"], row![4, "d"]]);
        assert_eq!(c.column(1).get(1), Value::str("d"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn mutating_paths_bump_the_version_stamp() {
        let mut r = Relation::new(schema2(), vec![row![2, "b"], row![1, "a"]]).unwrap();
        r.push(row![3, "c"]);
        assert_eq!(r.version(), 1);
        r.sort_by_columns(&[0]);
        assert_eq!(r.version(), 2);
        assert_eq!(r.rows()[0], row![1, "a"]);
    }

    #[test]
    fn columnar_round_trip_preserves_row_order_and_values() {
        let rows = vec![row![1, "a"], row![2, Value::Null], row![1, "a"]];
        let r = Relation::new(schema2(), rows.clone()).unwrap();
        assert_eq!(r.rows(), &rows[..]);
        assert_eq!(r.slice_columns(1..3)[0].get(0), Value::Int(2));
        let back = Relation::from_columns(schema2(), r.columns().to_vec(), r.len());
        assert_eq!(back, r);
        assert_eq!(back.into_rows(), rows);
    }
}
