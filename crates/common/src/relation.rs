//! In-memory multiset tables.
//!
//! A [`Relation`] is a schema plus a bag of tuples. It backs base tables in
//! the catalog, the temporary relation a `GApply` group binds to, and fully
//! materialised query results. Because the whole paper operates under
//! multiset semantics, equality helpers here compare *bags*, not sets or
//! sequences.

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A schema plus a multiset of rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation { schema, rows: Vec::new() }
    }

    /// Build a relation, checking every row's arity against the schema.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Result<Self> {
        for (i, r) in rows.iter().enumerate() {
            if r.len() != schema.len() {
                return Err(Error::plan(format!(
                    "row {i} has {} values but schema {} has {} columns",
                    r.len(),
                    schema,
                    schema.len()
                )));
            }
        }
        Ok(Relation { schema, rows })
    }

    /// Build without arity checking (used on hot paths where the caller
    /// constructed the rows against this very schema).
    pub fn from_rows_unchecked(schema: Schema, rows: Vec<Tuple>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == schema.len()));
        Relation { schema, rows }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows, in their current physical order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row. Panics in debug builds if the arity is wrong.
    pub fn push(&mut self, row: Tuple) {
        debug_assert_eq!(row.len(), self.schema.len());
        self.rows.push(row);
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Tuple> {
        self.rows
    }

    /// Sort rows by the engine-internal total order on the given columns
    /// (ascending). Stable, so it can implement multi-pass ORDER BY.
    pub fn sort_by_columns(&mut self, columns: &[usize]) {
        self.rows.sort_by(|a, b| {
            for &c in columns {
                let ord = a.value(c).total_cmp(b.value(c));
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    /// Multiset (bag) equality: same schema arity and same rows regardless
    /// of order. This is the notion of result equivalence the paper's
    /// Theorems 1 and 2 are stated in, and what every property test checks.
    pub fn bag_eq(&self, other: &Relation) -> bool {
        if self.schema.len() != other.schema.len() || self.len() != other.len() {
            return false;
        }
        let mut counts: BTreeMap<&Tuple, i64> = BTreeMap::new();
        for r in &self.rows {
            *counts.entry(r).or_insert(0) += 1;
        }
        for r in &other.rows {
            match counts.get_mut(r) {
                Some(c) => *c -= 1,
                None => return false,
            }
        }
        counts.values().all(|&c| c == 0)
    }

    /// A short human-readable diff used in assertion messages: rows present
    /// in `self` but not `other` and vice versa (bag difference, truncated).
    pub fn bag_diff(&self, other: &Relation) -> String {
        let mut counts: BTreeMap<&Tuple, i64> = BTreeMap::new();
        for r in &self.rows {
            *counts.entry(r).or_insert(0) += 1;
        }
        for r in &other.rows {
            *counts.entry(r).or_insert(0) -= 1;
        }
        let mut only_left = Vec::new();
        let mut only_right = Vec::new();
        for (t, c) in counts {
            if c > 0 {
                only_left.push(format!("{t}x{c}"));
            } else if c < 0 {
                only_right.push(format!("{t}x{}", -c));
            }
        }
        only_left.truncate(5);
        only_right.truncate(5);
        format!("only-left: [{}]; only-right: [{}]", only_left.join(" "), only_right.join(" "))
    }

    /// Collect the distinct values of one column, sorted.
    pub fn distinct_values(&self, column: usize) -> Vec<Value> {
        let mut vals: Vec<Value> = self.rows.iter().map(|r| r.value(column).clone()).collect();
        vals.sort();
        vals.dedup();
        vals
    }

    /// Render as an ASCII table (for examples and debugging).
    pub fn to_table_string(&self) -> String {
        let headers: Vec<String> =
            self.schema.fields().iter().map(|f| f.qualified_name()).collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.values().iter().map(|v| v.render().into_owned()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &rendered {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        out
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} rows {}", self.len(), self.schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::Field;
    use crate::value::DataType;

    fn schema2() -> Schema {
        Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Str)])
    }

    #[test]
    fn new_checks_arity() {
        assert!(Relation::new(schema2(), vec![row![1, "a"]]).is_ok());
        assert!(Relation::new(schema2(), vec![row![1]]).is_err());
    }

    #[test]
    fn bag_eq_ignores_order_but_not_multiplicity() {
        let a = Relation::new(schema2(), vec![row![1, "a"], row![2, "b"], row![1, "a"]]).unwrap();
        let b = Relation::new(schema2(), vec![row![2, "b"], row![1, "a"], row![1, "a"]]).unwrap();
        assert!(a.bag_eq(&b));
        let c = Relation::new(schema2(), vec![row![1, "a"], row![2, "b"], row![2, "b"]]).unwrap();
        assert!(!a.bag_eq(&c));
        let d = Relation::new(schema2(), vec![row![1, "a"], row![2, "b"]]).unwrap();
        assert!(!a.bag_eq(&d));
    }

    #[test]
    fn bag_diff_reports_both_sides() {
        let a = Relation::new(schema2(), vec![row![1, "a"]]).unwrap();
        let b = Relation::new(schema2(), vec![row![2, "b"]]).unwrap();
        let d = a.bag_diff(&b);
        assert!(d.contains("[1, a]x1"), "{d}");
        assert!(d.contains("[2, b]x1"), "{d}");
    }

    #[test]
    fn sort_by_columns_is_stable() {
        let mut r =
            Relation::new(schema2(), vec![row![2, "x"], row![1, "b"], row![1, "a"], row![2, "a"]])
                .unwrap();
        r.sort_by_columns(&[0]);
        // Ties keep input order: (1,"b") before (1,"a").
        assert_eq!(r.rows()[0], row![1, "b"]);
        assert_eq!(r.rows()[1], row![1, "a"]);
        r.sort_by_columns(&[1]);
        assert_eq!(r.rows()[0], row![1, "a"]);
    }

    #[test]
    fn distinct_values_sorted() {
        let r = Relation::new(schema2(), vec![row![3, "a"], row![1, "b"], row![3, "c"]]).unwrap();
        assert_eq!(r.distinct_values(0), vec![Value::Int(1), Value::Int(3)]);
    }

    #[test]
    fn table_rendering() {
        let r = Relation::new(schema2(), vec![row![1, "alice"]]).unwrap();
        let s = r.to_table_string();
        assert!(s.contains("| k | v     |"), "{s}");
        assert!(s.contains("| 1 | alice |"), "{s}");
    }

    #[test]
    fn push_and_into_rows() {
        let mut r = Relation::empty(schema2());
        assert!(r.is_empty());
        r.push(row![1, "a"]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.into_rows(), vec![row![1, "a"]]);
    }
}
