//! Workspace-wide error type.
//!
//! Every layer (parser, binder, optimizer, engine, publisher) reports
//! failures through [`Error`]; the variants record which layer raised the
//! problem so end-to-end callers get actionable messages without each crate
//! defining its own error enum.

use std::fmt;

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// The error type shared by all crates in the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexing/parsing failure in the SQL front end. Carries a message and a
    /// 1-based (line, column) position when available.
    Parse { message: String, line: usize, column: usize },
    /// Name resolution or semantic analysis failure (unknown table/column,
    /// ambiguous reference, misuse of aggregates, ...).
    Bind(String),
    /// A logical plan failed validation (schema mismatch, per-group query
    /// containing a disallowed operator, ...).
    Plan(String),
    /// Runtime evaluation failure (type mismatch at execution, division by
    /// zero under strict mode, missing parameter binding, ...).
    Execution(String),
    /// Catalog-level failure (duplicate or missing table).
    Catalog(String),
    /// A problem in the XML publishing layer (view definition, XQuery
    /// translation, or tagging).
    Xml(String),
    /// Feature intentionally outside the reproduced subset.
    Unsupported(String),
}

impl Error {
    /// Shorthand constructor for execution errors.
    pub fn exec(msg: impl Into<String>) -> Self {
        Error::Execution(msg.into())
    }

    /// Shorthand constructor for binder errors.
    pub fn bind(msg: impl Into<String>) -> Self {
        Error::Bind(msg.into())
    }

    /// Shorthand constructor for plan validation errors.
    pub fn plan(msg: impl Into<String>) -> Self {
        Error::Plan(msg.into())
    }

    /// Shorthand constructor for parse errors without position info.
    pub fn parse(msg: impl Into<String>) -> Self {
        Error::Parse { message: msg.into(), line: 0, column: 0 }
    }

    /// Shorthand constructor for parse errors with a source position.
    pub fn parse_at(msg: impl Into<String>, line: usize, column: usize) -> Self {
        Error::Parse { message: msg.into(), line, column }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { message, line, column } => {
                if *line == 0 {
                    write!(f, "parse error: {message}")
                } else {
                    write!(f, "parse error at {line}:{column}: {message}")
                }
            }
            Error::Bind(m) => write!(f, "bind error: {m}"),
            Error::Plan(m) => write!(f, "plan error: {m}"),
            Error::Execution(m) => write!(f, "execution error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Xml(m) => write!(f, "xml error: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_layer() {
        assert_eq!(Error::bind("no such column x").to_string(), "bind error: no such column x");
        assert_eq!(Error::exec("boom").to_string(), "execution error: boom");
        assert_eq!(Error::plan("bad").to_string(), "plan error: bad");
        assert_eq!(Error::Catalog("dup".into()).to_string(), "catalog error: dup");
        assert_eq!(Error::Xml("tag".into()).to_string(), "xml error: tag");
        assert_eq!(Error::Unsupported("cube".into()).to_string(), "unsupported: cube");
    }

    #[test]
    fn parse_error_positions() {
        let e = Error::parse_at("unexpected ','", 3, 14);
        assert_eq!(e.to_string(), "parse error at 3:14: unexpected ','");
        let e = Error::parse("eof");
        assert_eq!(e.to_string(), "parse error: eof");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::bind("x"), Error::bind("x"));
        assert_ne!(Error::bind("x"), Error::plan("x"));
    }
}
