//! Columnar storage: typed column vectors with null bitmaps and
//! dictionary-encoded strings.
//!
//! A [`ColumnVec`] is the physical layout behind [`TupleBatch`] and
//! [`Relation`]: one contiguous vector per column instead of one `Vec`
//! per row. Numeric and boolean columns store their values unboxed with
//! a separate [`NullBitmap`]; string columns are dictionary-encoded
//! (`u32` codes into a shared, reference-counted dictionary) because the
//! TPC-H string columns the paper publishes are highly repetitive.
//! Columns whose values mix classes — including `Int` next to `Float`,
//! which render differently and therefore must never be coerced — fall
//! back to the [`ColumnVec::Mixed`] row-value layout, so the columnar
//! representation is always lossless with respect to [`Value`]s.
//!
//! [`TupleBatch`]: crate::TupleBatch
//! [`Relation`]: crate::Relation

use crate::value::Value;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

/// A validity bitmap: bit *set* means the slot is NULL.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NullBitmap {
    words: Vec<u64>,
    len: usize,
}

impl NullBitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        NullBitmap::default()
    }

    /// A bitmap of `len` valid (non-null) slots.
    pub fn all_valid(len: usize) -> Self {
        NullBitmap { words: vec![0; len.div_ceil(64)], len }
    }

    /// A bitmap of `len` null slots.
    pub fn all_null(len: usize) -> Self {
        let mut words = vec![!0u64; len.div_ceil(64)];
        // Keep the unused tail bits zero so `PartialEq` stays structural.
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= !0u64 >> (64 - len % 64);
            }
        }
        NullBitmap { words, len }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one slot.
    pub fn push(&mut self, null: bool) {
        let (w, b) = (self.len / 64, self.len % 64);
        if w == self.words.len() {
            self.words.push(0);
        }
        if null {
            self.words[w] |= 1 << b;
        }
        self.len += 1;
    }

    /// Is slot `i` NULL?
    pub fn is_null(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Does any slot hold NULL? One word-compare per 64 slots.
    pub fn any_null(&self) -> bool {
        self.words.iter().any(|w| *w != 0)
    }

    /// Keep only the slots whose mask entry is true.
    pub fn retain(&mut self, mask: &[bool]) {
        debug_assert_eq!(mask.len(), self.len);
        let mut out = NullBitmap::new();
        for (i, keep) in mask.iter().enumerate() {
            if *keep {
                out.push(self.is_null(i));
            }
        }
        *self = out;
    }

    /// The sub-bitmap over `range`.
    pub fn slice(&self, range: Range<usize>) -> NullBitmap {
        debug_assert!(range.end <= self.len);
        let mut out = NullBitmap::new();
        for i in range {
            out.push(self.is_null(i));
        }
        out
    }

    /// Append all of `other`'s slots.
    pub fn append(&mut self, other: &NullBitmap) {
        for i in 0..other.len {
            self.push(other.is_null(i));
        }
    }

    /// The slots at `indices`, gathered in order.
    pub fn gather(&self, indices: &[usize]) -> NullBitmap {
        let mut out = NullBitmap::new();
        for &i in indices {
            out.push(self.is_null(i));
        }
        out
    }
}

/// A string dictionary: distinct values plus a reverse lookup. Shared
/// (`Arc`) between a column and its slices, so slicing a dictionary
/// column copies only the codes.
#[derive(Debug, Clone, Default)]
pub struct StrDict {
    values: Vec<Arc<str>>,
    lookup: HashMap<Arc<str>, u32>,
}

impl StrDict {
    /// The code for `s`, interning it on first sight.
    fn intern(&mut self, s: Arc<str>) -> u32 {
        if let Some(&code) = self.lookup.get(&s) {
            return code;
        }
        let code = self.values.len() as u32;
        self.values.push(s.clone());
        self.lookup.insert(s, code);
        code
    }

    /// The string behind `code`.
    pub fn value(&self, code: u32) -> &Arc<str> {
        &self.values[code as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Value class a typed column can specialise on. `Int` and `Float` are
/// deliberately distinct: `Value::render` distinguishes them (`2` vs
/// `2.0`), so coercing one into the other would change published XML.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Bool,
    Int,
    Float,
    Str,
}

fn class_of(v: &Value) -> Option<Class> {
    match v {
        Value::Null => None,
        Value::Bool(_) => Some(Class::Bool),
        Value::Int(_) => Some(Class::Int),
        Value::Float(_) => Some(Class::Float),
        Value::Str(_) => Some(Class::Str),
    }
}

/// One typed column of values.
///
/// Equality is *logical* (same length, same [`Value`] at every slot), so
/// a `Mixed` column equals the typed column holding the same values.
#[derive(Debug, Clone)]
pub enum ColumnVec {
    /// 64-bit integers with a null bitmap.
    Int { data: Vec<i64>, nulls: NullBitmap },
    /// 64-bit floats with a null bitmap. Bit patterns are preserved
    /// exactly (no normalisation), so round-tripping is loss-free.
    Float { data: Vec<f64>, nulls: NullBitmap },
    /// Booleans with a null bitmap.
    Bool { data: Vec<bool>, nulls: NullBitmap },
    /// Dictionary-encoded strings: `codes[i]` indexes into `dict` (the
    /// code under a set null bit is meaningless and never read).
    Str { dict: Arc<StrDict>, codes: Vec<u32>, nulls: NullBitmap },
    /// A column that is entirely NULL.
    Null { len: usize },
    /// Fallback for columns mixing value classes: plain row values.
    Mixed(Vec<Value>),
}

impl ColumnVec {
    /// Build the best-fitting representation for `values`: a typed
    /// vector when every non-null value shares one class, `Null` when
    /// all values are NULL, `Mixed` otherwise.
    pub fn from_values(values: Vec<Value>) -> ColumnVec {
        let mut class = None;
        for v in &values {
            match (class, class_of(v)) {
                (_, None) => {}
                (None, c) => class = c,
                (Some(a), Some(b)) if a == b => {}
                _ => return ColumnVec::Mixed(values),
            }
        }
        match class {
            None => ColumnVec::Null { len: values.len() },
            Some(Class::Int) => {
                let mut data = Vec::with_capacity(values.len());
                let mut nulls = NullBitmap::new();
                for v in values {
                    match v {
                        Value::Int(i) => {
                            data.push(i);
                            nulls.push(false);
                        }
                        _ => {
                            data.push(0);
                            nulls.push(true);
                        }
                    }
                }
                ColumnVec::Int { data, nulls }
            }
            Some(Class::Float) => {
                let mut data = Vec::with_capacity(values.len());
                let mut nulls = NullBitmap::new();
                for v in values {
                    match v {
                        Value::Float(f) => {
                            data.push(f);
                            nulls.push(false);
                        }
                        _ => {
                            data.push(0.0);
                            nulls.push(true);
                        }
                    }
                }
                ColumnVec::Float { data, nulls }
            }
            Some(Class::Bool) => {
                let mut data = Vec::with_capacity(values.len());
                let mut nulls = NullBitmap::new();
                for v in values {
                    match v {
                        Value::Bool(b) => {
                            data.push(b);
                            nulls.push(false);
                        }
                        _ => {
                            data.push(false);
                            nulls.push(true);
                        }
                    }
                }
                ColumnVec::Bool { data, nulls }
            }
            Some(Class::Str) => {
                let mut dict = StrDict::default();
                let mut codes = Vec::with_capacity(values.len());
                let mut nulls = NullBitmap::new();
                for v in values {
                    match v {
                        Value::Str(s) => {
                            codes.push(dict.intern(s));
                            nulls.push(false);
                        }
                        _ => {
                            codes.push(0);
                            nulls.push(true);
                        }
                    }
                }
                ColumnVec::Str { dict: Arc::new(dict), codes, nulls }
            }
        }
    }

    /// A column of `len` copies of `v`.
    pub fn broadcast(v: Value, len: usize) -> ColumnVec {
        match v {
            Value::Null => ColumnVec::Null { len },
            Value::Int(i) => {
                ColumnVec::Int { data: vec![i; len], nulls: NullBitmap::all_valid(len) }
            }
            Value::Float(f) => {
                ColumnVec::Float { data: vec![f; len], nulls: NullBitmap::all_valid(len) }
            }
            Value::Bool(b) => {
                ColumnVec::Bool { data: vec![b; len], nulls: NullBitmap::all_valid(len) }
            }
            Value::Str(s) => {
                let mut dict = StrDict::default();
                let code = dict.intern(s);
                ColumnVec::Str {
                    dict: Arc::new(dict),
                    codes: vec![code; len],
                    nulls: NullBitmap::all_valid(len),
                }
            }
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Int { data, .. } => data.len(),
            ColumnVec::Float { data, .. } => data.len(),
            ColumnVec::Bool { data, .. } => data.len(),
            ColumnVec::Str { codes, .. } => codes.len(),
            ColumnVec::Null { len } => *len,
            ColumnVec::Mixed(v) => v.len(),
        }
    }

    /// Whether the column covers no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at slot `i` (cloned; string payloads are `Arc` bumps).
    pub fn get(&self, i: usize) -> Value {
        match self {
            ColumnVec::Int { data, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Int(data[i])
                }
            }
            ColumnVec::Float { data, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Float(data[i])
                }
            }
            ColumnVec::Bool { data, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Bool(data[i])
                }
            }
            ColumnVec::Str { dict, codes, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Str(dict.value(codes[i]).clone())
                }
            }
            ColumnVec::Null { len } => {
                debug_assert!(i < *len);
                Value::Null
            }
            ColumnVec::Mixed(v) => v[i].clone(),
        }
    }

    /// Is the value at slot `i` NULL?
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            ColumnVec::Int { nulls, .. }
            | ColumnVec::Float { nulls, .. }
            | ColumnVec::Bool { nulls, .. }
            | ColumnVec::Str { nulls, .. } => nulls.is_null(i),
            ColumnVec::Null { .. } => true,
            ColumnVec::Mixed(v) => matches!(v[i], Value::Null),
        }
    }

    /// Does the column hold any NULL? Cheap for typed columns (bitmap
    /// word scan).
    pub fn any_null(&self) -> bool {
        match self {
            ColumnVec::Int { nulls, .. }
            | ColumnVec::Float { nulls, .. }
            | ColumnVec::Bool { nulls, .. }
            | ColumnVec::Str { nulls, .. } => nulls.any_null(),
            ColumnVec::Null { len } => *len > 0,
            ColumnVec::Mixed(v) => v.iter().any(|x| matches!(x, Value::Null)),
        }
    }

    /// Append one value, degrading to `Mixed` on a class mismatch.
    pub fn push(&mut self, v: Value) {
        match (&mut *self, v) {
            (ColumnVec::Int { data, nulls }, Value::Int(i)) => {
                data.push(i);
                nulls.push(false);
            }
            (ColumnVec::Int { data, nulls }, Value::Null) => {
                data.push(0);
                nulls.push(true);
            }
            (ColumnVec::Float { data, nulls }, Value::Float(f)) => {
                data.push(f);
                nulls.push(false);
            }
            (ColumnVec::Float { data, nulls }, Value::Null) => {
                data.push(0.0);
                nulls.push(true);
            }
            (ColumnVec::Bool { data, nulls }, Value::Bool(b)) => {
                data.push(b);
                nulls.push(false);
            }
            (ColumnVec::Bool { data, nulls }, Value::Null) => {
                data.push(false);
                nulls.push(true);
            }
            (ColumnVec::Str { dict, codes, nulls }, Value::Str(s)) => {
                codes.push(Arc::make_mut(dict).intern(s));
                nulls.push(false);
            }
            (ColumnVec::Str { codes, nulls, .. }, Value::Null) => {
                codes.push(0);
                nulls.push(true);
            }
            (ColumnVec::Null { len }, Value::Null) => *len += 1,
            (ColumnVec::Null { len }, other) => {
                // First non-null value after a run of NULLs: rebuild as
                // a typed column carrying the leading nulls.
                let mut values = vec![Value::Null; *len];
                values.push(other);
                *self = ColumnVec::from_values(values);
            }
            (ColumnVec::Mixed(vals), other) => vals.push(other),
            (this, other) => {
                // Class mismatch: degrade to the row-value layout.
                let mut vals = this.take_values();
                vals.push(other);
                *this = ColumnVec::Mixed(vals);
            }
        }
    }

    /// Consume into plain values.
    pub fn into_values(self) -> Vec<Value> {
        match self {
            ColumnVec::Mixed(v) => v,
            other => (0..other.len()).map(|i| other.get(i)).collect(),
        }
    }

    /// Drain into plain values, leaving an empty column behind.
    fn take_values(&mut self) -> Vec<Value> {
        std::mem::replace(self, ColumnVec::Null { len: 0 }).into_values()
    }

    /// Keep only the slots whose mask entry is true.
    pub fn retain(&mut self, mask: &[bool]) {
        debug_assert_eq!(mask.len(), self.len(), "selection mask length mismatch");
        match self {
            ColumnVec::Int { data, nulls } => {
                compact(data, mask);
                nulls.retain(mask);
            }
            ColumnVec::Float { data, nulls } => {
                compact(data, mask);
                nulls.retain(mask);
            }
            ColumnVec::Bool { data, nulls } => {
                compact(data, mask);
                nulls.retain(mask);
            }
            ColumnVec::Str { codes, nulls, .. } => {
                compact(codes, mask);
                nulls.retain(mask);
            }
            ColumnVec::Null { len } => *len = mask.iter().filter(|k| **k).count(),
            ColumnVec::Mixed(vals) => {
                let mut i = 0;
                vals.retain(|_| {
                    let keep = mask[i];
                    i += 1;
                    keep
                });
            }
        }
    }

    /// The sub-column over `range`. String slices share the dictionary.
    pub fn slice(&self, range: Range<usize>) -> ColumnVec {
        match self {
            ColumnVec::Int { data, nulls } => {
                ColumnVec::Int { data: data[range.clone()].to_vec(), nulls: nulls.slice(range) }
            }
            ColumnVec::Float { data, nulls } => {
                ColumnVec::Float { data: data[range.clone()].to_vec(), nulls: nulls.slice(range) }
            }
            ColumnVec::Bool { data, nulls } => {
                ColumnVec::Bool { data: data[range.clone()].to_vec(), nulls: nulls.slice(range) }
            }
            ColumnVec::Str { dict, codes, nulls } => ColumnVec::Str {
                dict: dict.clone(),
                codes: codes[range.clone()].to_vec(),
                nulls: nulls.slice(range),
            },
            ColumnVec::Null { .. } => ColumnVec::Null { len: range.len() },
            ColumnVec::Mixed(vals) => ColumnVec::Mixed(vals[range].to_vec()),
        }
    }

    /// The slots at `indices`, gathered in order (the sort/permutation
    /// primitive). String gathers share the dictionary.
    pub fn gather(&self, indices: &[usize]) -> ColumnVec {
        match self {
            ColumnVec::Int { data, nulls } => ColumnVec::Int {
                data: indices.iter().map(|&i| data[i]).collect(),
                nulls: nulls.gather(indices),
            },
            ColumnVec::Float { data, nulls } => ColumnVec::Float {
                data: indices.iter().map(|&i| data[i]).collect(),
                nulls: nulls.gather(indices),
            },
            ColumnVec::Bool { data, nulls } => ColumnVec::Bool {
                data: indices.iter().map(|&i| data[i]).collect(),
                nulls: nulls.gather(indices),
            },
            ColumnVec::Str { dict, codes, nulls } => ColumnVec::Str {
                dict: dict.clone(),
                codes: indices.iter().map(|&i| codes[i]).collect(),
                nulls: nulls.gather(indices),
            },
            ColumnVec::Null { .. } => ColumnVec::Null { len: indices.len() },
            ColumnVec::Mixed(vals) => {
                ColumnVec::Mixed(indices.iter().map(|&i| vals[i].clone()).collect())
            }
        }
    }

    /// Append all of `other` (the morsel-merge primitive), degrading to
    /// `Mixed` when the classes differ.
    pub fn append(&mut self, other: ColumnVec) {
        if self.is_empty() {
            *self = other;
            return;
        }
        if other.is_empty() {
            return;
        }
        match (&mut *self, other) {
            (ColumnVec::Null { len }, ColumnVec::Null { len: l2 }) => *len += l2,
            (ColumnVec::Int { data, nulls }, ColumnVec::Int { data: d2, nulls: n2 }) => {
                data.extend(d2);
                nulls.append(&n2);
            }
            (ColumnVec::Float { data, nulls }, ColumnVec::Float { data: d2, nulls: n2 }) => {
                data.extend(d2);
                nulls.append(&n2);
            }
            (ColumnVec::Bool { data, nulls }, ColumnVec::Bool { data: d2, nulls: n2 }) => {
                data.extend(d2);
                nulls.append(&n2);
            }
            (
                ColumnVec::Str { dict, codes, nulls },
                ColumnVec::Str { dict: d2, codes: c2, nulls: n2 },
            ) => {
                if Arc::ptr_eq(dict, &d2) {
                    codes.extend(c2);
                } else {
                    let d = Arc::make_mut(dict);
                    let remap: Vec<u32> = d2.values.iter().map(|s| d.intern(s.clone())).collect();
                    codes.extend(c2.into_iter().map(|c| remap[c as usize]));
                }
                nulls.append(&n2);
            }
            (ColumnVec::Mixed(vals), other) => vals.extend(other.into_values()),
            (this, other) => {
                let mut vals = this.take_values();
                vals.extend(other.into_values());
                *this = ColumnVec::Mixed(vals);
            }
        }
    }

    /// The dictionary behind a `Str` column, `None` for every other
    /// representation. Exposed so callers (and the append-path perf
    /// tests) can check dictionary *identity*: appends must extend the
    /// existing `Arc<StrDict>` in place — copy-on-write only when a
    /// scan slice still shares it — never rebuild it per batch.
    pub fn str_dict(&self) -> Option<&Arc<StrDict>> {
        match self {
            ColumnVec::Str { dict, .. } => Some(dict),
            _ => None,
        }
    }
}

/// Keep `data[i]` exactly when `mask[i]`, in place.
fn compact<T: Copy>(data: &mut Vec<T>, mask: &[bool]) {
    let mut w = 0;
    for (i, keep) in mask.iter().enumerate() {
        if *keep {
            data[w] = data[i];
            w += 1;
        }
    }
    data.truncate(w);
}

impl PartialEq for ColumnVec {
    /// Logical equality: same length and same value at every slot,
    /// regardless of physical representation.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && (0..self.len()).all(|i| self.get(i) == other.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(col: &ColumnVec) -> Vec<Value> {
        (0..col.len()).map(|i| col.get(i)).collect()
    }

    #[test]
    fn typed_round_trip_preserves_values() {
        let cases = vec![
            vec![Value::Int(1), Value::Null, Value::Int(-3)],
            vec![Value::Float(1.5), Value::Float(-0.0), Value::Null],
            vec![Value::Bool(true), Value::Null, Value::Bool(false)],
            vec![Value::str("a"), Value::str("b"), Value::str("a"), Value::Null],
            vec![Value::Null, Value::Null],
            vec![],
        ];
        for case in cases {
            let col = ColumnVec::from_values(case.clone());
            assert_eq!(vals(&col), case);
            assert_eq!(col.clone().into_values(), case);
        }
    }

    #[test]
    fn int_next_to_float_stays_mixed_not_promoted() {
        let case = vec![Value::Int(2), Value::Float(2.0)];
        let col = ColumnVec::from_values(case.clone());
        assert!(matches!(col, ColumnVec::Mixed(_)), "{col:?}");
        // Rendering must survive: 2 vs 2.0 are distinct documents.
        assert_eq!(col.get(0).render(), "2");
        assert_eq!(col.get(1).render(), "2.0");
    }

    #[test]
    fn strings_are_dictionary_encoded() {
        let col = ColumnVec::from_values(vec![
            Value::str("x"),
            Value::str("y"),
            Value::str("x"),
            Value::str("x"),
        ]);
        match &col {
            ColumnVec::Str { dict, codes, .. } => {
                assert_eq!(dict.len(), 2);
                assert_eq!(codes, &vec![0, 1, 0, 0]);
            }
            other => panic!("expected dictionary column, got {other:?}"),
        }
    }

    #[test]
    fn push_degrades_on_class_mismatch() {
        let mut col = ColumnVec::from_values(vec![Value::Int(1)]);
        col.push(Value::str("oops"));
        assert_eq!(vals(&col), vec![Value::Int(1), Value::str("oops")]);
        let mut nulls = ColumnVec::from_values(vec![Value::Null, Value::Null]);
        nulls.push(Value::Int(7));
        assert_eq!(vals(&nulls), vec![Value::Null, Value::Null, Value::Int(7)]);
    }

    #[test]
    fn retain_slice_gather_agree_with_row_semantics() {
        let case = vec![Value::str("a"), Value::Null, Value::str("c"), Value::str("a")];
        let mut col = ColumnVec::from_values(case.clone());
        assert_eq!(vals(&col.slice(1..3)), vec![Value::Null, Value::str("c")]);
        assert_eq!(
            vals(&col.gather(&[3, 0, 3])),
            vec![Value::str("a"), Value::str("a"), Value::str("a")]
        );
        col.retain(&[true, false, true, false]);
        assert_eq!(vals(&col), vec![Value::str("a"), Value::str("c")]);
    }

    #[test]
    fn append_merges_dictionaries_and_degrades_cleanly() {
        let mut a = ColumnVec::from_values(vec![Value::str("a"), Value::str("b")]);
        let b = ColumnVec::from_values(vec![Value::str("b"), Value::str("c")]);
        a.append(b);
        assert_eq!(
            vals(&a),
            vec![Value::str("a"), Value::str("b"), Value::str("b"), Value::str("c")]
        );
        let mut ints = ColumnVec::from_values(vec![Value::Int(1)]);
        ints.append(ColumnVec::from_values(vec![Value::Float(2.5)]));
        assert_eq!(vals(&ints), vec![Value::Int(1), Value::Float(2.5)]);
    }

    #[test]
    fn logical_equality_ignores_representation() {
        let typed = ColumnVec::from_values(vec![Value::Int(1), Value::Null]);
        let mixed = ColumnVec::Mixed(vec![Value::Int(1), Value::Null]);
        assert_eq!(typed, mixed);
    }

    #[test]
    fn str_append_path_extends_dict_in_place() {
        // The update workload's append path: pushing rows into a string
        // column must extend the existing dictionary, not rebuild it.
        // With sole ownership the Arc is mutated in place — identity
        // (pointer) is preserved across appends, known and novel alike.
        let mut col = ColumnVec::from_values(vec![Value::str("a"), Value::str("b")]);
        let before = Arc::as_ptr(col.str_dict().expect("string column"));
        for v in ["a", "c", "d", "a", "e"] {
            col.push(Value::str(v));
        }
        let dict = col.str_dict().expect("still a string column");
        assert_eq!(Arc::as_ptr(dict), before, "append must not rebuild the dictionary");
        assert_eq!(dict.len(), 5, "distinct strings interned incrementally");
        assert_eq!(col.get(6), Value::str("e"));

        // Copy-on-write kicks in exactly when a scan slice shares the
        // dictionary: the next push clones once, after which the column
        // owns its dict uniquely again and identity is stable anew.
        let slice = col.slice(0..3);
        assert!(Arc::ptr_eq(col.str_dict().unwrap(), slice.str_dict().unwrap()));
        col.push(Value::str("f"));
        let forked = Arc::as_ptr(col.str_dict().unwrap());
        assert_ne!(forked, Arc::as_ptr(slice.str_dict().unwrap()), "COW forked the shared dict");
        col.push(Value::str("g"));
        assert_eq!(Arc::as_ptr(col.str_dict().unwrap()), forked, "unique again: no more clones");
        // Deletes compact codes but never touch the dictionary.
        let keep: Vec<bool> = (0..col.len()).map(|i| i % 2 == 0).collect();
        col.retain(&keep);
        assert_eq!(Arc::as_ptr(col.str_dict().unwrap()), forked);
    }

    #[test]
    fn null_bitmap_word_boundaries() {
        let mut bm = NullBitmap::new();
        for i in 0..130 {
            bm.push(i % 3 == 0);
        }
        for i in 0..130 {
            assert_eq!(bm.is_null(i), i % 3 == 0, "slot {i}");
        }
        assert!(bm.any_null());
        assert!(!NullBitmap::all_valid(200).any_null());
        let an = NullBitmap::all_null(70);
        assert!((0..70).all(|i| an.is_null(i)));
        assert_eq!(an, {
            let mut b = NullBitmap::new();
            for _ in 0..70 {
                b.push(true);
            }
            b
        });
    }
}
