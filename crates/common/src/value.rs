//! SQL values with NULL, total ordering, and hashing.
//!
//! The engine is dynamically typed at execution time: every cell is a
//! [`Value`]. Three design points matter for the rest of the system:
//!
//! 1. **NULL is a first-class value.** Comparison *expressions* follow SQL
//!    three-valued logic (implemented in the `expr` crate); the ordering
//!    implemented here is the engine-internal *total* order used by sort,
//!    distinct and grouping, where NULL sorts first and groups with itself —
//!    matching SQL `GROUP BY`/`ORDER BY` semantics.
//! 2. **Floats participate in grouping.** `Value` implements `Eq`/`Hash` by
//!    hashing the IEEE bit pattern (with `-0.0` normalised to `0.0` and all
//!    NaNs collapsed), so hash partitioning in `GApply` works on any key.
//! 3. **Arithmetic coerces Int → Float** like SQL numeric towers do.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The static type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
    /// The type of a column that is always NULL (e.g. padding columns in a
    /// sorted outer union). Coercible to every other type.
    Null,
}

impl DataType {
    /// Whether a value of type `other` can be stored in a column of `self`
    /// without an explicit cast. NULL coerces to anything; Int widens to
    /// Float.
    pub fn accepts(self, other: DataType) -> bool {
        self == other
            || other == DataType::Null
            || self == DataType::Null
            || (self == DataType::Float && other == DataType::Int)
    }

    /// The common supertype of two types, if any. Used when typing UNION
    /// branches and CASE arms.
    pub fn unify(self, other: DataType) -> Option<DataType> {
        match (self, other) {
            (a, b) if a == b => Some(a),
            (DataType::Null, t) | (t, DataType::Null) => Some(t),
            (DataType::Int, DataType::Float) | (DataType::Float, DataType::Int) => {
                Some(DataType::Float)
            }
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Null => "null",
        };
        f.write_str(s)
    }
}

/// A single dynamically typed SQL value.
///
/// Strings are reference counted so tuples can be cloned cheaply when the
/// engine replicates group keys across per-group query results.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// The dynamic type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
        }
    }

    /// True iff this value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as a boolean, if possible. NULL yields `None`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Interpret as an integer, if the value is an Int.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view: Int and Float both widen to f64. Used by arithmetic
    /// and aggregates.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Interpret as a string slice, if the value is a Str.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The engine-internal total order: NULL < Bool < numbers < Str, with
    /// Int and Float compared numerically in one class and NaN sorting
    /// above all other floats. This is the order used by `ORDER BY`,
    /// `DISTINCT` and sort-based partitioning.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn class(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (a, b) => class(a).cmp(&class(b)),
        }
    }

    /// Render the value the way result tables and the XML tagger print it.
    /// NULL prints as the empty marker `NULL`; floats keep a decimal point.
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Null => Cow::Borrowed("NULL"),
            Value::Bool(b) => Cow::Borrowed(if *b { "true" } else { "false" }),
            Value::Int(i) => Cow::Owned(i.to_string()),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
                    Cow::Owned(format!("{f:.1}"))
                } else {
                    Cow::Owned(f.to_string())
                }
            }
            Value::Str(s) => Cow::Borrowed(s),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Int and Float must hash identically when they compare equal
            // (e.g. 1 and 1.0 group together), so hash the numeric class
            // through the float bit pattern when the value is integral.
            Value::Int(i) => {
                state.write_u8(2);
                hash_f64(*i as f64, state);
            }
            Value::Float(f) => {
                state.write_u8(2);
                hash_f64(*f, state);
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
        }
    }
}

/// Hash a float by bit pattern with `-0.0` folded into `0.0` and all NaN
/// payloads collapsed, so `Hash` is consistent with `total_cmp`-equality
/// for the values the engine actually produces.
fn hash_f64<H: Hasher>(f: f64, state: &mut H) {
    let f = if f == 0.0 { 0.0 } else { f };
    let bits = if f.is_nan() { f64::NAN.to_bits() } else { f.to_bits() };
    state.write_u64(bits);
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn total_order_classes() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-3),
            Value::Float(0.5),
            Value::Int(2),
            Value::str("a"),
            Value::str("b"),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{} should sort before {}", w[0], w[1]);
        }
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn nan_sorts_last_among_floats_and_equals_itself() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
        assert_eq!(hash_of(&Value::Float(f64::NAN)), hash_of(&Value::Float(-f64::NAN)));
        assert_eq!(hash_of(&Value::str("x")), hash_of(&Value::Str("x".into())));
    }

    #[test]
    fn negative_zero_ordering_and_hash() {
        // total_cmp distinguishes -0.0 < 0.0 per IEEE totalOrder. Hashing
        // folds them together, which keeps the Eq/Hash contract (equal
        // values hash equal) while letting hash grouping treat them as one
        // bucket; sort-based and hash-based partitioning still agree
        // because the generator and arithmetic never produce -0.0 keys.
        assert_eq!(Value::Float(-0.0).total_cmp(&Value::Float(0.0)), Ordering::Less);
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
    }

    #[test]
    fn datatype_unify() {
        assert_eq!(DataType::Int.unify(DataType::Float), Some(DataType::Float));
        assert_eq!(DataType::Null.unify(DataType::Str), Some(DataType::Str));
        assert_eq!(DataType::Int.unify(DataType::Int), Some(DataType::Int));
        assert_eq!(DataType::Bool.unify(DataType::Str), None);
    }

    #[test]
    fn datatype_accepts() {
        assert!(DataType::Float.accepts(DataType::Int));
        assert!(DataType::Str.accepts(DataType::Null));
        assert!(!DataType::Int.accepts(DataType::Str));
    }

    #[test]
    fn render_formats() {
        assert_eq!(Value::Null.render(), "NULL");
        assert_eq!(Value::Int(42).render(), "42");
        assert_eq!(Value::Float(3.0).render(), "3.0");
        assert_eq!(Value::Float(3.25).render(), "3.25");
        assert_eq!(Value::Bool(true).render(), "true");
        assert_eq!(Value::str("hi").render(), "hi");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(String::from("s")), Value::str("s"));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::Float(4.5).as_f64(), Some(4.5));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Null.as_bool(), None);
        assert_eq!(Value::Int(9).as_int(), Some(9));
        assert_eq!(Value::str("y").as_str(), Some("y"));
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }
}
