//! Batched updates to a [`Relation`].
//!
//! A [`DeltaBatch`] is the unit of change in the update workload: a set
//! of rows to append plus a set of rows to delete, applied atomically by
//! [`Relation::apply_delta`]. Deletes use *bag* semantics — each deleted
//! tuple removes exactly one matching occurrence, and it is an error for
//! the occurrence not to exist (the paper's publishing model assumes the
//! relational store enforces its own integrity; a phantom delete means
//! the caller's view of the table has diverged).
//!
//! Deltas carry whole tuples rather than keys or positions so that the
//! engine can propagate them through relational operators the same way
//! it propagates base rows: a delta *is* a small relation over the same
//! schema (see `xmlpub_engine::delta`).
//!
//! [`Relation`]: crate::Relation
//! [`Relation::apply_delta`]: crate::Relation::apply_delta

use crate::tuple::Tuple;

/// A batch of row-level changes against one relation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaBatch {
    /// Rows to add to the bag.
    pub appended: Vec<Tuple>,
    /// Rows to remove from the bag (one occurrence each).
    pub deleted: Vec<Tuple>,
}

impl DeltaBatch {
    /// A batch with both appends and deletes.
    pub fn new(appended: Vec<Tuple>, deleted: Vec<Tuple>) -> Self {
        DeltaBatch { appended, deleted }
    }

    /// An append-only batch.
    pub fn appends(rows: Vec<Tuple>) -> Self {
        DeltaBatch { appended: rows, deleted: Vec::new() }
    }

    /// A delete-only batch.
    pub fn deletes(rows: Vec<Tuple>) -> Self {
        DeltaBatch { appended: Vec::new(), deleted: rows }
    }

    /// Total number of row changes (appends plus deletes).
    pub fn len(&self) -> usize {
        self.appended.len() + self.deleted.len()
    }

    /// True when the batch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.appended.is_empty() && self.deleted.is_empty()
    }

    /// Every row the batch touches — appended and deleted alike. Delta
    /// propagation works on this union: a subtree is dirty if any of its
    /// input tuples appeared on either side of a change.
    pub fn touched(&self) -> impl Iterator<Item = &Tuple> {
        self.appended.iter().chain(self.deleted.iter())
    }

    /// Fold another batch into this one (later changes append after
    /// earlier ones, matching sequential application).
    pub fn merge(&mut self, other: DeltaBatch) {
        self.appended.extend(other.appended);
        self.deleted.extend(other.deleted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn batch_shape_helpers() {
        let b = DeltaBatch::new(vec![row![1]], vec![row![2], row![3]]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(DeltaBatch::default().is_empty());
        assert_eq!(DeltaBatch::appends(vec![row![1]]).deleted.len(), 0);
        assert_eq!(DeltaBatch::deletes(vec![row![1]]).appended.len(), 0);
        assert_eq!(b.touched().count(), 3);
    }

    #[test]
    fn merge_concatenates_in_order() {
        let mut a = DeltaBatch::appends(vec![row![1]]);
        a.merge(DeltaBatch::new(vec![row![2]], vec![row![9]]));
        assert_eq!(a.appended, vec![row![1], row![2]]);
        assert_eq!(a.deleted, vec![row![9]]);
    }
}
