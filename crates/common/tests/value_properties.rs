//! Property tests for the value model: the engine-internal total order
//! must actually be total, and hashing must agree with equality —
//! otherwise sort- and hash-based GApply partitioning could disagree.

use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use xmlpub_common::{row, DataType, Field, Relation, Schema, Value};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats plus the awkward specials.
        prop_oneof![
            (-1e12f64..1e12).prop_map(Value::Float),
            Just(Value::Float(0.0)),
            Just(Value::Float(-0.0)),
            Just(Value::Float(f64::INFINITY)),
            Just(Value::Float(f64::NEG_INFINITY)),
            Just(Value::Float(f64::NAN)),
        ],
        "[a-z]{0,8}".prop_map(Value::str),
    ]
}

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #[test]
    fn total_order_is_total_and_antisymmetric(a in value_strategy(), b in value_strategy()) {
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Equal {
            prop_assert_eq!(hash_of(&a), hash_of(&b), "equal values must hash equal");
        }
    }

    #[test]
    fn total_order_is_transitive(
        a in value_strategy(),
        b in value_strategy(),
        c in value_strategy(),
    ) {
        let mut v = [a, b, c];
        v.sort();
        prop_assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2]);
    }

    #[test]
    fn reflexive_equality(a in value_strategy()) {
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }

    #[test]
    fn bag_eq_is_order_insensitive(rows in proptest::collection::vec(
        (any::<i8>(), 0..5i64), 0..20
    )) {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ]);
        let tuples: Vec<_> = rows.iter().map(|(a, b)| row![*a as i64, *b]).collect();
        let mut shuffled = tuples.clone();
        shuffled.reverse();
        let r1 = Relation::new(schema.clone(), tuples).unwrap();
        let r2 = Relation::new(schema, shuffled).unwrap();
        prop_assert!(r1.bag_eq(&r2));
        prop_assert!(r2.bag_eq(&r1));
    }

    #[test]
    fn bag_eq_detects_any_single_change(rows in proptest::collection::vec(0..10i64, 1..15)) {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        let tuples: Vec<_> = rows.iter().map(|a| row![*a]).collect();
        let mut altered = tuples.clone();
        altered[0] = row![99];
        let r1 = Relation::new(schema.clone(), tuples).unwrap();
        let r2 = Relation::new(schema, altered).unwrap();
        prop_assert!(!r1.bag_eq(&r2));
    }
}
