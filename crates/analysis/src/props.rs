//! The property lattice: what the analyzer knows about one operator's
//! output.
//!
//! Every element is conservative in the same direction — *absence* of a
//! fact is always sound, *presence* is a promise. `bottom(arity)` (no
//! keys, no FDs, no order, everything nullable, cardinality `[0, ∞)`)
//! is therefore the safe fallback for any operator or input the
//! analyzer does not understand.

use std::fmt;
use xmlpub_common::ColumnSet;

/// Cardinality interval `[lo, hi]`; `hi = None` means unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CardRange {
    /// Minimum number of rows the operator can produce.
    pub lo: u64,
    /// Maximum number of rows, if bounded.
    pub hi: Option<u64>,
}

impl CardRange {
    /// The unknown interval `[0, ∞)`.
    pub fn unknown() -> Self {
        CardRange { lo: 0, hi: None }
    }

    /// Exactly `n` rows.
    pub fn exact(n: u64) -> Self {
        CardRange { lo: n, hi: Some(n) }
    }

    /// `[lo, hi]`.
    pub fn between(lo: u64, hi: u64) -> Self {
        CardRange { lo, hi: Some(hi) }
    }

    /// Does `n` fall inside the interval?
    pub fn contains(&self, n: u64) -> bool {
        n >= self.lo && self.hi.is_none_or(|h| n <= h)
    }

    /// Do two intervals share at least one point?
    pub fn intersects(&self, other: &CardRange) -> bool {
        self.hi.is_none_or(|h| other.lo <= h) && other.hi.is_none_or(|h| self.lo <= h)
    }

    /// Interval sum (for UNION ALL).
    pub fn plus(self, other: CardRange) -> CardRange {
        CardRange {
            lo: self.lo.saturating_add(other.lo),
            hi: self.hi.zip(other.hi).map(|(a, b)| a.saturating_add(b)),
        }
    }

    /// Interval product (for cross/apply-style combination).
    pub fn times(self, other: CardRange) -> CardRange {
        CardRange {
            lo: self.lo.saturating_mul(other.lo),
            hi: self.hi.zip(other.hi).map(|(a, b)| a.saturating_mul(b)),
        }
    }

    /// Clamp the lower bound to zero (filtering may drop every row).
    pub fn filtered(self) -> CardRange {
        CardRange { lo: 0, hi: self.hi }
    }
}

impl fmt::Display for CardRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.hi {
            Some(h) => write!(f, "[{}, {}]", self.lo, h),
            None => write!(f, "[{}, *)", self.lo),
        }
    }
}

/// One component of a derived sort order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderKey {
    /// Output column the stream is ordered on.
    pub col: usize,
    /// Ascending (`true`) or descending.
    pub asc: bool,
}

impl OrderKey {
    /// Ascending order on `col`.
    pub fn asc(col: usize) -> Self {
        OrderKey { col, asc: true }
    }
}

impl fmt::Display for OrderKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}{}", self.col, if self.asc { "" } else { " desc" })
    }
}

/// A functional dependency `determinant → dependents` over output
/// columns: rows that agree on every determinant column agree on every
/// dependent column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fd {
    /// Left-hand side.
    pub determinant: ColumnSet,
    /// Right-hand side.
    pub dependents: ColumnSet,
}

/// Everything the analyzer knows about one operator's output stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanProperties {
    /// Number of output columns.
    pub arity: usize,
    /// Candidate keys: no two output rows agree on all columns of any
    /// listed set. The empty set is a valid key meaning "at most one
    /// row". Kept (approximately) minimal and capped at [`MAX_KEYS`].
    pub keys: Vec<ColumnSet>,
    /// Known functional dependencies (keys are not repeated here).
    pub fds: Vec<Fd>,
    /// Derived sort order: the stream is sorted lexicographically by
    /// these columns (prefix subsumption: sorted by `[a, b]` implies
    /// sorted by `[a]`).
    pub order: Vec<OrderKey>,
    /// `nullable[i]` is `false` only if column `i` provably never
    /// yields NULL.
    pub nullable: Vec<bool>,
    /// Row-count interval.
    pub cardinality: CardRange,
}

/// Cap on tracked candidate keys: join transfer functions union keys
/// pairwise, so an uncapped set could grow multiplicatively with plan
/// depth. Dropping keys is always sound.
pub const MAX_KEYS: usize = 8;

impl PlanProperties {
    /// The no-information element for a given arity.
    pub fn bottom(arity: usize) -> Self {
        PlanProperties {
            arity,
            keys: Vec::new(),
            fds: Vec::new(),
            order: Vec::new(),
            nullable: vec![true; arity],
            cardinality: CardRange::unknown(),
        }
    }

    /// Add a candidate key, preserving (approximate) minimality: the
    /// new key is dropped if a subset is already known, and known
    /// supersets of the new key are removed.
    pub fn add_key(&mut self, key: ColumnSet) {
        if self.keys.iter().any(|k| k.is_subset(&key)) {
            return;
        }
        self.keys.retain(|k| !key.is_subset(k));
        if self.keys.len() < MAX_KEYS {
            self.keys.push(key);
        }
    }

    /// Is some known candidate key fully contained in `cols`? If so,
    /// `cols` functionally determines the whole row — e.g. an equi-join
    /// on `cols` matches at most one row of this side per probe.
    pub fn has_key_within(&self, cols: &ColumnSet) -> bool {
        self.keys.iter().any(|k| k.is_subset(cols))
    }

    /// Does the derived order satisfy `required` by prefix subsumption
    /// (i.e. is `required` a prefix of the derived order)?
    pub fn order_satisfies(&self, required: &[OrderKey]) -> bool {
        required.len() <= self.order.len() && required.iter().zip(&self.order).all(|(r, d)| r == d)
    }

    /// One-line summary used by `\props` and diagnostics.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        if self.keys.is_empty() {
            out.push_str("keys={}");
        } else {
            out.push_str("keys={");
            for (i, k) in self.keys.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(&k.to_string());
            }
            out.push('}');
        }
        out.push_str(" order=[");
        for (i, o) in self.order.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&o.to_string());
        }
        out.push_str("] rows=");
        out.push_str(&self.cardinality.to_string());
        let nonnull: ColumnSet = (0..self.arity).filter(|&i| !self.nullable[i]).collect();
        if !nonnull.is_empty() {
            out.push_str(" nonnull=");
            out.push_str(&nonnull.to_string());
        }
        out
    }
}

impl fmt::Display for PlanProperties {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(cols: &[usize]) -> ColumnSet {
        cols.iter().copied().collect()
    }

    #[test]
    fn key_minimality() {
        let mut p = PlanProperties::bottom(4);
        p.add_key(cs(&[0, 1]));
        p.add_key(cs(&[0, 1, 2])); // superset: ignored
        assert_eq!(p.keys.len(), 1);
        p.add_key(cs(&[1])); // subset: replaces {0,1}
        assert_eq!(p.keys, vec![cs(&[1])]);
        assert!(p.has_key_within(&cs(&[1, 3])));
        assert!(!p.has_key_within(&cs(&[0, 3])));
    }

    #[test]
    fn empty_key_means_at_most_one_row() {
        let mut p = PlanProperties::bottom(2);
        p.add_key(ColumnSet::new());
        assert!(p.has_key_within(&ColumnSet::new()));
        assert!(p.has_key_within(&cs(&[0])));
    }

    #[test]
    fn order_prefix_subsumption() {
        let mut p = PlanProperties::bottom(3);
        p.order = vec![OrderKey::asc(0), OrderKey::asc(1)];
        assert!(p.order_satisfies(&[OrderKey::asc(0)]));
        assert!(p.order_satisfies(&[OrderKey::asc(0), OrderKey::asc(1)]));
        assert!(!p.order_satisfies(&[OrderKey::asc(1)]));
        assert!(!p.order_satisfies(&[OrderKey::asc(0), OrderKey { col: 1, asc: false }]));
        assert!(!p.order_satisfies(&[OrderKey::asc(0), OrderKey::asc(1), OrderKey::asc(2)]));
    }

    #[test]
    fn card_arithmetic() {
        let a = CardRange::between(2, 5);
        let b = CardRange::exact(3);
        assert_eq!(a.plus(b), CardRange::between(5, 8));
        assert_eq!(a.times(b), CardRange::between(6, 15));
        let unb = CardRange::unknown();
        assert_eq!(a.times(unb), CardRange { lo: 0, hi: None });
        assert!(a.contains(5));
        assert!(!a.contains(6));
        assert!(a.intersects(&CardRange::between(5, 9)));
        assert!(!a.intersects(&CardRange::between(6, 9)));
        assert!(unb.intersects(&a));
    }
}
