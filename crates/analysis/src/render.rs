//! EXPLAIN-style rendering of a plan annotated with derived properties
//! (the CLI's `\props` command).

use crate::catalog::CatalogProperties;
use crate::derive::{derive_in_group, GroupAmbient};
use xmlpub_algebra::LogicalPlan;

/// Render the plan tree with one `~ props` annotation per operator,
/// mirroring [`LogicalPlan::explain`] (including the `per-group:`
/// marker for GApply).
pub fn explain_with_properties(plan: &LogicalPlan, catalog: &CatalogProperties) -> String {
    let mut out = String::new();
    render(plan, catalog, None, &mut out, 0);
    out
}

fn render(
    plan: &LogicalPlan,
    catalog: &CatalogProperties,
    group: Option<&GroupAmbient>,
    out: &mut String,
    depth: usize,
) {
    let props = match group {
        Some(g) => derive_in_group(plan, catalog, g),
        None => crate::derive::derive(plan, catalog),
    };
    out.push_str(&"  ".repeat(depth));
    out.push_str(&plan.label());
    out.push('\n');
    out.push_str(&"  ".repeat(depth + 1));
    out.push_str("~ ");
    out.push_str(&props.summary());
    out.push('\n');
    match plan {
        LogicalPlan::GApply { input, group_cols, pgq } => {
            render(input, catalog, group, out, depth + 1);
            out.push_str(&"  ".repeat(depth + 1));
            out.push_str("per-group:\n");
            let ambient = GroupAmbient {
                props: plan_input_props(input, catalog, group),
                group_cols: group_cols.iter().copied().collect(),
            };
            render(pgq, catalog, Some(&ambient), out, depth + 2);
        }
        _ => {
            for c in plan.children() {
                render(c, catalog, group, out, depth + 1);
            }
        }
    }
}

fn plan_input_props(
    input: &LogicalPlan,
    catalog: &CatalogProperties,
    group: Option<&GroupAmbient>,
) -> crate::props::PlanProperties {
    match group {
        Some(g) => derive_in_group(input, catalog, g),
        None => crate::derive::derive(input, catalog),
    }
}
