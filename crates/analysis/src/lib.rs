//! # xmlpub-analysis
//!
//! Whole-plan property inference: a bottom-up abstract interpretation
//! over [`xmlpub_algebra::LogicalPlan`] that derives, per operator,
//!
//! * candidate **keys** and **functional dependencies** (seeded from
//!   catalog primary/foreign keys),
//! * the maintained **sort order** (with prefix subsumption),
//! * per-column **nullability**, and
//! * a **cardinality interval** `[lo, hi]`.
//!
//! The derivation is deliberately conservative: every fact it states is
//! a promise, every fact it forgets is sound. Consumers:
//!
//! * the optimizer gates rule side conditions on derived properties and
//!   records the [`Claim`]s each firing consumed,
//! * the lint `properties` pass re-derives claims independently and
//!   attributes violations to the guilty rule,
//! * the engine's `XMLPUB_CHECK_PROPS=1` mode asserts derived
//!   properties against actual batches at runtime.
//!
//! See `docs/analysis.md` for the lattice and the per-operator transfer
//! functions.

pub mod catalog;
pub mod claim;
pub mod derive;
pub mod props;
pub mod render;

pub use catalog::{CatalogProperties, ResolvedForeignKey, TableProperties};
pub use claim::{Claim, ClaimKind, ClaimSubject};
pub use derive::{derive, derive_at, derive_in_group, GroupAmbient};
pub use props::{CardRange, Fd, OrderKey, PlanProperties};
pub use render::explain_with_properties;
