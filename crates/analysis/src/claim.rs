//! Property claims: the facts an optimizer rule states it relied on.
//!
//! When a rule fires it records one [`Claim`] per side condition it
//! consumed from the analyzer. Claims are checked *independently* by
//! the lint properties pass, which re-derives the claimed property from
//! scratch and attributes any mismatch to the claiming rule — so a
//! broken transfer function (or a rule inventing a key) is caught at
//! rewrite time, not at execution time.

use crate::catalog::CatalogProperties;
use crate::derive::derive_at;
use std::fmt;
use xmlpub_algebra::LogicalPlan;
use xmlpub_common::ColumnSet;

/// Which plan a claim's path points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimSubject {
    /// The plan the rule matched on (pre-rewrite).
    Input,
    /// The plan the rule produced.
    Output,
}

impl fmt::Display for ClaimSubject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ClaimSubject::Input => "input",
            ClaimSubject::Output => "output",
        })
    }
}

/// The property being claimed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClaimKind {
    /// The addressed node has a candidate key contained in the given
    /// column set (so equi-matching on those columns hits ≤ 1 row).
    KeyWithin(ColumnSet),
}

impl fmt::Display for ClaimKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClaimKind::KeyWithin(cols) => write!(f, "key within {cols}"),
        }
    }
}

/// One side condition a rule firing consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Claim {
    /// Plan the path addresses.
    pub subject: ClaimSubject,
    /// Child-index path from that plan's root ([`LogicalPlan::children`]
    /// order) to the node the property is about.
    pub at: Vec<usize>,
    /// The claimed property.
    pub kind: ClaimKind,
    /// Human-readable reason the rule needed it.
    pub note: &'static str,
}

impl Claim {
    /// A key-containment claim.
    pub fn key_within(
        subject: ClaimSubject,
        at: Vec<usize>,
        cols: ColumnSet,
        note: &'static str,
    ) -> Self {
        Claim { subject, at, kind: ClaimKind::KeyWithin(cols), note }
    }

    /// Re-derive the claimed property and check entailment. `before`
    /// and `after` are the rule's matched and produced plans.
    pub fn check(
        &self,
        before: &LogicalPlan,
        after: &LogicalPlan,
        catalog: &CatalogProperties,
    ) -> std::result::Result<(), String> {
        let root = match self.subject {
            ClaimSubject::Input => before,
            ClaimSubject::Output => after,
        };
        let Some(props) = derive_at(root, &self.at, catalog) else {
            return Err(format!(
                "claim path {} does not resolve in the {} plan",
                path_display(&self.at),
                self.subject
            ));
        };
        match &self.kind {
            ClaimKind::KeyWithin(cols) => {
                if props.has_key_within(cols) {
                    Ok(())
                } else {
                    Err(format!(
                        "claimed {} at {} of the {} plan, but derivation found keys {} ({})",
                        self.kind,
                        path_display(&self.at),
                        self.subject,
                        keys_display(&props.keys),
                        self.note,
                    ))
                }
            }
        }
    }
}

impl fmt::Display for Claim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} at {} — {}", self.subject, self.kind, path_display(&self.at), self.note)
    }
}

fn path_display(path: &[usize]) -> String {
    let mut out = String::from("$");
    for p in path {
        out.push('.');
        out.push_str(&p.to_string());
    }
    out
}

fn keys_display(keys: &[ColumnSet]) -> String {
    if keys.is_empty() {
        return "{}".to_string();
    }
    let parts: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_algebra::TableDef;
    use xmlpub_common::{row, DataType, Field, Relation, Schema};

    fn schema() -> Schema {
        Schema::new(vec![Field::new("a", DataType::Int), Field::new("b", DataType::Int)])
    }

    fn props() -> CatalogProperties {
        let mut cat = xmlpub_algebra::Catalog::new();
        cat.register(
            TableDef::new("t", schema()).with_primary_key(&["a"]),
            Relation::new(schema(), vec![row![1, 2]]).unwrap(),
        )
        .unwrap();
        CatalogProperties::from_catalog(&cat)
    }

    #[test]
    fn claim_checks_against_rederivation() {
        let plan = LogicalPlan::scan("t", schema()).distinct();
        let good = Claim::key_within(
            ClaimSubject::Output,
            vec![0],
            std::iter::once(0).collect(),
            "scan key",
        );
        assert!(good.check(&plan, &plan, &props()).is_ok());

        let bad = Claim::key_within(
            ClaimSubject::Output,
            vec![0],
            std::iter::once(1).collect(),
            "not a key",
        );
        let err = bad.check(&plan, &plan, &props()).unwrap_err();
        assert!(err.contains("key within {#1}"), "{err}");

        let lost =
            Claim::key_within(ClaimSubject::Input, vec![0, 0, 0], ColumnSet::new(), "bad path");
        assert!(lost.check(&plan, &plan, &props()).unwrap_err().contains("does not resolve"));
    }

    #[test]
    fn claim_displays_readably() {
        let c = Claim::key_within(
            ClaimSubject::Input,
            vec![0, 1],
            std::iter::once(2).collect(),
            "join key",
        );
        assert_eq!(c.to_string(), "input key within {#2} at $.0.1 — join key");
    }
}
