//! Bottom-up property derivation: one transfer function per logical
//! operator.
//!
//! Every function here maps input [`PlanProperties`] to output
//! properties, erring on the side of *forgetting* facts. The only
//! context threaded through the recursion is the optional
//! [`GroupAmbient`] — what a `GroupScan` leaf is allowed to assume
//! about the group relation the nearest enclosing `GApply` binds.

use crate::catalog::CatalogProperties;
use crate::props::{CardRange, Fd, OrderKey, PlanProperties};
use xmlpub_algebra::{LogicalPlan, ProjectItem, SortKey};
use xmlpub_common::ColumnSet;
use xmlpub_expr::{conjuncts, AggFunc, BinOp, Expr, UnaryOp};

/// What the analyzer knows about the group relation bound by the
/// nearest enclosing `GApply`: the properties of the GApply's input
/// (each group is a sub-bag of it, so keys, FDs and nullability carry
/// over) plus the grouping columns (constant within a group).
#[derive(Debug, Clone)]
pub struct GroupAmbient {
    /// Properties of the enclosing GApply's input stream.
    pub props: PlanProperties,
    /// Grouping columns of the enclosing GApply (indices into that
    /// input's schema).
    pub group_cols: ColumnSet,
}

/// Derive the properties of a top-level plan (no enclosing GApply).
pub fn derive(plan: &LogicalPlan, catalog: &CatalogProperties) -> PlanProperties {
    derive_with(plan, catalog, None)
}

/// Derive the properties of a per-group query under a known group
/// binding.
pub fn derive_in_group(
    plan: &LogicalPlan,
    catalog: &CatalogProperties,
    ambient: &GroupAmbient,
) -> PlanProperties {
    derive_with(plan, catalog, Some(ambient))
}

/// Derive the properties of the node addressed by `path` (child
/// indices from the root, [`LogicalPlan::children`] order), tracking
/// the GApply group binding along the way. `None` if the path does not
/// resolve.
pub fn derive_at(
    root: &LogicalPlan,
    path: &[usize],
    catalog: &CatalogProperties,
) -> Option<PlanProperties> {
    fn go(
        plan: &LogicalPlan,
        path: &[usize],
        catalog: &CatalogProperties,
        group: Option<&GroupAmbient>,
    ) -> Option<PlanProperties> {
        let Some((&idx, rest)) = path.split_first() else {
            return Some(derive_with(plan, catalog, group));
        };
        // Descending into a GApply's per-group query (child 1) swaps
        // the ambient group binding.
        if let LogicalPlan::GApply { input, group_cols, pgq } = plan {
            if idx == 1 {
                let ambient = GroupAmbient {
                    props: derive_with(input, catalog, group),
                    group_cols: group_cols.iter().copied().collect(),
                };
                return go(pgq, rest, catalog, Some(&ambient));
            }
        }
        go(*plan.children().get(idx)?, rest, catalog, group)
    }
    go(root, path, catalog, None)
}

fn derive_with(
    plan: &LogicalPlan,
    catalog: &CatalogProperties,
    group: Option<&GroupAmbient>,
) -> PlanProperties {
    match plan {
        LogicalPlan::Scan { table, schema } => {
            let mut p = PlanProperties::bottom(schema.len());
            if let Some(t) = catalog.table(table) {
                p.cardinality = CardRange::exact(t.rows);
                if let Some(key) = &t.key {
                    p.fds.push(Fd {
                        determinant: key.clone(),
                        dependents: ColumnSet::all(schema.len()).difference(key),
                    });
                    p.add_key(key.clone());
                }
            }
            p
        }
        LogicalPlan::GroupScan { schema } => match group {
            // Each group is a non-empty sub-bag of the GApply input:
            // keys, FDs and nullability carry over; the grouping
            // columns are constant within the group (FD ∅ → gcols).
            Some(g) if g.props.arity == schema.len() => {
                let mut p = g.props.clone();
                p.order = Vec::new();
                p.cardinality = CardRange { lo: 1, hi: g.props.cardinality.hi };
                if !g.group_cols.is_empty() {
                    p.fds.push(Fd {
                        determinant: ColumnSet::new(),
                        dependents: g.group_cols.clone(),
                    });
                }
                p
            }
            _ => PlanProperties::bottom(schema.len()),
        },
        LogicalPlan::Select { input, predicate } => {
            let mut p = derive_with(input, catalog, group);
            p.cardinality = p.cardinality.filtered();
            mark_nonnull_from_predicate(predicate, &mut p.nullable);
            p
        }
        LogicalPlan::Project { input, items } => {
            derive_project(&derive_with(input, catalog, group), items)
        }
        LogicalPlan::Join { left, right, predicate, fk_left_to_right } => derive_join(
            &derive_with(left, catalog, group),
            &derive_with(right, catalog, group),
            JoinShape { left, right, predicate, fk_flag: *fk_left_to_right, outer: false },
            catalog,
        ),
        LogicalPlan::LeftOuterJoin { left, right, predicate } => derive_join(
            &derive_with(left, catalog, group),
            &derive_with(right, catalog, group),
            JoinShape { left, right, predicate, fk_flag: false, outer: true },
            catalog,
        ),
        LogicalPlan::GApply { input, group_cols, pgq } => {
            let in_props = derive_with(input, catalog, group);
            let ambient = GroupAmbient {
                props: in_props.clone(),
                group_cols: group_cols.iter().copied().collect(),
            };
            let pgq_props = derive_with(pgq, catalog, Some(&ambient));
            derive_gapply(&in_props, group_cols, &pgq_props)
        }
        LogicalPlan::GroupBy { input, keys, aggs } => {
            let in_props = derive_with(input, catalog, group);
            let mut p = PlanProperties::bottom(keys.len() + aggs.len());
            p.add_key((0..keys.len()).collect());
            p.fds.push(Fd {
                determinant: (0..keys.len()).collect(),
                dependents: (keys.len()..p.arity).collect(),
            });
            for (out, &k) in keys.iter().enumerate() {
                p.nullable[out] = in_props.nullable[k];
            }
            for (i, agg) in aggs.iter().enumerate() {
                p.nullable[keys.len() + i] = !is_count_family(agg.func);
            }
            // One row per distinct key combination: at most one row per
            // input row, at least one group when the input is non-empty.
            p.cardinality = CardRange {
                lo: u64::from(in_props.cardinality.lo > 0),
                hi: in_props.cardinality.hi,
            };
            p
        }
        LogicalPlan::ScalarAgg { input, aggs } => {
            // Always exactly one row, even on empty input.
            let _ = derive_with(input, catalog, group);
            let mut p = PlanProperties::bottom(aggs.len());
            p.add_key(ColumnSet::new());
            for (i, agg) in aggs.iter().enumerate() {
                p.nullable[i] = !is_count_family(agg.func);
            }
            p.cardinality = CardRange::exact(1);
            p
        }
        LogicalPlan::UnionAll { inputs } => {
            let arity = plan.schema().len();
            let mut p = PlanProperties::bottom(arity);
            let mut card = CardRange::exact(0);
            let mut nullable = vec![false; arity];
            for branch in inputs {
                let bp = derive_with(branch, catalog, group);
                card = card.plus(bp.cardinality);
                for (i, n) in nullable.iter_mut().enumerate() {
                    *n = *n || bp.nullable.get(i).copied().unwrap_or(true);
                }
            }
            p.cardinality = card;
            p.nullable = nullable;
            p
        }
        LogicalPlan::Distinct { input } => {
            let mut p = derive_with(input, catalog, group);
            p.add_key(ColumnSet::all(p.arity));
            p.order = Vec::new(); // hash-based: physical order destroyed
            p.cardinality = CardRange { lo: u64::from(p.cardinality.lo > 0), hi: p.cardinality.hi };
            p
        }
        LogicalPlan::OrderBy { input, keys } => {
            let mut p = derive_with(input, catalog, group);
            p.order = derived_order(keys);
            p
        }
        LogicalPlan::Apply { outer, inner, mode } => {
            let o = derive_with(outer, catalog, group);
            // Inner properties hold per evaluation; correlated refs are
            // opaque values, so the per-evaluation derivation is sound
            // for every outer row.
            let i = derive_with(inner, catalog, group);
            derive_apply(&o, &i, *mode)
        }
        LogicalPlan::Exists { input, .. } => {
            let _ = derive_with(input, catalog, group);
            let mut p = PlanProperties::bottom(0);
            p.add_key(ColumnSet::new());
            p.cardinality = CardRange::between(0, 1);
            p
        }
    }
}

// ---- Per-operator helpers ----------------------------------------------

fn derive_project(input: &PlanProperties, items: &[ProjectItem]) -> PlanProperties {
    let mut p = PlanProperties::bottom(items.len());
    // Map each input column to its *first* bare pass-through position.
    let mut col_map: Vec<Option<usize>> = vec![None; input.arity];
    for (out, item) in items.iter().enumerate() {
        if let Expr::Column(c) = &item.expr {
            if *c < input.arity && col_map[*c].is_none() {
                col_map[*c] = Some(out);
            }
        }
    }
    let remap = |c: usize| col_map.get(c).copied().flatten();
    for key in &input.keys {
        let k = key.remap(remap);
        if k.len() == key.len() {
            p.add_key(k);
        }
    }
    for fd in &input.fds {
        let det = fd.determinant.remap(remap);
        if det.len() != fd.determinant.len() {
            continue; // determinant column dropped: FD lost
        }
        let deps = fd.dependents.remap(remap);
        if !deps.is_empty() {
            p.fds.push(Fd { determinant: det, dependents: deps });
        }
    }
    // Duplicate pass-throughs of one input column are mutually
    // determined copies.
    for (out, item) in items.iter().enumerate() {
        if let Expr::Column(c) = &item.expr {
            if let Some(first) = remap(*c) {
                if first != out {
                    p.fds.push(Fd {
                        determinant: std::iter::once(first).collect(),
                        dependents: std::iter::once(out).collect(),
                    });
                    p.fds.push(Fd {
                        determinant: std::iter::once(out).collect(),
                        dependents: std::iter::once(first).collect(),
                    });
                }
            }
        }
    }
    // Longest prefix of the input order that survives the projection.
    for ok in &input.order {
        match remap(ok.col) {
            Some(out) => p.order.push(OrderKey { col: out, asc: ok.asc }),
            None => break,
        }
    }
    for (out, item) in items.iter().enumerate() {
        p.nullable[out] = !expr_nonnull(&item.expr, &input.nullable);
    }
    p.cardinality = input.cardinality;
    p
}

struct JoinShape<'a> {
    left: &'a LogicalPlan,
    right: &'a LogicalPlan,
    predicate: &'a Expr,
    fk_flag: bool,
    outer: bool,
}

fn derive_join(
    l: &PlanProperties,
    r: &PlanProperties,
    shape: JoinShape<'_>,
    catalog: &CatalogProperties,
) -> PlanProperties {
    let nl = l.arity;
    let arity = nl + r.arity;
    let mut p = PlanProperties::bottom(arity);
    let parts = split_predicate(shape.predicate, nl);

    let left_equi: ColumnSet = parts.pairs.iter().map(|&(a, _)| a).collect();
    let right_equi: ColumnSet = parts.pairs.iter().map(|&(_, b)| b).collect();
    // Probing on a key of one side matches at most one row there, so the
    // other side's keys survive unchanged.
    let right_covered = r.has_key_within(&right_equi);
    let left_covered = l.has_key_within(&left_equi);

    if right_covered {
        for k in &l.keys {
            p.add_key(k.clone());
        }
    }
    if left_covered && !shape.outer {
        for k in &r.keys {
            p.add_key(shift_set(k, nl));
        }
    }
    // A (left key, right key) union always identifies the output pair:
    // for an outer join the NULL-padded rows are still told apart by the
    // left key.
    for lk in &l.keys {
        for rk in &r.keys {
            p.add_key(lk.union(&shift_set(rk, nl)));
        }
    }

    p.nullable[..nl].copy_from_slice(&l.nullable);
    if shape.outer {
        // Unmatched left rows pad the right side with NULLs.
        for n in &mut p.nullable[nl..] {
            *n = true;
        }
    } else {
        p.nullable[nl..].copy_from_slice(&r.nullable);
        // An inner-join predicate must evaluate to true, so its
        // null-rejecting conjuncts imply non-nullness.
        mark_nonnull_from_predicate(shape.predicate, &mut p.nullable);
    }

    p.fds.extend(l.fds.iter().cloned());
    if !shape.outer {
        p.fds.extend(r.fds.iter().map(|fd| Fd {
            determinant: shift_set(&fd.determinant, nl),
            dependents: shift_set(&fd.dependents, nl),
        }));
        for &(a, b) in &parts.pairs {
            let (a, b) = (a, b + nl);
            p.fds.push(Fd {
                determinant: std::iter::once(a).collect(),
                dependents: std::iter::once(b).collect(),
            });
            p.fds.push(Fd {
                determinant: std::iter::once(b).collect(),
                dependents: std::iter::once(a).collect(),
            });
        }
    }

    // Cardinality. The lower bound `lo = lo(left)` needs *totality*:
    // every left row finds a match. That is exactly what a declared
    // foreign key promises (the binder's fk flag, or a catalog FK whose
    // columns the equi-conjuncts equate — declared constraints are
    // trusted, as for key seeding), provided no residual predicate
    // filters pairs away AND the right side is the *whole* referenced
    // table. A pushed-down selection under the join keeps the fk flag
    // but voids the guarantee, so anything but a bare scan on the right
    // forfeits totality. An outer join is total by construction.
    let total = shape.outer
        || (!parts.has_residual
            && matches!(shape.right, LogicalPlan::Scan { .. })
            && (shape.fk_flag || fk_declared(shape.left, shape.right, &parts.pairs, catalog)));
    // Upper bound: probing a covered right key gives ≤ 1 match per left
    // row; a covered left key bounds the inner join by hi(right); an
    // unmatched-left-padded outer join multiplies by max(hi(right), 1).
    let hi = if right_covered {
        l.cardinality.hi
    } else if left_covered && !shape.outer {
        r.cardinality.hi
    } else {
        let per_left =
            if shape.outer { r.cardinality.hi.map(|h| h.max(1)) } else { r.cardinality.hi };
        l.cardinality.hi.zip(per_left).map(|(a, b)| a.saturating_mul(b))
    };
    p.cardinality = CardRange { lo: if total { l.cardinality.lo } else { 0 }, hi };
    p
}

fn derive_gapply(
    input: &PlanProperties,
    group_cols: &[usize],
    pgq: &PlanProperties,
) -> PlanProperties {
    let k = group_cols.len();
    let arity = k + pgq.arity;
    let mut p = PlanProperties::bottom(arity);
    // Rows from different groups differ on the group columns, rows
    // within one group are told apart by any per-group-query key.
    for pk in &pgq.keys {
        let mut key: ColumnSet = (0..k).collect();
        key = key.union(&shift_set(pk, k));
        p.add_key(key);
    }
    for fd in &pgq.fds {
        // A per-group FD lifts globally once the group identity joins
        // the determinant.
        let mut det: ColumnSet = (0..k).collect();
        det = det.union(&shift_set(&fd.determinant, k));
        p.fds.push(Fd { determinant: det, dependents: shift_set(&fd.dependents, k) });
    }
    for (out, &g) in group_cols.iter().enumerate() {
        p.nullable[out] = input.nullable.get(g).copied().unwrap_or(true);
    }
    p.nullable[k..].copy_from_slice(&pgq.nullable);
    // ≥ 1 group when the input is non-empty; ≤ hi(input) groups, each
    // emitting pgq rows.
    p.cardinality = CardRange {
        lo: if input.cardinality.lo > 0 { pgq.cardinality.lo } else { 0 },
        hi: input.cardinality.hi.zip(pgq.cardinality.hi).map(|(a, b)| a.saturating_mul(b)),
    };
    p
}

fn derive_apply(
    o: &PlanProperties,
    i: &PlanProperties,
    mode: xmlpub_algebra::plan::ApplyMode,
) -> PlanProperties {
    use xmlpub_algebra::plan::ApplyMode;
    let no = o.arity;
    let arity = no + i.arity;
    let mut p = PlanProperties::bottom(arity);
    p.nullable[..no].copy_from_slice(&o.nullable);
    match mode {
        ApplyMode::Cross => p.nullable[no..].copy_from_slice(&i.nullable),
        // Empty inner results pad with NULLs.
        ApplyMode::LeftOuter | ApplyMode::Scalar => {}
    }
    // Outer-key ∪ inner-key identifies (outer row, inner row) pairs:
    // the inner key holds within each per-row evaluation, the outer key
    // separates evaluations (NULL padding included, as for outer join).
    for ok in &o.keys {
        for ik in &i.keys {
            p.add_key(ok.union(&shift_set(ik, no)));
        }
    }
    match mode {
        // Exactly one output row per outer row.
        ApplyMode::Scalar => {
            for ok in &o.keys {
                p.add_key(ok.clone());
            }
            p.fds.extend(o.fds.iter().cloned());
            p.cardinality = o.cardinality;
        }
        ApplyMode::Cross => {
            p.fds.extend(o.fds.iter().cloned());
            p.cardinality = o.cardinality.times(i.cardinality);
        }
        ApplyMode::LeftOuter => {
            p.fds.extend(o.fds.iter().cloned());
            p.cardinality = CardRange {
                lo: o.cardinality.lo,
                hi: o
                    .cardinality
                    .hi
                    .zip(i.cardinality.hi.map(|h| h.max(1)))
                    .map(|(a, b)| a.saturating_mul(b)),
            };
        }
    }
    p
}

// ---- Predicate analysis ------------------------------------------------

struct PredicateParts {
    /// Equi-join column pairs `(left col, right-local col)`.
    pairs: Vec<(usize, usize)>,
    /// Whether any conjunct is *not* a cross-side column equality.
    has_residual: bool,
}

fn split_predicate(predicate: &Expr, left_arity: usize) -> PredicateParts {
    let mut parts = PredicateParts { pairs: Vec::new(), has_residual: false };
    for c in conjuncts(predicate) {
        match &c {
            Expr::Binary { op: BinOp::Eq, left, right } => match (left.as_ref(), right.as_ref()) {
                (Expr::Column(a), Expr::Column(b)) if *a < left_arity && *b >= left_arity => {
                    parts.pairs.push((*a, *b - left_arity));
                }
                (Expr::Column(b), Expr::Column(a)) if *a < left_arity && *b >= left_arity => {
                    parts.pairs.push((*a, *b - left_arity));
                }
                _ => parts.has_residual = true,
            },
            Expr::Literal(xmlpub_common::Value::Bool(true)) => {}
            _ => parts.has_residual = true,
        }
    }
    parts
}

/// Is there a declared FK from the left scan to the right scan that the
/// equi-conjuncts equate column-for-column? (The static counterpart of
/// the binder's `fk_left_to_right` annotation.)
fn fk_declared(
    left: &LogicalPlan,
    right: &LogicalPlan,
    pairs: &[(usize, usize)],
    catalog: &CatalogProperties,
) -> bool {
    let (LogicalPlan::Scan { table: lt, .. }, LogicalPlan::Scan { table: rt, .. }) = (left, right)
    else {
        return false;
    };
    let Some(tp) = catalog.table(lt) else { return false };
    tp.foreign_keys.iter().any(|fk| {
        fk.ref_table == rt.to_ascii_lowercase()
            && fk.columns.len() == fk.ref_columns.len()
            && fk.columns.iter().zip(&fk.ref_columns).all(|(&c, &rc)| pairs.contains(&(c, rc)))
    })
}

/// Mark columns non-null that a true-evaluating predicate forces to be
/// non-null: null-rejecting comparison conjuncts (a NULL operand makes
/// the comparison NULL, which rejects the row) and `IS NOT NULL`.
fn mark_nonnull_from_predicate(predicate: &Expr, nullable: &mut [bool]) {
    for c in conjuncts(predicate) {
        match &c {
            Expr::Binary { op, left, right }
                if op.is_comparison() && null_propagating(left) && null_propagating(right) =>
            {
                for e in [left, right] {
                    for col in e.columns().iter() {
                        if col < nullable.len() {
                            nullable[col] = false;
                        }
                    }
                }
            }
            Expr::Unary { op: UnaryOp::IsNotNull, expr } => {
                if let Expr::Column(col) = expr.as_ref() {
                    if *col < nullable.len() {
                        nullable[*col] = false;
                    }
                }
            }
            _ => {}
        }
    }
}

/// Does a NULL in any referenced column force the expression to NULL?
fn null_propagating(expr: &Expr) -> bool {
    match expr {
        Expr::Column(_) | Expr::Correlated { .. } => true,
        Expr::Literal(v) => !v.is_null(),
        Expr::Unary { op: UnaryOp::Neg, expr } => null_propagating(expr),
        Expr::Binary { op, left, right } if !op.is_logical() => {
            null_propagating(left) && null_propagating(right)
        }
        _ => false,
    }
}

/// Does the expression provably never evaluate to NULL, given which
/// input columns are non-null?
fn expr_nonnull(expr: &Expr, nullable: &[bool]) -> bool {
    match expr {
        Expr::Column(c) => nullable.get(*c).is_some_and(|n| !n),
        Expr::Literal(v) => !v.is_null(),
        Expr::Unary { op: UnaryOp::IsNull | UnaryOp::IsNotNull, .. } => true,
        Expr::Unary { op: UnaryOp::Not | UnaryOp::Neg, expr } => expr_nonnull(expr, nullable),
        Expr::Binary { left, right, .. } => {
            expr_nonnull(left, nullable) && expr_nonnull(right, nullable)
        }
        _ => false,
    }
}

/// The count aggregates return Int 0 on empty/all-NULL input, so they
/// never produce NULL; every other aggregate does.
fn is_count_family(func: AggFunc) -> bool {
    matches!(func, AggFunc::CountStar | AggFunc::Count | AggFunc::CountDistinct)
}

/// Shift every column of a set by `by` (for right-side/inner columns in
/// a concatenated output schema).
fn shift_set(set: &ColumnSet, by: usize) -> ColumnSet {
    set.iter().map(|c| c + by).collect()
}

/// The sort order established by an ORDER BY: the longest prefix of its
/// keys that are bare columns.
fn derived_order(keys: &[SortKey]) -> Vec<OrderKey> {
    let mut out = Vec::new();
    for k in keys {
        match &k.expr {
            Expr::Column(c) => out.push(OrderKey { col: *c, asc: k.asc }),
            _ => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_algebra::plan::ApplyMode;
    use xmlpub_algebra::{Catalog, TableDef};
    use xmlpub_common::{row, DataType, Field, Relation, Schema};
    use xmlpub_expr::AggExpr;

    fn cs(cols: &[usize]) -> ColumnSet {
        cols.iter().copied().collect()
    }

    fn dept_schema() -> Schema {
        Schema::new(vec![Field::new("d_id", DataType::Int), Field::new("d_name", DataType::Str)])
    }

    fn emp_schema() -> Schema {
        Schema::new(vec![
            Field::new("e_id", DataType::Int),
            Field::new("e_dept", DataType::Int),
            Field::new("e_salary", DataType::Float),
        ])
    }

    fn catalog() -> (Catalog, CatalogProperties) {
        let mut cat = Catalog::new();
        cat.register(
            TableDef::new("dept", dept_schema()).with_primary_key(&["d_id"]),
            Relation::new(dept_schema(), vec![row![1, "eng"], row![2, "ops"]]).unwrap(),
        )
        .unwrap();
        cat.register(
            TableDef::new("emp", emp_schema()).with_primary_key(&["e_id"]).with_foreign_key(
                &["e_dept"],
                "dept",
                &["d_id"],
            ),
            Relation::new(
                emp_schema(),
                vec![row![10, 1, 100.0], row![11, 1, 120.0], row![12, 2, 90.0]],
            )
            .unwrap(),
        )
        .unwrap();
        let props = CatalogProperties::from_catalog(&cat);
        (cat, props)
    }

    fn scan(cat: &Catalog, table: &str) -> LogicalPlan {
        LogicalPlan::scan(table, cat.table(table).unwrap().schema.clone())
    }

    #[test]
    fn scan_seeds_key_and_rowcount() {
        let (cat, props) = catalog();
        let p = derive(&scan(&cat, "emp"), &props);
        assert_eq!(p.keys, vec![cs(&[0])]);
        assert_eq!(p.cardinality, CardRange::exact(3));
        assert_eq!(p.fds.len(), 1);
        assert_eq!(p.fds[0].determinant, cs(&[0]));
    }

    #[test]
    fn empty_relation_has_exact_zero_cardinality() {
        let mut cat = Catalog::new();
        cat.register(
            TableDef::new("v", dept_schema()).with_primary_key(&["d_id"]),
            Relation::empty(dept_schema()),
        )
        .unwrap();
        let props = CatalogProperties::from_catalog(&cat);
        let p = derive(&scan(&cat, "v"), &props);
        assert_eq!(p.cardinality, CardRange::exact(0));
        // Selecting from it stays [0, 0].
        let sel = scan(&cat, "v").select(Expr::col(0).gt(Expr::lit(5)));
        assert_eq!(derive(&sel, &props).cardinality, CardRange::exact(0));
    }

    #[test]
    fn select_keeps_keys_zeroes_lo_and_infers_nonnull() {
        let (cat, props) = catalog();
        let sel = scan(&cat, "emp").select(Expr::col(2).gt(Expr::lit(100.0)));
        let p = derive(&sel, &props);
        assert_eq!(p.keys, vec![cs(&[0])]);
        assert_eq!(p.cardinality, CardRange::between(0, 3));
        assert!(!p.nullable[2], "comparison conjunct implies non-null");
        assert!(p.nullable[1]);
    }

    #[test]
    fn project_remaps_keys_and_order() {
        let (cat, props) = catalog();
        let plan = scan(&cat, "emp")
            .order_by(vec![SortKey::asc(0), SortKey::desc(2)])
            .project_cols(&[2, 0]);
        let p = derive(&plan, &props);
        assert_eq!(p.keys, vec![cs(&[1])]);
        assert_eq!(p.order, vec![OrderKey::asc(1), OrderKey { col: 0, asc: false }]);
    }

    #[test]
    fn project_dropping_key_column_drops_key() {
        let (cat, props) = catalog();
        let p = derive(&scan(&cat, "emp").project_cols(&[1, 2]), &props);
        assert!(p.keys.is_empty());
    }

    #[test]
    fn duplicate_column_projection_keeps_one_key_and_copy_fds() {
        let (cat, props) = catalog();
        let p = derive(&scan(&cat, "emp").project_cols(&[0, 0, 2]), &props);
        // The key maps to the first occurrence only.
        assert_eq!(p.keys, vec![cs(&[0])]);
        // The copies determine each other.
        assert!(p.fds.iter().any(|fd| fd.determinant == cs(&[0]) && fd.dependents.contains(1)));
        assert!(p.fds.iter().any(|fd| fd.determinant == cs(&[1]) && fd.dependents.contains(0)));
        assert_eq!(p.nullable.len(), 3);
    }

    #[test]
    fn fk_join_on_right_key_keeps_left_key_and_cardinality() {
        let (cat, props) = catalog();
        let join = scan(&cat, "emp").fk_join(scan(&cat, "dept"), Expr::col(1).eq(Expr::col(3)));
        let p = derive(&join, &props);
        // Probing dept's key: emp's key survives; totality keeps lo.
        assert!(p.has_key_within(&cs(&[0])));
        assert_eq!(p.cardinality, CardRange::exact(3));
        // Equi columns are non-null on both sides.
        assert!(!p.nullable[1]);
        assert!(!p.nullable[3]);
    }

    #[test]
    fn declared_fk_is_detected_without_the_flag() {
        let (cat, props) = catalog();
        let join = scan(&cat, "emp").join(scan(&cat, "dept"), Expr::col(1).eq(Expr::col(3)));
        let p = derive(&join, &props);
        assert_eq!(p.cardinality, CardRange::exact(3), "catalog FK implies totality");
    }

    #[test]
    fn non_key_join_multiplies_cardinality_and_unions_keys() {
        let (cat, props) = catalog();
        let join = scan(&cat, "emp").join(scan(&cat, "emp"), Expr::col(2).gt(Expr::col(5)));
        let p = derive(&join, &props);
        assert_eq!(p.cardinality, CardRange::between(0, 9));
        assert!(p.has_key_within(&cs(&[0, 3])));
        assert!(!p.has_key_within(&cs(&[0])));
    }

    #[test]
    fn left_outer_join_nullifies_right_side() {
        let (cat, props) = catalog();
        let loj =
            scan(&cat, "dept").left_outer_join(scan(&cat, "emp"), Expr::col(0).eq(Expr::col(3)));
        let p = derive(&loj, &props);
        assert!(p.nullable[2..].iter().all(|&n| n), "right side nullable");
        // lo preserved (an outer join is total by construction).
        assert_eq!(p.cardinality, CardRange::between(2, 6));
        // Right keys are dropped; the pairwise union survives.
        assert!(!p.has_key_within(&cs(&[2])));
        assert!(p.has_key_within(&cs(&[0, 2])));
    }

    #[test]
    fn gapply_key_is_group_cols_plus_pgq_key() {
        let (cat, props) = catalog();
        let input = scan(&cat, "emp");
        let pgq = LogicalPlan::group_scan(input.schema());
        let plan = input.gapply(vec![1], pgq);
        let p = derive(&plan, &props);
        // pgq inherits emp's key {0}; output = [e_dept] ++ emp cols, so
        // the key is {0 (group col)} ∪ {1 (shifted e_id)}.
        assert!(p.has_key_within(&cs(&[0, 1])));
        assert_eq!(p.cardinality, CardRange::between(1, 9));
    }

    #[test]
    fn nested_gapply_propagates_keys_through_both_levels() {
        let (cat, props) = catalog();
        let input = scan(&cat, "emp");
        let inner_pgq = LogicalPlan::group_scan(input.schema());
        let outer_pgq = LogicalPlan::group_scan(input.schema()).gapply(vec![0], inner_pgq);
        let plan = input.gapply(vec![1], outer_pgq);
        let p = derive(&plan, &props);
        // Output layout: [e_dept] ++ ([e_id] ++ emp columns).
        // Inner GApply keys its output by {0} ∪ shift(emp key {0}) =
        // {0, 1}; the outer lifts it to {0} ∪ shift({0,1}) = {0, 1, 2}.
        assert!(p.has_key_within(&cs(&[0, 1, 2])), "keys: {:?}", p.keys);
        assert_eq!(p.arity, 1 + 1 + 3);
    }

    #[test]
    fn group_scan_without_ambient_is_bottom() {
        let props = CatalogProperties::empty();
        let p = derive(&LogicalPlan::group_scan(emp_schema()), &props);
        assert!(p.keys.is_empty());
        assert_eq!(p.cardinality, CardRange::unknown());
    }

    #[test]
    fn groupby_keys_output_and_null_group_keys_survive_outer_join() {
        let (cat, props) = catalog();
        // Decorrelation's shape: LOJ output feeds a projection whose
        // group-key columns come from the nullable side.
        let loj =
            scan(&cat, "dept").left_outer_join(scan(&cat, "emp"), Expr::col(0).eq(Expr::col(3)));
        let gb = loj.group_by(vec![3], vec![AggExpr::count_star("n")]);
        let p = derive(&gb, &props);
        assert_eq!(p.keys, vec![cs(&[0])]);
        assert!(p.nullable[0], "group key from the outer-join null side stays nullable");
        assert!(!p.nullable[1], "count(*) never NULL");
        assert_eq!(p.cardinality, CardRange::between(1, 6));
    }

    #[test]
    fn scalar_agg_is_exactly_one_row() {
        let (cat, props) = catalog();
        let p = derive(&scan(&cat, "emp").scalar_agg(vec![AggExpr::count_star("n")]), &props);
        assert_eq!(p.cardinality, CardRange::exact(1));
        assert!(p.has_key_within(&ColumnSet::new()));
        assert!(!p.nullable[0]);
    }

    #[test]
    fn distinct_adds_all_columns_key() {
        let (cat, props) = catalog();
        let p = derive(&scan(&cat, "emp").project_cols(&[1]).distinct(), &props);
        assert_eq!(p.keys, vec![cs(&[0])]);
        assert_eq!(p.cardinality, CardRange::between(1, 3));
    }

    #[test]
    fn union_all_sums_cardinality_and_merges_nullability() {
        let (cat, props) = catalog();
        let b1 = scan(&cat, "dept");
        let b2 = scan(&cat, "dept").select(Expr::col(0).gt(Expr::lit(1)));
        let p = derive(&LogicalPlan::union_all(vec![b1, b2]), &props);
        assert_eq!(p.cardinality, CardRange::between(2, 4));
        assert!(p.keys.is_empty());
        assert!(p.nullable[0], "non-null in one branch only does not lift");
    }

    #[test]
    fn order_by_establishes_order_and_apply_modes_differ() {
        let (cat, props) = catalog();
        let ordered = scan(&cat, "emp").order_by(vec![SortKey::asc(1), SortKey::asc(0)]);
        let p = derive(&ordered, &props);
        assert!(p.order_satisfies(&[OrderKey::asc(1)]));

        let inner = scan(&cat, "dept").scalar_agg(vec![AggExpr::count_star("n")]);
        let scalar = scan(&cat, "emp").apply(inner.clone(), ApplyMode::Scalar);
        let sp = derive(&scalar, &props);
        assert_eq!(sp.cardinality, CardRange::exact(3));
        assert!(sp.has_key_within(&cs(&[0])));
        assert!(sp.nullable[3], "scalar apply may pad NULL");

        let cross = scan(&cat, "emp").apply(inner, ApplyMode::Cross);
        let cp = derive(&cross, &props);
        assert_eq!(cp.cardinality, CardRange::exact(3));
        assert!(!cp.nullable[3], "cross apply keeps inner nullability");
    }

    #[test]
    fn exists_is_zero_or_one_rows() {
        let (cat, props) = catalog();
        let p = derive(&scan(&cat, "emp").exists(), &props);
        assert_eq!(p.arity, 0);
        assert_eq!(p.cardinality, CardRange::between(0, 1));
    }

    #[test]
    fn derive_at_tracks_group_ambient() {
        let (cat, props) = catalog();
        let input = scan(&cat, "emp");
        let pgq = LogicalPlan::group_scan(input.schema());
        let plan = input.gapply(vec![1], pgq);
        // Path [1] = the per-group query: it must see emp's key.
        let p = derive_at(&plan, &[1], &props).unwrap();
        assert_eq!(p.keys, vec![cs(&[0])]);
        assert_eq!(p.cardinality, CardRange::between(1, 3));
        assert!(derive_at(&plan, &[2], &props).is_none());
    }
}
