//! Base facts the analyzer seeds from the catalog: primary keys and
//! foreign keys resolved to column indices, plus exact row counts.

use std::collections::BTreeMap;
use xmlpub_algebra::Catalog;
use xmlpub_common::ColumnSet;

/// Declared constraints of one table, resolved to column positions.
#[derive(Debug, Clone, Default)]
pub struct TableProperties {
    /// Primary key as column indices, if one is declared and every
    /// named column resolves.
    pub key: Option<ColumnSet>,
    /// Exact row count at the time the properties were captured.
    pub rows: u64,
    /// Declared foreign keys, resolved to positions on both sides.
    pub foreign_keys: Vec<ResolvedForeignKey>,
}

/// A foreign key with both sides resolved to column indices;
/// `columns[i]` references `ref_columns[i]` of `ref_table`.
#[derive(Debug, Clone)]
pub struct ResolvedForeignKey {
    /// Referencing columns (positions in the owning table).
    pub columns: Vec<usize>,
    /// Referenced table (lowercase).
    pub ref_table: String,
    /// Referenced columns (positions in `ref_table`).
    pub ref_columns: Vec<usize>,
}

/// Catalog-derived base facts, the seed of every derivation.
#[derive(Debug, Clone, Default)]
pub struct CatalogProperties {
    tables: BTreeMap<String, TableProperties>,
}

impl CatalogProperties {
    /// No base facts: every scan derives `bottom`.
    pub fn empty() -> Self {
        CatalogProperties::default()
    }

    /// Capture key/FK/row-count facts from a catalog. Constraint
    /// columns that fail to resolve drop the constraint (sound: the
    /// analyzer just knows less).
    pub fn from_catalog(catalog: &Catalog) -> Self {
        let mut tables = BTreeMap::new();
        for def in catalog.tables() {
            let resolve_all = |names: &[String]| -> Option<Vec<usize>> {
                names.iter().map(|n| def.schema.resolve(None, n).ok()).collect()
            };
            let key = if def.primary_key.is_empty() {
                None
            } else {
                resolve_all(&def.primary_key).map(|v| v.into_iter().collect())
            };
            let foreign_keys = def
                .foreign_keys
                .iter()
                .filter_map(|fk| {
                    let columns = resolve_all(&fk.columns)?;
                    let ref_def = catalog.table(&fk.ref_table).ok()?;
                    let ref_columns: Option<Vec<usize>> = fk
                        .ref_columns
                        .iter()
                        .map(|n| ref_def.schema.resolve(None, n).ok())
                        .collect();
                    Some(ResolvedForeignKey {
                        columns,
                        ref_table: fk.ref_table.to_ascii_lowercase(),
                        ref_columns: ref_columns?,
                    })
                })
                .collect();
            let rows = catalog.data(&def.name).map(|r| r.len() as u64).unwrap_or(0);
            tables
                .insert(def.name.to_ascii_lowercase(), TableProperties { key, rows, foreign_keys });
        }
        CatalogProperties { tables }
    }

    /// Base facts for `name`, if captured.
    pub fn table(&self, name: &str) -> Option<&TableProperties> {
        self.tables.get(&name.to_ascii_lowercase())
    }
}
