//! Criterion bench for the serving layer: the full Figure 8 workload
//! set pushed through the concurrent publishing service at 1, 4 and 8
//! workers, cold (ad-hoc SQL against a fresh server with an empty plan
//! cache each iteration) vs warm (prepared statements over a long-lived
//! warmed cache). One iteration = every workload once
//! from every client, closed-loop, so the measured quantity tracks
//! service throughput rather than single-query latency.

use criterion::{criterion_group, criterion_main, Criterion};
use xmlpub::Database;
use xmlpub_server::{run_fig8_load, LoadOptions, Server, ServerConfig};

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    for workers in [1usize, 4, 8] {
        // Cold path: a fresh server (empty plan cache) every iteration;
        // each request plans from scratch through the cache.
        group.bench_function(format!("w{workers}_cold"), |b| {
            b.iter(|| {
                let server = Server::new(
                    Database::tpch(0.001).expect("tpch"),
                    ServerConfig { workers, ..ServerConfig::default() },
                );
                run_fig8_load(
                    &server,
                    LoadOptions {
                        clients: workers,
                        iters: 1,
                        warm: false,
                        ..LoadOptions::default()
                    },
                )
                .expect("load run")
            })
        });
        // Warm path: one long-lived server; plans are cached after the
        // first pass and every later iteration is execute-only.
        let server = Server::new(
            Database::tpch(0.001).expect("tpch"),
            ServerConfig { workers, ..ServerConfig::default() },
        );
        run_fig8_load(
            &server,
            LoadOptions { clients: workers, iters: 1, warm: true, ..LoadOptions::default() },
        )
        .expect("warmup");
        group.bench_function(format!("w{workers}_warm"), |b| {
            b.iter(|| {
                run_fig8_load(
                    &server,
                    LoadOptions {
                        clients: workers,
                        iters: 1,
                        warm: true,
                        ..LoadOptions::default()
                    },
                )
                .expect("load run")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
