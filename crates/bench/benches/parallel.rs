//! Criterion A/B bench for the parallel engine: each Figure 8 workload
//! (gapply formulation, optimized plan) plus the TPC-H publishing
//! pipeline, run serial (`dop = 1`) vs dop 2 / 4 / 8 — and the *classic*
//! (non-GApply) formulations, whose filter/project/hash-join/aggregate
//! pipelines run through the morsel scheduler instead of parallel
//! GApply. Speedups land in `docs/experiment_log.txt`; on a single-core
//! box the interesting number is the *overhead* of dop > 1, which the
//! deterministic merge keeps small.

use criterion::{criterion_group, criterion_main, Criterion};
use xmlpub::xml::supplier_parts_view;
use xmlpub::xml::workloads::figure8_workloads;
use xmlpub::{Database, EngineConfig};

fn bench_parallel_queries(c: &mut Criterion) {
    let db = Database::tpch(0.002).expect("tpch");
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    for w in figure8_workloads() {
        let (plan, _) = db.optimized_plan(&w.gapply_sql).expect("gapply plan");
        for dop in [1usize, 2, 4, 8] {
            let config = EngineConfig { dop, ..Default::default() };
            group.bench_function(format!("{}_dop{dop}", w.name), |b| {
                b.iter(|| {
                    xmlpub::engine::execute_with_config(&plan, db.catalog(), &config).expect("run")
                })
            });
        }
    }
    group.finish();
}

/// The classic sorted-outer-union formulations contain no GApply, so
/// every ounce of parallelism here comes from the morsel scheduler
/// inside the pipeline operators.
fn bench_morsel_pipeline(c: &mut Criterion) {
    let db = Database::tpch(0.002).expect("tpch");
    let mut group = c.benchmark_group("morsel");
    group.sample_size(10);
    for w in figure8_workloads() {
        let (plan, _) = db.optimized_plan(&w.classic_sql).expect("classic plan");
        for dop in [1usize, 2, 4, 8] {
            let config = EngineConfig { dop, ..Default::default() };
            group.bench_function(format!("{}_classic_dop{dop}", w.name), |b| {
                b.iter(|| {
                    xmlpub::engine::execute_with_config(&plan, db.catalog(), &config).expect("run")
                })
            });
        }
    }
    group.finish();
}

fn bench_parallel_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_publish");
    group.sample_size(10);
    for dop in [1usize, 2, 4, 8] {
        let mut db = Database::tpch(0.002).expect("tpch");
        db.config_mut().engine.dop = dop;
        let view = supplier_parts_view(db.catalog()).expect("view");
        group.bench_function(format!("supplier_parts_dop{dop}"), |b| {
            b.iter(|| db.publish(&view, false).expect("publish"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_queries, bench_morsel_pipeline, bench_parallel_publish);
criterion_main!(benches);
