//! Micro-benchmarks of the physical operators the paper's plans are made
//! of: the GApply partition phase (hash vs sort), the per-group execution
//! phase, the correlated-apply memo, and the client-side simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use xmlpub::engine::client_sim::simulate_gapply;
use xmlpub::xml::workloads;
use xmlpub::{Database, PartitionStrategy};

fn bench_partitioning(c: &mut Criterion) {
    let sql = workloads::q1().gapply_sql;
    let mut group = c.benchmark_group("gapply_partition");
    group.sample_size(10);
    for (name, strategy) in [("hash", PartitionStrategy::Hash), ("sort", PartitionStrategy::Sort)] {
        let mut db = Database::tpch(0.002).expect("tpch");
        db.config_mut().skip_optimizer = true;
        db.config_mut().engine.partition_strategy = strategy;
        let (plan, _) = db.optimized_plan(&sql).expect("plan");
        group.bench_function(name, |b| b.iter(|| db.execute_plan(&plan).expect("run")));
    }
    group.finish();
}

fn bench_client_simulation(c: &mut Criterion) {
    let db = Database::tpch(0.002).expect("tpch");
    let plan = db.plan(&workloads::q4().gapply_sql).expect("plan");
    let (outer, cols, pgq) = calibration_find(&plan);
    let gapply_only = outer.clone().gapply(cols.to_vec(), pgq.clone());

    let mut group = c.benchmark_group("client_simulation");
    group.sample_size(10);
    group.bench_function("native_gapply", |b| {
        b.iter(|| db.execute_plan(&gapply_only).expect("native"))
    });
    group.bench_function("client_sim", |b| {
        b.iter(|| {
            simulate_gapply(db.catalog(), outer, cols, pgq, PartitionStrategy::Hash).expect("sim")
        })
    });
    group.finish();
}

fn calibration_find(
    plan: &xmlpub::LogicalPlan,
) -> (&xmlpub::LogicalPlan, &[usize], &xmlpub::LogicalPlan) {
    fn walk(
        p: &xmlpub::LogicalPlan,
    ) -> Option<(&xmlpub::LogicalPlan, &[usize], &xmlpub::LogicalPlan)> {
        if let xmlpub::LogicalPlan::GApply { input, group_cols, pgq } = p {
            return Some((input, group_cols, pgq));
        }
        p.children().iter().find_map(|c| walk(c))
    }
    walk(plan).expect("gapply in plan")
}

criterion_group!(benches, bench_partitioning, bench_client_simulation);
criterion_main!(benches);
