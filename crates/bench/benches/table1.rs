//! Criterion bench for Table 1: each rule's sweep query with the rule
//! off vs forced on (one representative parameter point per rule).

use criterion::{criterion_group, criterion_main, Criterion};
use xmlpub::xml::workloads;
use xmlpub::{Database, OptimizerConfig};

fn bench_rule(c: &mut Criterion, name: &str, rule: &'static str, sql: &str) {
    let mut db = Database::tpch(0.002).expect("tpch");
    db.config_mut().skip_optimizer = true;
    let (off, _) = db.optimized_plan(sql).expect("off plan");
    db.config_mut().skip_optimizer = false;
    db.config_mut().optimizer = OptimizerConfig::only(rule);
    db.config_mut().optimizer.cost_gate = false;
    let (on, _) = db.optimized_plan(sql).expect("on plan");

    let mut group = c.benchmark_group(format!("table1/{name}"));
    group.sample_size(10);
    group.bench_function("rule_off", |b| b.iter(|| db.execute_plan(&off).expect("off")));
    group.bench_function("rule_on", |b| b.iter(|| db.execute_plan(&on).expect("on")));
    group.finish();
}

fn bench_table1(c: &mut Criterion) {
    bench_rule(
        c,
        "selection_before",
        "select-before-gapply",
        &workloads::selection_sweep_sql(2060.0),
    );
    bench_rule(
        c,
        "projection_before",
        "project-before-gapply",
        &workloads::projection_sweep_sql(false),
    );
    bench_rule(c, "to_groupby", "gapply-to-groupby", &workloads::to_groupby_sweep_sql());
    bench_rule(
        c,
        "exists_selection",
        "group-selection-exists",
        &workloads::exists_sweep_sql(2060.0),
    );
    bench_rule(
        c,
        "aggregate_selection",
        "group-selection-aggregate",
        &workloads::aggregate_selection_sweep_sql(1550.0),
    );
    bench_rule(
        c,
        "invariant_grouping",
        "invariant-grouping",
        &workloads::invariant_grouping_sweep_sql(),
    );
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
