//! Observability overhead A/B on the Figure 8 serving workload: the
//! identical warm closed-loop load run against (a) a server with the
//! metrics registry disabled, (b) the default always-on registry, and
//! (c) the registry plus a full lifecycle tracer writing JSONL spans to
//! a null sink. (a) vs (b) is the acceptance gate — metrics must cost
//! ≤ 5% throughput; (c) measures what opting into tracing adds.

use criterion::{criterion_group, criterion_main, Criterion};
use xmlpub::{Database, MetricsHandle, Observability, TraceHandle};
use xmlpub_server::{run_fig8_load, LoadOptions, Server, ServerConfig};

const WORKERS: usize = 4;
const SCALE: f64 = 0.001;

fn warm_server(metrics: bool, traced: bool) -> Server {
    let mut db = Database::tpch(SCALE).expect("tpch");
    if traced {
        db.set_observability(Observability {
            metrics: MetricsHandle::new_registry(),
            tracer: TraceHandle::new(Box::new(std::io::sink())),
        });
    }
    let server = Server::new(
        db,
        ServerConfig { workers: WORKERS, metrics_enabled: metrics, ..ServerConfig::default() },
    );
    run_fig8_load(
        &server,
        LoadOptions { clients: WORKERS, iters: 1, warm: true, ..LoadOptions::default() },
    )
    .expect("warmup");
    server
}

fn bench_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs");
    group.sample_size(10);
    for (name, metrics, traced) in
        [("metrics_off", false, false), ("metrics_on", true, false), ("traced", true, true)]
    {
        let server = warm_server(metrics, traced);
        group.bench_function(name, |b| {
            b.iter(|| {
                run_fig8_load(
                    &server,
                    LoadOptions {
                        clients: WORKERS,
                        iters: 1,
                        warm: true,
                        ..LoadOptions::default()
                    },
                )
                .expect("load run")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
