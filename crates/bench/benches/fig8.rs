//! Criterion bench for Figure 8: each workload in both formulations.

use criterion::{criterion_group, criterion_main, Criterion};
use xmlpub::xml::workloads::figure8_workloads;
use xmlpub::Database;

fn bench_fig8(c: &mut Criterion) {
    let db = Database::tpch(0.002).expect("tpch");
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    for w in figure8_workloads() {
        let (classic, _) = db.optimized_plan(&w.classic_sql).expect("classic plan");
        let (gapply, _) = db.optimized_plan(&w.gapply_sql).expect("gapply plan");
        group.bench_function(format!("{}_classic", w.name), |b| {
            b.iter(|| db.execute_plan(&classic).expect("classic run"))
        });
        group.bench_function(format!("{}_gapply", w.name), |b| {
            b.iter(|| db.execute_plan(&gapply).expect("gapply run"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
