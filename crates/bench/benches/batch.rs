//! Criterion bench for the batched execution pipeline: each Figure 8
//! workload (gapply formulation, optimized plan) run tuple-at-a-time
//! (`batch_size = 1`) vs the default batch-size target. The A/B ratio
//! lands in `docs/experiment_log.txt`.

use criterion::{criterion_group, criterion_main, Criterion};
use xmlpub::xml::workloads::figure8_workloads;
use xmlpub::{Database, EngineConfig, DEFAULT_BATCH_SIZE};

fn bench_batch(c: &mut Criterion) {
    let db = Database::tpch(0.002).expect("tpch");
    let mut group = c.benchmark_group("batch");
    group.sample_size(10);
    for w in figure8_workloads() {
        let (plan, _) = db.optimized_plan(&w.gapply_sql).expect("gapply plan");
        for (label, batch_size) in [("tuple", 1usize), ("batched", DEFAULT_BATCH_SIZE)] {
            let config = EngineConfig { batch_size, ..Default::default() };
            group.bench_function(format!("{}_{label}", w.name), |b| {
                b.iter(|| {
                    xmlpub::engine::execute_with_config(&plan, db.catalog(), &config).expect("run")
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
