//! Timing and sweep-statistics helpers.

use std::time::{Duration, Instant};

/// Time a closure `reps` times and return the **minimum** duration (the
/// least-noise estimator for CPU-bound single-threaded work).
pub fn time_min<F: FnMut()>(mut f: F, reps: usize) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

/// Milliseconds as f64.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Time a closure `reps` times and return every sample, in run order.
pub fn time_samples<F: FnMut()>(mut f: F, reps: usize) -> Vec<Duration> {
    (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect()
}

/// Median and 95th percentile of a timing series, in milliseconds.
///
/// Both use the nearest-rank method (no interpolation), so with few
/// reps the p95 is simply the worst sample — honest for the small
/// `--reps` counts the experiments binary defaults to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Nearest-rank 50th percentile, ms.
    pub median_ms: f64,
    /// Nearest-rank 95th percentile, ms.
    pub p95_ms: f64,
}

impl Percentiles {
    /// Summarise a non-empty series of samples.
    pub fn from_samples(samples: &[Duration]) -> Percentiles {
        assert!(!samples.is_empty(), "percentiles need at least one sample");
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        let rank = |p: f64| {
            let n = sorted.len();
            let idx = (p * n as f64).ceil() as usize;
            sorted[idx.clamp(1, n) - 1]
        };
        Percentiles { median_ms: ms(rank(0.50)), p95_ms: ms(rank(0.95)) }
    }
}

/// Table 1's three summary statistics over a series of benefit ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepStats {
    /// Best ratio observed.
    pub max: f64,
    /// Mean over all points.
    pub avg: f64,
    /// Mean over the points where the rule actually won (ratio > 1);
    /// equals `avg` for always-win rules.
    pub avg_over_wins: f64,
    /// Number of sweep points.
    pub points: usize,
}

impl SweepStats {
    /// Summarise a list of benefit ratios.
    pub fn from_ratios(ratios: &[f64]) -> SweepStats {
        assert!(!ratios.is_empty(), "sweep needs at least one point");
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let wins: Vec<f64> = ratios.iter().cloned().filter(|r| *r > 1.0).collect();
        let avg_over_wins =
            if wins.is_empty() { avg } else { wins.iter().sum::<f64>() / wins.len() as f64 };
        SweepStats { max, avg, avg_over_wins, points: ratios.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_stats_basic() {
        let s = SweepStats::from_ratios(&[2.0, 4.0]);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.avg, 3.0);
        assert_eq!(s.avg_over_wins, 3.0);
        assert_eq!(s.points, 2);
    }

    #[test]
    fn avg_over_wins_filters_losses() {
        // A rule that wins big sometimes and loses sometimes — the
        // paper's group-selection pattern.
        let s = SweepStats::from_ratios(&[0.5, 0.8, 3.0]);
        assert!((s.avg - (4.3 / 3.0)).abs() < 1e-9);
        assert_eq!(s.avg_over_wins, 3.0);
    }

    #[test]
    fn all_losses_fall_back_to_avg() {
        let s = SweepStats::from_ratios(&[0.5, 0.8]);
        assert!((s.avg_over_wins - s.avg).abs() < 1e-12);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<Duration> = (1..=20).map(Duration::from_millis).collect();
        let p = Percentiles::from_samples(&samples);
        assert_eq!(p.median_ms, 10.0);
        assert_eq!(p.p95_ms, 19.0);
        let single = Percentiles::from_samples(&[Duration::from_millis(7)]);
        assert_eq!(single.median_ms, 7.0);
        assert_eq!(single.p95_ms, 7.0);
    }

    #[test]
    fn time_min_runs() {
        let d = time_min(
            || {
                std::hint::black_box(1 + 1);
            },
            3,
        );
        assert!(d < Duration::from_secs(1));
        assert!(ms(Duration::from_millis(5)) >= 5.0);
    }
}
