//! Incremental republish vs full recompute at varying churn.
//!
//! The experiment behind `BENCH_incremental.json`: on the Figure 8
//! corpus (the two-level `suppliers/supplier/part` view) we mutate a
//! controlled fraction of root groups — *churn* — and republish the
//! document two ways through the same server session machinery:
//!
//! * **incremental** — [`xmlpub_server::Session::republish`] with the
//!   default fallback threshold: delta propagation finds the dirty root
//!   groups, a key-restricted sorted-outer-union re-tags only those,
//!   and the clean groups' bytes are spliced verbatim;
//! * **full** — the same entry point with the threshold forced to 0, so
//!   every republish takes the full-recompute path (identical planner,
//!   engine, tagger and segmenting overheads — the only difference is
//!   the work avoided).
//!
//! Every rep asserts the two documents are byte-identical, so the
//! recorded numbers are guaranteed to compare *correct* implementations.
//! Churn is group-localized (each mutation renames one supplier), which
//! is the regime the optimisation targets: republish cost should track
//! the change, not the data.

use std::time::{Duration, Instant};

use crate::harness::{ms, Percentiles};
use xmlpub::xml::supplier_parts_view;
use xmlpub::{Database, Result};
use xmlpub_common::{DeltaBatch, Error, Tuple, Value};
use xmlpub_server::{RepublishOutcome, Server, ServerConfig};

/// Churn levels as fractions of root groups touched per republish.
pub const CHURN_LEVELS: [f64; 3] = [0.001, 0.01, 0.10];

/// One churn level's measurements.
#[derive(Debug, Clone)]
pub struct IncrementalRow {
    /// Fraction of root groups mutated before each republish.
    pub churn: f64,
    /// Root groups mutated per rep (`ceil(churn * groups)`, min 1).
    pub dirty_groups: usize,
    /// Total root groups in the document.
    pub total_groups: usize,
    /// Incremental republish latency percentiles across reps.
    pub incremental_pcts: Percentiles,
    /// Full-recompute republish latency percentiles across reps.
    pub full_pcts: Percentiles,
    /// Best (minimum) incremental latency, ms.
    pub incremental_ms: f64,
    /// Best (minimum) full-recompute latency, ms.
    pub full_ms: f64,
    /// `full_median / incremental_median` — the headline ratio.
    pub speedup_median: f64,
    /// How many of the reps actually took the incremental path (the
    /// rest fell back; at the highest churn level that is expected once
    /// the dirty fraction crosses the session threshold).
    pub incremental_reps: usize,
}

/// Mutation source: rotates through the suppliers, renaming one per
/// mutation, and remembers each row's current contents so the next
/// delete matches exactly.
struct ChurnDriver {
    /// Current supplier tuples, in stable iteration order.
    current: Vec<Tuple>,
    /// `s_name` column index in the supplier schema.
    name_col: usize,
    /// Rotating cursor over `current`.
    cursor: usize,
    /// Monotonic tick appended to renamed suppliers.
    tick: u64,
}

impl ChurnDriver {
    fn new(db: &Database) -> Result<ChurnDriver> {
        let schema = &db.catalog().table("supplier")?.schema;
        let name_col = schema.resolve(None, "s_name")?;
        let current = db.catalog().data("supplier")?.rows().to_vec();
        Ok(ChurnDriver { current, name_col, cursor: 0, tick: 0 })
    }

    /// Build and apply a batch renaming `n` distinct suppliers.
    fn mutate(&mut self, db: &Database, n: usize) -> Result<()> {
        let mut batch = DeltaBatch::default();
        for _ in 0..n.min(self.current.len()) {
            let idx = self.cursor % self.current.len();
            self.cursor += 1;
            self.tick += 1;
            let old = self.current[idx].clone();
            let mut vals = old.values().to_vec();
            let base = match &vals[self.name_col] {
                Value::Str(s) => s.split(" r#").next().unwrap_or(s).to_string(),
                other => {
                    return Err(Error::exec(format!("s_name should be a string, got {other:?}")))
                }
            };
            vals[self.name_col] = Value::str(format!("{base} r#{}", self.tick));
            let renamed = Tuple::new(vals);
            self.current[idx] = renamed.clone();
            batch.deleted.push(old);
            batch.appended.push(renamed);
        }
        db.apply_delta("supplier", &batch)?;
        Ok(())
    }
}

/// Run the churn sweep. `reps` republishes are measured per churn level
/// on both paths, with fresh mutations before every rep.
pub fn run_incremental(scale: f64, reps: usize) -> Result<Vec<IncrementalRow>> {
    let server = Server::new(
        Database::tpch(scale)?,
        ServerConfig { workers: 2, queue_depth: 64, ..ServerConfig::default() },
    );
    let view = supplier_parts_view(server.database().catalog())?;
    let mut incremental = server.session();
    let mut full = server.session();
    // Threshold 0 ⇒ any non-empty change takes the full-recompute path.
    full.set_republish_threshold(0.0);
    // Warm both caches so every measured rep starts from a baseline.
    incremental.republish(&view, false)?;
    full.republish(&view, false)?;
    let total_groups = incremental
        .published_doc(&view, false)
        .map(|d| d.doc.segments.len())
        .expect("warmed session holds the document");

    let mut driver = ChurnDriver::new(server.database())?;
    let mut rows = Vec::new();
    for churn in CHURN_LEVELS {
        let dirty_groups = ((total_groups as f64 * churn).ceil() as usize).max(1);
        let mut incr_samples: Vec<Duration> = Vec::with_capacity(reps);
        let mut full_samples: Vec<Duration> = Vec::with_capacity(reps);
        let mut incremental_reps = 0usize;
        for _ in 0..reps.max(1) {
            driver.mutate(server.database(), dirty_groups)?;
            let start = Instant::now();
            let (incr_doc, outcome) = incremental.republish(&view, false)?;
            incr_samples.push(start.elapsed());
            if matches!(outcome, RepublishOutcome::Incremental { .. }) {
                incremental_reps += 1;
            }
            let start = Instant::now();
            let (full_doc, full_outcome) = full.republish(&view, false)?;
            full_samples.push(start.elapsed());
            assert!(
                !full_outcome.is_incremental(),
                "threshold-0 session must recompute, got {full_outcome}"
            );
            // The whole point: the fast path must be byte-identical.
            assert_eq!(
                incr_doc, full_doc,
                "incremental republish diverged from full recompute at churn {churn}"
            );
        }
        let incremental_pcts = Percentiles::from_samples(&incr_samples);
        let full_pcts = Percentiles::from_samples(&full_samples);
        rows.push(IncrementalRow {
            churn,
            dirty_groups,
            total_groups,
            speedup_median: full_pcts.median_ms / incremental_pcts.median_ms,
            incremental_ms: ms(*incr_samples.iter().min().expect("reps >= 1")),
            full_ms: ms(*full_samples.iter().min().expect("reps >= 1")),
            incremental_pcts,
            full_pcts,
            incremental_reps,
        });
    }
    Ok(rows)
}

/// Machine-readable summary (`BENCH_incremental.json`).
pub fn render_json(rows: &[IncrementalRow], scale: f64, reps: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"incremental\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n  \"reps\": {reps},\n"));
    out.push_str(&format!(
        "  \"total_groups\": {},\n",
        rows.first().map(|r| r.total_groups).unwrap_or(0)
    ));
    out.push_str("  \"churn\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"churn_pct\": {}, \"dirty_groups\": {}, \"incremental_reps\": {}, \
             \"incremental\": {{\"median_ms\": {:.3}, \"p95_ms\": {:.3}}}, \
             \"full\": {{\"median_ms\": {:.3}, \"p95_ms\": {:.3}}}, \
             \"speedup_median\": {:.3}}}{}\n",
            r.churn * 100.0,
            r.dirty_groups,
            r.incremental_reps,
            r.incremental_pcts.median_ms,
            r.incremental_pcts.p95_ms,
            r.full_pcts.median_ms,
            r.full_pcts.p95_ms,
            r.speedup_median,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Text table for the console.
pub fn render(rows: &[IncrementalRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "Incremental republish vs full recompute (same session machinery, byte-identical)\n\n",
    );
    out.push_str(&format!(
        "{:>9} {:>7}/{:<6} {:>14} {:>14} {:>9}\n",
        "churn", "dirty", "total", "incr med ms", "full med ms", "speedup"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8.2}% {:>7}/{:<6} {:>14.3} {:>14.3} {:>8.2}x\n",
            r.churn * 100.0,
            r.dirty_groups,
            r.total_groups,
            r.incremental_pcts.median_ms,
            r.full_pcts.median_ms,
            r.speedup_median
        ));
    }
    out.push('\n');
    for r in rows {
        let bar = "#".repeat((r.speedup_median * 2.0).round().max(1.0) as usize);
        out.push_str(&format!("{:>8.2}% |{bar} {:.2}x\n", r.churn * 100.0, r.speedup_median));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_sweep_runs_and_stays_byte_identical() {
        // The byte-identity assertion lives inside run_incremental; a
        // completed run at tiny scale is itself the correctness check.
        let rows = run_incremental(0.001, 2).unwrap();
        assert_eq!(rows.len(), CHURN_LEVELS.len());
        for r in &rows {
            assert!(r.dirty_groups >= 1);
            assert!(r.incremental_ms > 0.0 && r.full_ms > 0.0);
            assert!(r.total_groups > 0);
        }
        // Low churn must actually exercise the incremental path.
        assert!(rows[0].incremental_reps > 0, "0.1% churn fell back every rep");
        let text = render(&rows);
        assert!(text.contains("speedup"), "{text}");
    }

    #[test]
    fn incremental_json_is_parseable() {
        let rows = run_incremental(0.001, 2).unwrap();
        let text = render_json(&rows, 0.001, 2);
        let doc = xmlpub_obs::json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("experiment").and_then(|v| v.as_str()), Some("incremental"));
        let churn = match doc.get("churn") {
            Some(xmlpub_obs::json::JsonValue::Arr(items)) => items,
            other => panic!("churn should be an array, got {other:?}"),
        };
        assert_eq!(churn.len(), rows.len());
        for (c, r) in churn.iter().zip(&rows) {
            for side in ["incremental", "full"] {
                let entry = c.get(side).unwrap_or_else(|| panic!("missing {side}"));
                for stat in ["median_ms", "p95_ms"] {
                    let v = entry.get(stat).unwrap_or_else(|| panic!("missing {side}.{stat}"));
                    assert!(
                        matches!(v, xmlpub_obs::json::JsonValue::Num(n) if *n > 0.0),
                        "{side}.{stat} should be positive, got {v:?}"
                    );
                }
            }
            assert!(r.incremental_pcts.p95_ms >= r.incremental_pcts.median_ms);
        }
    }
}
