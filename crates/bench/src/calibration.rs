//! §5.2 calibration: client-side simulation vs the native operator.
//!
//! The paper could only measure GApply through its §5.1 client-side
//! simulation, and used Q4 — the one query where SQL Server's optimizer
//! picked the real operator — to calibrate the simulation's overhead at
//! about +20 %. We have both: the native [`GApplyOp`] and a faithful
//! reimplementation of their simulation procedure, so this experiment
//! reruns the calibration (the simulation should come out slower by a
//! healthy double-digit percentage, confirming the paper's "our
//! simulation is conservative" argument).
//!
//! [`GApplyOp`]: xmlpub::engine::ops::GApplyOp

use crate::harness::{ms, time_min};
use xmlpub::algebra::LogicalPlan;
use xmlpub::engine::client_sim::{overestimate_work, simulate_gapply};
use xmlpub::xml::workloads;
use xmlpub::{Database, Error, PartitionStrategy, Result};

/// Calibration outcome for one query.
#[derive(Debug, Clone)]
pub struct CalibrationRow {
    /// Query name.
    pub query: &'static str,
    /// Native GApply elapsed ms.
    pub native_ms: f64,
    /// Client-side simulation elapsed ms (raw).
    pub sim_ms: f64,
    /// Elapsed ms of the §5.1 Q_overestimate work, subtracted per §5.1.1.
    pub overestimate_ms: f64,
    /// `(sim - overestimate - native) / native`, in percent.
    pub overhead_pct: f64,
}

/// Locate the (outer, group columns, per-group query) of the first
/// GApply in a plan.
fn find_gapply(plan: &LogicalPlan) -> Option<(&LogicalPlan, &[usize], &LogicalPlan)> {
    if let LogicalPlan::GApply { input, group_cols, pgq } = plan {
        return Some((input, group_cols, pgq));
    }
    plan.children().iter().find_map(|c| find_gapply(c))
}

/// Run the calibration for one gapply workload.
fn calibrate(
    db: &Database,
    name: &'static str,
    sql: &str,
    strategy: PartitionStrategy,
    reps: usize,
) -> Result<CalibrationRow> {
    let plan = db.plan(sql)?; // unoptimized: keep the GApply as written
    let (outer, group_cols, pgq) =
        find_gapply(&plan).ok_or_else(|| Error::plan(format!("{name}: no GApply in plan")))?;
    let gapply_only = outer.clone().gapply(group_cols.to_vec(), pgq.clone());

    // Native operator.
    let native_result = db.execute_plan(&gapply_only)?.0;
    let native = time_min(
        || {
            db.execute_plan(&gapply_only).expect("native");
        },
        reps,
    );

    // Client-side simulation (§5.1).
    let sim_outcome = simulate_gapply(db.catalog(), outer, group_cols, pgq, strategy)?;
    assert!(
        sim_outcome.result.bag_eq(&native_result),
        "{name}: simulation diverged: {}",
        sim_outcome.result.bag_diff(&native_result)
    );
    let sim = time_min(
        || {
            simulate_gapply(db.catalog(), outer, group_cols, pgq, strategy).expect("simulation");
        },
        reps,
    );
    // §5.1.1: subtract the CPU time of Q_overestimate (the misc-string
    // building + distinct counting, minus the plain outer execution that
    // a real partition phase would also do).
    let outer_only = time_min(
        || {
            db.execute_plan(outer).expect("outer");
        },
        reps,
    );
    let overestimate = time_min(
        || {
            overestimate_work(db.catalog(), outer, group_cols).expect("overestimate");
        },
        reps,
    );
    let native_ms = ms(native);
    let sim_ms = ms(sim);
    let overestimate_ms = (ms(overestimate) - ms(outer_only)).max(0.0);
    Ok(CalibrationRow {
        query: name,
        native_ms,
        sim_ms,
        overestimate_ms,
        overhead_pct: (sim_ms - overestimate_ms - native_ms) / native_ms * 100.0,
    })
}

/// Run the calibration on Q4 (the paper's query) and Q1 (a union-style
/// per-group query, for breadth).
pub fn run_calibration(
    scale: f64,
    strategy: PartitionStrategy,
    reps: usize,
) -> Result<Vec<CalibrationRow>> {
    let db = Database::tpch(scale)?;
    Ok(vec![
        calibrate(&db, "Q4", &workloads::q4().gapply_sql, strategy, reps)?,
        calibrate(&db, "Q1", &workloads::q1().gapply_sql, strategy, reps)?,
    ])
}

/// Render the calibration table.
pub fn render(rows: &[CalibrationRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "§5.2 calibration — client-side simulation (§5.1) vs native GApply\n\
         (the paper observed the simulation ≈ 20% slower on Q4)\n\n",
    );
    out.push_str(&format!(
        "{:<4} {:>12} {:>12} {:>16} {:>12}\n",
        "Q", "native ms", "sim ms", "overestimate ms", "overhead %"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<4} {:>12.2} {:>12.2} {:>16.2} {:>11.1}%\n",
            r.query, r.native_ms, r.sim_ms, r.overestimate_ms, r.overhead_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_runs_and_simulation_is_slower() {
        let rows = run_calibration(0.001, PartitionStrategy::Hash, 1).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // The simulation does strictly more work; on tiny inputs the
            // noise can flip single runs, so only sanity-check here.
            assert!(r.native_ms > 0.0 && r.sim_ms > 0.0);
        }
    }
}
