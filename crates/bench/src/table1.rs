//! Table 1: effect of the transformation rules.
//!
//! For each rule we take a relevant parameterised query, sweep its
//! parameter, and at every point measure the benefit of firing the rule:
//! *elapsed(rule off) / elapsed(rule on)*, with the rule forced (no cost
//! gate) exactly as the paper's methodology prescribes — that is what
//! makes "average" differ from "average over wins" for the rules that
//! can lose.

use crate::harness::{ms, time_min, SweepStats};
use xmlpub::xml::workloads;
use xmlpub::{Database, OptimizerConfig, Result};

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Rule class (the paper's grouping).
    pub rule_class: &'static str,
    /// Rule name (paper terminology).
    pub rule: &'static str,
    /// Internal rule id (OptimizerConfig::only key).
    pub rule_id: &'static str,
    /// Sweep statistics.
    pub stats: SweepStats,
}

/// Measure one (query, rule) point: benefit of firing the rule.
fn benefit(db_scale: f64, rule: &str, sql: &str, reps: usize) -> Result<f64> {
    let mut db = Database::tpch(db_scale)?;

    // Without the rule.
    db.config_mut().skip_optimizer = true;
    let (plan_off, _) = db.optimized_plan(sql)?;
    // With the rule forced.
    db.config_mut().skip_optimizer = false;
    db.config_mut().optimizer = OptimizerConfig::only(rule);
    db.config_mut().optimizer.cost_gate = false;
    let (plan_on, _) = db.optimized_plan(sql)?;

    // Sanity: the rewrite must preserve the result.
    let off_result = db.execute_plan(&plan_off)?.0;
    let on_result = db.execute_plan(&plan_on)?.0;
    assert!(
        off_result.bag_eq(&on_result),
        "rule {rule} changed the result on {sql}\n{}",
        off_result.bag_diff(&on_result)
    );

    let t_off = time_min(
        || {
            db.execute_plan(&plan_off).expect("off");
        },
        reps,
    );
    let t_on = time_min(
        || {
            db.execute_plan(&plan_on).expect("on");
        },
        reps,
    );
    Ok(ms(t_off) / ms(t_on))
}

/// Run the full Table 1 experiment.
pub fn run_table1(scale: f64, reps: usize) -> Result<Vec<Table1Row>> {
    let price_thresholds = [1000.0, 1250.0, 1500.0, 1750.0, 1900.0, 2000.0, 2060.0, 2090.0];
    let avg_thresholds = [1400.0, 1450.0, 1480.0, 1500.0, 1520.0, 1550.0, 1600.0];
    let mut rows = Vec::new();

    // ---- Basic rules ---------------------------------------------------
    let ratios = price_thresholds
        .iter()
        .map(|&t| benefit(scale, "select-before-gapply", &workloads::selection_sweep_sql(t), reps))
        .collect::<Result<Vec<_>>>()?;
    rows.push(Table1Row {
        rule_class: "Basic Rules",
        rule: "Placing Selection Before GApply",
        rule_id: "select-before-gapply",
        stats: SweepStats::from_ratios(&ratios),
    });

    let ratios = [false, true]
        .iter()
        .map(|&wide| {
            benefit(scale, "project-before-gapply", &workloads::projection_sweep_sql(wide), reps)
        })
        .collect::<Result<Vec<_>>>()?;
    rows.push(Table1Row {
        rule_class: "Basic Rules",
        rule: "Placing Projection Before GApply",
        rule_id: "project-before-gapply",
        stats: SweepStats::from_ratios(&ratios),
    });

    let ratios =
        vec![benefit(scale, "gapply-to-groupby", &workloads::to_groupby_sweep_sql(), reps)?];
    rows.push(Table1Row {
        rule_class: "Basic Rules",
        rule: "Converting GApply To groupby",
        rule_id: "gapply-to-groupby",
        stats: SweepStats::from_ratios(&ratios),
    });

    // ---- Group selection -------------------------------------------------
    let ratios = price_thresholds
        .iter()
        .map(|&t| benefit(scale, "group-selection-exists", &workloads::exists_sweep_sql(t), reps))
        .collect::<Result<Vec<_>>>()?;
    rows.push(Table1Row {
        rule_class: "Group Selection",
        rule: "Exists",
        rule_id: "group-selection-exists",
        stats: SweepStats::from_ratios(&ratios),
    });

    let ratios = avg_thresholds
        .iter()
        .map(|&t| {
            benefit(
                scale,
                "group-selection-aggregate",
                &workloads::aggregate_selection_sweep_sql(t),
                reps,
            )
        })
        .collect::<Result<Vec<_>>>()?;
    rows.push(Table1Row {
        rule_class: "Group Selection",
        rule: "Aggregate Selection",
        rule_id: "group-selection-aggregate",
        stats: SweepStats::from_ratios(&ratios),
    });

    // ---- GApply and joins -------------------------------------------------
    let ratios = vec![benefit(
        scale,
        "invariant-grouping",
        &workloads::invariant_grouping_sweep_sql(),
        reps,
    )?];
    rows.push(Table1Row {
        rule_class: "GApply and Joins",
        rule: "Invariant Grouping",
        rule_id: "invariant-grouping",
        stats: SweepStats::from_ratios(&ratios),
    });

    Ok(rows)
}

/// Render as the paper's Table 1 layout.
pub fn render(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 1 — effect of transformation rules\n\n");
    out.push_str(&format!(
        "{:<18} {:<34} {:>9} {:>9} {:>11} {:>7}\n",
        "Rule Class", "Rule", "Max", "Avg", "AvgOverWins", "Points"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:<34} {:>9.2} {:>9.2} {:>11.2} {:>7}\n",
            r.rule_class, r.rule, r.stats.max, r.stats.avg, r.stats.avg_over_wins, r.stats.points
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_benefit_point_runs() {
        // One cheap point end to end, asserting result preservation.
        let b = benefit(0.001, "select-before-gapply", &workloads::selection_sweep_sql(2060.0), 1)
            .unwrap();
        assert!(b > 0.0);
    }

    #[test]
    fn render_layout() {
        let rows = vec![Table1Row {
            rule_class: "Basic Rules",
            rule: "Placing Selection Before GApply",
            rule_id: "select-before-gapply",
            stats: SweepStats { max: 10.0, avg: 5.0, avg_over_wins: 5.0, points: 3 },
        }];
        let text = render(&rows);
        assert!(text.contains("AvgOverWins"), "{text}");
        assert!(text.contains("10.00"), "{text}");
    }
}
