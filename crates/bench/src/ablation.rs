//! Ablations: design-choice studies DESIGN.md calls out.
//!
//! 1. **Hash vs sort partitioning** — §5.2: "the impact of GApply is
//!    comparable whether we perform partitioning through sorting or
//!    through hashing"; we verify on Q1–Q4.
//! 2. **Cost-gated vs always-fired group selection** — §4.2 notes the
//!    rule wins only for selective predicates; the §4.4 cost model
//!    should keep the losses and keep the wins.
//! 3. **Group-size skew** — §4.4's costing assumes uniform groups; the
//!    skew knob of the generator stresses that assumption.
//! 4. **Apply memoization** — how much of the classic plans' viability
//!    comes from the correlated-subquery spool.

use crate::harness::{ms, time_min};
use xmlpub::xml::workloads;
use xmlpub::{Database, OptimizerConfig, PartitionStrategy, Result};
use xmlpub_tpch::{TpchConfig, TpchGenerator};

/// Hash vs sort partitioning across the Figure 8 workloads.
pub fn partitioning(scale: f64, reps: usize) -> Result<String> {
    let mut out = String::from("Ablation — GApply partition strategy (gapply formulations)\n\n");
    out.push_str(&format!("{:<4} {:>10} {:>10} {:>9}\n", "Q", "hash ms", "sort ms", "sort/hash"));
    for w in workloads::figure8_workloads() {
        let mut db = Database::tpch(scale)?;
        db.config_mut().engine.partition_strategy = PartitionStrategy::Hash;
        let (plan, _) = db.optimized_plan(&w.gapply_sql)?;
        let hash = time_min(
            || {
                db.execute_plan(&plan).expect("hash");
            },
            reps,
        );
        db.config_mut().engine.partition_strategy = PartitionStrategy::Sort;
        let sort = time_min(
            || {
                db.execute_plan(&plan).expect("sort");
            },
            reps,
        );
        out.push_str(&format!(
            "{:<4} {:>10.2} {:>10.2} {:>9.2}\n",
            w.name,
            ms(hash),
            ms(sort),
            ms(sort) / ms(hash)
        ));
    }
    Ok(out)
}

/// Cost-gated vs always-fired group selection across the exists sweep.
pub fn cost_gate(scale: f64, reps: usize) -> Result<String> {
    let thresholds = [1000.0, 1500.0, 1800.0, 2000.0, 2060.0, 2090.0];
    let mut out =
        String::from("Ablation — group selection: never fire vs always fire vs cost-gated\n\n");
    out.push_str(&format!(
        "{:>9} {:>10} {:>10} {:>10} {:>7}\n",
        "threshold", "never ms", "always ms", "gated ms", "fired?"
    ));
    for &t in &thresholds {
        let sql = workloads::exists_sweep_sql(t);
        let mut db = Database::tpch(scale)?;
        db.config_mut().skip_optimizer = true;
        let (never_plan, _) = db.optimized_plan(&sql)?;
        let never = time_min(
            || {
                db.execute_plan(&never_plan).expect("never");
            },
            reps,
        );

        db.config_mut().skip_optimizer = false;
        db.config_mut().optimizer = OptimizerConfig::only("group-selection-exists");
        db.config_mut().optimizer.cost_gate = false;
        let (always_plan, _) = db.optimized_plan(&sql)?;
        let always = time_min(
            || {
                db.execute_plan(&always_plan).expect("always");
            },
            reps,
        );

        db.config_mut().optimizer.cost_gate = true;
        let (gated_plan, log) = db.optimized_plan(&sql)?;
        let gated = time_min(
            || {
                db.execute_plan(&gated_plan).expect("gated");
            },
            reps,
        );
        let fired = log.iter().any(|f| f.rule == "group-selection-exists");

        out.push_str(&format!(
            "{:>9.0} {:>10.2} {:>10.2} {:>10.2} {:>7}\n",
            t,
            ms(never),
            ms(always),
            ms(gated),
            if fired { "yes" } else { "no" }
        ));
    }
    Ok(out)
}

/// Group-size skew sweep (stressing §4.4's uniformity assumption).
pub fn skew(scale: f64, reps: usize) -> Result<String> {
    let mut out = String::from("Ablation — partsupp fan-out skew (Q2 gapply)\n\n");
    out.push_str(&format!("{:>5} {:>12} {:>10}\n", "skew", "rows", "gapply ms"));
    for &skew in &[0.0, 0.5, 1.0, 2.0] {
        let gen = TpchGenerator::new(TpchConfig { scale, skew, ..Default::default() });
        let db = Database::from_catalog(gen.core_catalog()?);
        let (plan, _) = db.optimized_plan(&workloads::q2().gapply_sql)?;
        let mut result_rows = 0;
        let t = time_min(
            || {
                result_rows = db.execute_plan(&plan).expect("skew run").0.len();
            },
            reps,
        );
        out.push_str(&format!("{:>5.1} {:>12} {:>10.2}\n", skew, result_rows, ms(t)));
    }
    Ok(out)
}

/// Apply memoization on/off for the classic Q2 (correlated subqueries).
pub fn apply_memo(scale: f64, reps: usize) -> Result<String> {
    // Decorrelation is disabled so the correlated Apply survives into
    // the plan: the point is to measure the spool itself.
    let sql = workloads::q2().classic_sql;
    let mut db = Database::tpch(scale)?;
    db.config_mut().optimizer.decorrelate_subqueries = false;
    let (plan, _) = db.optimized_plan(&sql)?;
    let memo_on = time_min(
        || {
            db.execute_plan(&plan).expect("memo on");
        },
        reps,
    );
    let (_, stats_on) = db.execute_plan(&plan)?;
    db.config_mut().engine.memoize_correlated_apply = false;
    let memo_off = time_min(
        || {
            db.execute_plan(&plan).expect("memo off");
        },
        reps,
    );
    let (_, stats_off) = db.execute_plan(&plan)?;
    Ok(format!(
        "Ablation — correlated-apply memoization (classic Q2)\n\n\
         memo on:  {:>10.2} ms  ({} inner executions, {} cache hits)\n\
         memo off: {:>10.2} ms  ({} inner executions)\n\
         the Figure 8 baseline decorrelates these subqueries entirely;\n\
         this ablation disables decorrelation to isolate the spool.\n",
        ms(memo_on),
        stats_on.apply_inner_executions,
        stats_on.apply_cache_hits,
        ms(memo_off),
        stats_off.apply_inner_executions,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_run_at_tiny_scale() {
        let p = partitioning(0.0005, 1).unwrap();
        assert!(p.contains("Q1"), "{p}");
        let s = skew(0.0005, 1).unwrap();
        assert!(s.contains("0.0"), "{s}");
        let m = apply_memo(0.0005, 1).unwrap();
        assert!(m.contains("memo on"), "{m}");
    }

    #[test]
    fn cost_gate_ablation_runs() {
        let g = cost_gate(0.0005, 1).unwrap();
        assert!(g.contains("fired?"), "{g}");
        // Whether the gate fires depends on the cost model's verdict at
        // this scale; the table itself must render either way.
        assert!(g.contains("yes") || g.contains("no"), "{g}");
    }
}
