//! Figure 8: speedup using GApply, queries Q1–Q4.
//!
//! For each workload we compile and run the classic sorted-outer-union
//! formulation (§2) and the gapply formulation (§3.1) through the full
//! stack, and report the ratio *time(without GApply) / time(with
//! GApply)* — the paper's Y axis ("a ratio of 2 indicates 50 % speedup").

use crate::harness::{ms, time_min};
use xmlpub::xml::workloads::figure8_workloads;
use xmlpub::{Database, PartitionStrategy, Result};

/// One bar of Figure 8.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Query name (Q1..Q4).
    pub query: &'static str,
    /// What the query does.
    pub description: &'static str,
    /// Classic formulation elapsed ms.
    pub classic_ms: f64,
    /// GApply formulation elapsed ms.
    pub gapply_ms: f64,
    /// `classic_ms / gapply_ms` — the figure's ratio.
    pub speedup: f64,
    /// Result cardinalities (sanity: both sides did the work).
    pub classic_rows: usize,
    /// GApply-side output rows.
    pub gapply_rows: usize,
}

/// Run the Figure 8 experiment.
pub fn run_fig8(scale: f64, strategy: PartitionStrategy, reps: usize) -> Result<Vec<Fig8Row>> {
    let mut db = Database::tpch(scale)?;
    db.config_mut().engine.partition_strategy = strategy;
    let mut rows = Vec::new();
    for w in figure8_workloads() {
        // Pre-compile to exclude parse/bind time from the measurement
        // (the paper measures engine time).
        let (classic_plan, _) = db.optimized_plan(&w.classic_sql)?;
        let (gapply_plan, _) = db.optimized_plan(&w.gapply_sql)?;
        let mut classic_rows = 0;
        let classic = time_min(
            || {
                classic_rows = db.execute_plan(&classic_plan).expect("classic run").0.len();
            },
            reps,
        );
        let mut gapply_rows = 0;
        let gapply = time_min(
            || {
                gapply_rows = db.execute_plan(&gapply_plan).expect("gapply run").0.len();
            },
            reps,
        );
        rows.push(Fig8Row {
            query: w.name,
            description: w.description,
            classic_ms: ms(classic),
            gapply_ms: ms(gapply),
            speedup: ms(classic) / ms(gapply),
            classic_rows,
            gapply_rows,
        });
    }
    Ok(rows)
}

/// Render the figure as a text table plus an ASCII bar chart.
pub fn render(rows: &[Fig8Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 8 — speedup using GApply (ratio = time without / time with)\n\n");
    out.push_str(&format!(
        "{:<4} {:>12} {:>12} {:>8}  {:>10} {:>10}\n",
        "Q", "classic ms", "gapply ms", "ratio", "rows(c)", "rows(g)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<4} {:>12.2} {:>12.2} {:>8.2}  {:>10} {:>10}\n",
            r.query, r.classic_ms, r.gapply_ms, r.speedup, r.classic_rows, r.gapply_rows
        ));
    }
    out.push('\n');
    for r in rows {
        let bar = "#".repeat((r.speedup * 10.0).round().max(1.0) as usize);
        out.push_str(&format!("{:<4} |{bar} {:.2}x\n", r.query, r.speedup));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_runs_at_tiny_scale() {
        let rows = run_fig8(0.001, PartitionStrategy::Hash, 1).unwrap();
        assert_eq!(rows.len(), 5); // Q1-Q4 plus the Q4r join-order variant
        for r in &rows {
            assert!(r.gapply_rows > 0, "{} produced nothing", r.query);
            assert!(r.classic_ms > 0.0 && r.gapply_ms > 0.0);
        }
        let text = render(&rows);
        assert!(text.contains("Q1"), "{text}");
        assert!(text.contains("ratio"), "{text}");
    }
}
