//! Figure 8: speedup using GApply, queries Q1–Q4.
//!
//! For each workload we compile and run the classic sorted-outer-union
//! formulation (§2) and the gapply formulation (§3.1) through the full
//! stack, and report the ratio *time(without GApply) / time(with
//! GApply)* — the paper's Y axis ("a ratio of 2 indicates 50 % speedup").

use crate::harness::{ms, time_samples, Percentiles};
use xmlpub::xml::workloads::figure8_workloads;
use xmlpub::{Database, EngineConfig, PartitionStrategy, Result};
use xmlpub_obs::json::escape_into;

/// Degree of parallelism for the morsel-scheduler measurement of the
/// classic formulation.
const MORSEL_DOP: usize = 4;

/// One bar of Figure 8.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Query name (Q1..Q4).
    pub query: &'static str,
    /// What the query does.
    pub description: &'static str,
    /// Classic formulation elapsed ms (best of `reps`).
    pub classic_ms: f64,
    /// GApply formulation elapsed ms (best of `reps`).
    pub gapply_ms: f64,
    /// `classic_ms / gapply_ms` — the figure's ratio.
    pub speedup: f64,
    /// Classic formulation under the morsel scheduler (`dop = 4`),
    /// elapsed ms (best of `reps`) — the non-GApply plan's pipeline
    /// operators (filter/project/hash-join/aggregate) split into
    /// work-stealing row morsels.
    pub morsel_ms: f64,
    /// Median / p95 over all classic reps.
    pub classic_pcts: Percentiles,
    /// Median / p95 over all gapply reps.
    pub gapply_pcts: Percentiles,
    /// Median / p95 over all morsel (classic, dop 4) reps.
    pub morsel_pcts: Percentiles,
    /// Result cardinalities (sanity: both sides did the work).
    pub classic_rows: usize,
    /// GApply-side output rows.
    pub gapply_rows: usize,
}

/// Run the Figure 8 experiment.
pub fn run_fig8(scale: f64, strategy: PartitionStrategy, reps: usize) -> Result<Vec<Fig8Row>> {
    let mut db = Database::tpch(scale)?;
    db.config_mut().engine.partition_strategy = strategy;
    let mut rows = Vec::new();
    for w in figure8_workloads() {
        // Pre-compile to exclude parse/bind time from the measurement
        // (the paper measures engine time).
        let (classic_plan, _) = db.optimized_plan(&w.classic_sql)?;
        let (gapply_plan, _) = db.optimized_plan(&w.gapply_sql)?;
        let mut classic_rows = 0;
        let classic = time_samples(
            || {
                classic_rows = db.execute_plan(&classic_plan).expect("classic run").0.len();
            },
            reps,
        );
        let mut gapply_rows = 0;
        let gapply = time_samples(
            || {
                gapply_rows = db.execute_plan(&gapply_plan).expect("gapply run").0.len();
            },
            reps,
        );
        // The same classic plan through the morsel scheduler: no plan
        // change, the pipeline operators split into row morsels.
        let morsel_config = EngineConfig { dop: MORSEL_DOP, ..db.config().engine };
        let morsel = time_samples(
            || {
                xmlpub::engine::execute_with_config(&classic_plan, db.catalog(), &morsel_config)
                    .expect("morsel run");
            },
            reps,
        );
        let classic_best = ms(*classic.iter().min().expect("at least one rep"));
        let gapply_best = ms(*gapply.iter().min().expect("at least one rep"));
        let morsel_best = ms(*morsel.iter().min().expect("at least one rep"));
        rows.push(Fig8Row {
            query: w.name,
            description: w.description,
            classic_ms: classic_best,
            gapply_ms: gapply_best,
            morsel_ms: morsel_best,
            speedup: classic_best / gapply_best,
            classic_pcts: Percentiles::from_samples(&classic),
            gapply_pcts: Percentiles::from_samples(&gapply),
            morsel_pcts: Percentiles::from_samples(&morsel),
            classic_rows,
            gapply_rows,
        });
    }
    Ok(rows)
}

/// Render the figure as a machine-readable JSON document
/// (`BENCH_fig8.json`): one entry per query with median and p95
/// latency for both formulations, plus the run parameters.
pub fn render_json(rows: &[Fig8Row], scale: f64, reps: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"fig8\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n  \"reps\": {reps},\n"));
    out.push_str("  \"queries\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\"name\": ");
        escape_into(&mut out, r.query);
        out.push_str(&format!(
            ", \"classic\": {{\"median_ms\": {:.3}, \"p95_ms\": {:.3}}}, \
             \"gapply\": {{\"median_ms\": {:.3}, \"p95_ms\": {:.3}}}, \
             \"morsel_dop{}\": {{\"median_ms\": {:.3}, \"p95_ms\": {:.3}}}, \
             \"speedup\": {:.3}}}{}\n",
            r.classic_pcts.median_ms,
            r.classic_pcts.p95_ms,
            r.gapply_pcts.median_ms,
            r.gapply_pcts.p95_ms,
            MORSEL_DOP,
            r.morsel_pcts.median_ms,
            r.morsel_pcts.p95_ms,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render the figure as a text table plus an ASCII bar chart.
pub fn render(rows: &[Fig8Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 8 — speedup using GApply (ratio = time without / time with)\n\n");
    out.push_str(&format!(
        "{:<4} {:>12} {:>12} {:>12} {:>8}  {:>10} {:>10}\n",
        "Q",
        "classic ms",
        "gapply ms",
        format!("morsel{MORSEL_DOP} ms"),
        "ratio",
        "rows(c)",
        "rows(g)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<4} {:>12.2} {:>12.2} {:>12.2} {:>8.2}  {:>10} {:>10}\n",
            r.query,
            r.classic_ms,
            r.gapply_ms,
            r.morsel_ms,
            r.speedup,
            r.classic_rows,
            r.gapply_rows
        ));
    }
    out.push('\n');
    for r in rows {
        let bar = "#".repeat((r.speedup * 10.0).round().max(1.0) as usize);
        out.push_str(&format!("{:<4} |{bar} {:.2}x\n", r.query, r.speedup));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_runs_at_tiny_scale() {
        let rows = run_fig8(0.001, PartitionStrategy::Hash, 1).unwrap();
        assert_eq!(rows.len(), 5); // Q1-Q4 plus the Q4r join-order variant
        for r in &rows {
            assert!(r.gapply_rows > 0, "{} produced nothing", r.query);
            assert!(r.classic_ms > 0.0 && r.gapply_ms > 0.0 && r.morsel_ms > 0.0);
        }
        let text = render(&rows);
        assert!(text.contains("Q1"), "{text}");
        assert!(text.contains("ratio"), "{text}");
    }

    #[test]
    fn json_output_is_parseable_and_complete() {
        let rows = run_fig8(0.001, PartitionStrategy::Hash, 2).unwrap();
        let text = render_json(&rows, 0.001, 2);
        let doc = xmlpub_obs::json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("experiment").and_then(|v| v.as_str()), Some("fig8"));
        let queries = match doc.get("queries") {
            Some(xmlpub_obs::json::JsonValue::Arr(items)) => items,
            other => panic!("queries should be an array, got {other:?}"),
        };
        assert_eq!(queries.len(), rows.len());
        for (q, r) in queries.iter().zip(&rows) {
            assert_eq!(q.get("name").and_then(|v| v.as_str()), Some(r.query));
            for side in ["classic", "gapply", "morsel_dop4"] {
                let entry = q.get(side).unwrap_or_else(|| panic!("missing {side}"));
                for stat in ["median_ms", "p95_ms"] {
                    let v = entry.get(stat).unwrap_or_else(|| panic!("missing {side}.{stat}"));
                    assert!(
                        matches!(v, xmlpub_obs::json::JsonValue::Num(n) if *n > 0.0),
                        "{side}.{stat} should be a positive number, got {v:?}"
                    );
                }
            }
            // p95 can never undercut the median (nearest-rank, same series).
            assert!(r.classic_pcts.p95_ms >= r.classic_pcts.median_ms);
            assert!(r.gapply_pcts.p95_ms >= r.gapply_pcts.median_ms);
            assert!(r.morsel_pcts.p95_ms >= r.morsel_pcts.median_ms);
        }
    }
}
