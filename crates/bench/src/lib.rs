//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (§5).
//!
//! * [`fig8`] — Figure 8: speedup of the gapply formulation over the
//!   classic sorted-outer-union formulation for Q1–Q4;
//! * [`table1`] — Table 1: per-rule benefit sweeps (maximum / average /
//!   average-over-wins);
//! * [`calibration`] — the §5.2 Q4 experiment calibrating the §5.1
//!   client-side simulation against the native operator (~+20 % in the
//!   paper);
//! * [`ablation`] — studies the paper mentions but does not tabulate:
//!   hash vs sort partitioning ("the impact of GApply is comparable
//!   whether we perform partitioning through sorting or through
//!   hashing"), cost-gated vs always-fired group selection, and a
//!   group-size skew sweep stressing the §4.4 uniformity assumption.
//!
//! The same entry points back both the `experiments` binary (paper-style
//! text tables) and the Criterion benches.

pub mod ablation;
pub mod calibration;
pub mod fig8;
pub mod harness;
pub mod incremental;
pub mod table1;

pub use fig8::{run_fig8, Fig8Row};
pub use incremental::{run_incremental, IncrementalRow};
pub use table1::{run_table1, Table1Row};
