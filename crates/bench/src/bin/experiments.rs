//! `experiments` — regenerate the paper's evaluation artifacts.
//!
//! ```text
//! experiments [fig8|table1|calibration|ablation|incremental|all] [--scale S] [--reps N]
//!             [--sort] [--json PATH]
//! ```
//!
//! Defaults: scale 0.01 (≈ 100 suppliers, 8 000 partsupp rows), 3 reps,
//! hash partitioning. EXPERIMENTS.md records a run at scale 0.02.
//!
//! A `fig8` (or `all`) run also writes a machine-readable summary —
//! name, median and p95 latency per query — to `BENCH_fig8.json`
//! (override with `--json`), the companion to the prose
//! `docs/experiment_log.txt`. An `incremental` (or `all`) run likewise
//! writes the churn sweep — incremental republish vs full recompute —
//! to `BENCH_incremental.json`.

use xmlpub::PartitionStrategy;
use xmlpub_bench::{ablation, calibration, fig8, incremental, table1};

struct Args {
    command: String,
    scale: f64,
    reps: usize,
    strategy: PartitionStrategy,
    json: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: "all".to_string(),
        scale: 0.01,
        reps: 3,
        strategy: PartitionStrategy::Hash,
        json: "BENCH_fig8.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "fig8" | "table1" | "calibration" | "ablation" | "incremental" | "all" => {
                args.command = a
            }
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"))
            }
            "--reps" => {
                args.reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--reps needs an integer"))
            }
            "--sort" => args.strategy = PartitionStrategy::Sort,
            "--json" => args.json = it.next().unwrap_or_else(|| die("--json needs a path")),
            other => die(&format!("unknown argument '{other}'")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: experiments [fig8|table1|calibration|ablation|incremental|all] \
         [--scale S] [--reps N] [--sort] [--json PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    println!(
        "== reproduction of 'On Relational Support for XML Publishing' (SIGMOD 2003) ==\n\
         scale factor {}, {} reps, {:?} partitioning\n",
        args.scale, args.reps, args.strategy
    );
    let run = |name: &str| args.command == name || args.command == "all";

    if run("fig8") {
        let rows = fig8::run_fig8(args.scale, args.strategy, args.reps).expect("figure 8 failed");
        println!("{}", fig8::render(&rows));
        let json = fig8::render_json(&rows, args.scale, args.reps);
        match std::fs::write(&args.json, &json) {
            Ok(()) => println!("wrote {}", args.json),
            Err(e) => eprintln!("could not write {}: {e}", args.json),
        }
    }
    if run("incremental") {
        let rows = incremental::run_incremental(args.scale, args.reps).expect("incremental failed");
        println!("{}", incremental::render(&rows));
        let json = incremental::render_json(&rows, args.scale, args.reps);
        let path = "BENCH_incremental.json";
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    if run("table1") {
        let rows = table1::run_table1(args.scale, args.reps).expect("table 1 failed");
        println!("{}", table1::render(&rows));
    }
    if run("calibration") {
        let rows = calibration::run_calibration(args.scale, args.strategy, args.reps)
            .expect("calibration failed");
        println!("{}", calibration::render(&rows));
    }
    if run("ablation") {
        println!("{}", ablation::partitioning(args.scale, args.reps).expect("partitioning"));
        println!("{}", ablation::cost_gate(args.scale, args.reps).expect("cost gate"));
        println!("{}", ablation::skew(args.scale, args.reps).expect("skew"));
        println!("{}", ablation::apply_memo(args.scale, args.reps).expect("memoization"));
    }
}
