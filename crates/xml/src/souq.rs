//! Sorted outer union query generation.
//!
//! Publishing a view through the middleware tagger requires one
//! relational query whose result is *clustered by the element keys* —
//! "the result tuples must be clustered by the element to which they
//! correspond; the only way of ensuring this in SQL is by ordering them
//! by the key" (§2). This module builds that query: one UNION ALL branch
//! per view node, ancestor keys replicated into every branch, NULL
//! padding elsewhere, and an ORDER BY over the interleaved
//! key/branch-ordinal columns that makes parents sort immediately before
//! their children.

use crate::view::{ViewNode, XmlView};
use xmlpub_algebra::{plan::null_item, LogicalPlan, ProjectItem, SortKey};
use xmlpub_common::{Result, Tuple, Value};
use xmlpub_expr::Expr;

/// Tagging metadata for one view node (one union branch).
#[derive(Debug, Clone)]
pub struct BranchTag {
    /// Element name to open for each row of this branch.
    pub element: String,
    /// Depth in the view tree (root = 0).
    pub depth: usize,
    /// For every level `0..=depth`, the absolute output columns of that
    /// level's keys.
    pub key_cols: Vec<Vec<usize>>,
    /// `(absolute output column, output name, mapping kind)` for this
    /// node's fields.
    pub field_cols: Vec<(usize, String, crate::view::FieldKind)>,
}

/// Everything the tagger needs to interpret the sorted-outer-union rows.
#[derive(Debug, Clone)]
pub struct TagPlan {
    /// Document element wrapping the output.
    pub document_element: String,
    /// Column carrying the branch id.
    pub lvl_col: usize,
    /// Branch metadata, indexed by branch id.
    pub branches: Vec<BranchTag>,
}

impl TagPlan {
    /// The absolute output columns of the *root* element's keys. These
    /// are the leading sort columns, so each root element's subtree is a
    /// contiguous run of rows — and of output bytes — which is what the
    /// incremental splice re-tagger exploits.
    pub fn root_key_cols(&self) -> &[usize] {
        &self.branches[0].key_cols[0]
    }

    /// Whether `row` is a root-element row (depth 0) — the first row of
    /// its subtree in the clustered stream.
    pub fn is_root_row(&self, row: &Tuple) -> Result<bool> {
        Ok(self.branches[branch_id(row, self)?].depth == 0)
    }

    /// The root-key values of `row` as a tuple (every branch replicates
    /// the root keys, so this works at any depth).
    pub fn root_key_of(&self, row: &Tuple) -> Tuple {
        Tuple::new(self.root_key_cols().iter().map(|&c| row.value(c).clone()).collect())
    }
}

/// A generated sorted outer union: the plan plus its tagging metadata.
#[derive(Debug, Clone)]
pub struct SortedOuterUnion {
    /// The relational plan (UnionAll under OrderBy).
    pub plan: LogicalPlan,
    /// Tagging metadata.
    pub tag_plan: TagPlan,
}

/// Per-node info gathered during layout.
struct NodeInfo<'v> {
    node: &'v ViewNode,
    /// Root-to-node path as indices into `infos`.
    path: Vec<usize>,
    /// Child ordinal within the parent (0 for the root).
    ordinal: usize,
}

/// Build the sorted outer union for a view.
pub fn sorted_outer_union(view: &XmlView) -> Result<SortedOuterUnion> {
    build_sorted_outer_union(view, None)
}

/// Build a sorted outer union **restricted to the given root keys**: the
/// root source is filtered to the rows whose key columns match one of
/// `root_keys`, and every child branch joins against that restricted
/// root, so the plan computes exactly the selected subtrees — clustered
/// and ordered exactly as the corresponding run of the full document
/// (the final ORDER BY covers the entire key prefix, and the key
/// discipline leaves it no ties to break, so the restriction cannot
/// reorder anything). With no keys the plan yields the empty stream.
///
/// This is the re-tagger's workhorse: republish cost becomes the cost
/// of the dirty subtrees, not the document.
pub fn sorted_outer_union_for_keys(
    view: &XmlView,
    root_keys: &[Tuple],
) -> Result<SortedOuterUnion> {
    build_sorted_outer_union(view, Some(root_keys))
}

/// `OR`-chain of per-key `AND`-chains matching `key_columns` against
/// each tuple of `keys` (the algebra has no IN-list primitive; dirty
/// sets are small enough that the chain is fine).
fn key_match_predicate(key_columns: &[usize], keys: &[Tuple]) -> Expr {
    let mut pred: Option<Expr> = None;
    for key in keys {
        let mut conj: Option<Expr> = None;
        for (ki, &col) in key_columns.iter().enumerate() {
            let eq = Expr::col(col).eq(Expr::lit(key.value(ki).clone()));
            conj = Some(match conj {
                Some(c) => c.and(eq),
                None => eq,
            });
        }
        if let Some(conj) = conj {
            pred = Some(match pred {
                Some(p) => p.or(conj),
                None => conj,
            });
        }
    }
    pred.unwrap_or_else(|| Expr::lit(Value::Bool(false)))
}

fn build_sorted_outer_union(
    view: &XmlView,
    root_keys: Option<&[Tuple]>,
) -> Result<SortedOuterUnion> {
    view.validate()?;
    // DFS preorder over the nodes.
    let mut infos: Vec<NodeInfo<'_>> = Vec::new();
    fn collect<'v>(
        node: &'v ViewNode,
        path: Vec<usize>,
        ordinal: usize,
        infos: &mut Vec<NodeInfo<'v>>,
    ) {
        let my_idx = infos.len();
        let mut my_path = path;
        my_path.push(my_idx);
        infos.push(NodeInfo { node, path: my_path.clone(), ordinal });
        for (i, link) in node.children.iter().enumerate() {
            collect(&link.node, my_path.clone(), i, infos);
        }
    }
    collect(&view.root, Vec::new(), 0, &mut infos);

    // ---- Column layout -------------------------------------------------
    // Sort prefix: keys of the nodes along each level position, in DFS
    // order per node (each node gets its own key block + an ordinal
    // column, except the root which needs no ordinal). A chain view gets
    // the classic keys0, ord1, keys1, … layout; trees linearise by node.
    let mut key_start = vec![0usize; infos.len()];
    let mut ord_col = vec![None::<usize>; infos.len()];
    let mut cursor = 0usize;
    for (i, info) in infos.iter().enumerate() {
        if i > 0 {
            ord_col[i] = Some(cursor);
            cursor += 1;
        }
        key_start[i] = cursor;
        cursor += info.node.key_columns.len();
    }
    let lvl_col = cursor;
    cursor += 1;
    let mut field_start = vec![0usize; infos.len()];
    for (i, info) in infos.iter().enumerate() {
        field_start[i] = cursor;
        cursor += info.node.fields.len();
    }
    let total_width = cursor;

    // ---- Branch plans ----------------------------------------------------
    let mut branches = Vec::with_capacity(infos.len());
    let mut tag_branches = Vec::with_capacity(infos.len());
    for (branch_id, info) in infos.iter().enumerate() {
        // Join the sources along the path; offsets[i] = column offset of
        // path node i's source within the joined plan.
        let mut offsets = vec![0usize];
        let mut plan = infos[info.path[0]].node.source.clone();
        // Restricted build: filter the root source, and — whenever the
        // link columns carry the root key down the path — filter each
        // child source directly too, so the engine never materialises
        // an unrestricted child-side join just to throw most of it
        // away. `link_key_map[j]` is the column of the *current* path
        // node's source known equal to root key column `j` (dies as
        // soon as a link joins on something other than the root key;
        // the inner joins still restrict those levels transitively).
        let mut link_key_map: Option<Vec<usize>> = None;
        if let Some(keys) = root_keys {
            let root = infos[info.path[0]].node;
            plan = plan.select(key_match_predicate(&root.key_columns, keys));
            link_key_map = Some(root.key_columns.clone());
        }
        for window in info.path.windows(2) {
            let (parent_idx, child_idx) = (window[0], window[1]);
            let parent = infos[parent_idx].node;
            let child = infos[child_idx].node;
            let link = parent
                .children
                .iter()
                .find(|l| std::ptr::eq(&l.node as *const _, child as *const _))
                .expect("path child is a child of its parent");
            let parent_off = *offsets.last().unwrap();
            let left_width = plan.schema().len();
            offsets.push(left_width);
            let mut child_source = child.source.clone();
            if let Some(keys) = root_keys {
                link_key_map = link_key_map.as_ref().and_then(|m| {
                    m.iter()
                        .map(|&pc| (pc == link.parent_col).then_some(link.child_col))
                        .collect::<Option<Vec<usize>>>()
                });
                if let Some(map) = &link_key_map {
                    child_source = child_source.select(key_match_predicate(map, keys));
                }
            }
            plan = plan.join(
                child_source,
                Expr::col(parent_off + link.parent_col).eq(Expr::col(left_width + link.child_col)),
            );
        }

        // Projection into the global layout.
        let mut items: Vec<Option<ProjectItem>> = vec![None; total_width];
        for (pos_in_path, &node_idx) in info.path.iter().enumerate() {
            let node = infos[node_idx].node;
            let off = offsets[pos_in_path];
            for (ki, &k) in node.key_columns.iter().enumerate() {
                items[key_start[node_idx] + ki] = Some(ProjectItem {
                    expr: Expr::col(off + k),
                    alias: Some(format!("k{node_idx}_{ki}")),
                });
            }
            if let Some(oc) = ord_col[node_idx] {
                items[oc] = Some(ProjectItem::named(
                    Expr::lit(infos[node_idx].ordinal as i64),
                    format!("ord{node_idx}"),
                ));
            }
        }
        items[lvl_col] = Some(ProjectItem::named(Expr::lit(branch_id as i64), "lvl".to_string()));
        let this = info.node;
        for (fi, f) in this.fields.iter().enumerate() {
            let off = *offsets.last().unwrap();
            items[field_start[branch_id] + fi] = Some(ProjectItem {
                expr: Expr::col(off + f.column),
                alias: Some(format!("f{branch_id}_{fi}")),
            });
        }
        let items: Vec<ProjectItem> = items
            .into_iter()
            .enumerate()
            .map(|(i, it)| it.unwrap_or_else(|| null_item(format!("n{i}"))))
            .collect();
        branches.push(plan.project(items));

        tag_branches.push(BranchTag {
            element: this.element.clone(),
            depth: info.path.len() - 1,
            key_cols: info
                .path
                .iter()
                .map(|&ni| {
                    (0..infos[ni].node.key_columns.len()).map(|ki| key_start[ni] + ki).collect()
                })
                .collect(),
            field_cols: this
                .fields
                .iter()
                .enumerate()
                .map(|(fi, f)| (field_start[branch_id] + fi, f.name.clone(), f.kind))
                .collect(),
        });
    }

    let union = if branches.len() == 1 {
        branches.pop().expect("one branch")
    } else {
        LogicalPlan::union_all(branches)
    };
    // Cluster: sort by the whole key/ordinal prefix (NULL-first ordering
    // puts each parent row immediately before its children).
    let sort_keys: Vec<SortKey> = (0..lvl_col).map(SortKey::asc).collect();
    let plan = union.order_by(sort_keys);

    Ok(SortedOuterUnion {
        plan,
        tag_plan: TagPlan {
            document_element: view.document_element.clone(),
            lvl_col,
            branches: tag_branches,
        },
    })
}

/// Branch-id helper for tests and the tagger.
pub fn branch_id(row: &xmlpub_common::Tuple, tag_plan: &TagPlan) -> Result<usize> {
    match row.value(tag_plan.lvl_col) {
        Value::Int(b) if (*b as usize) < tag_plan.branches.len() => Ok(*b as usize),
        other => Err(xmlpub_common::Error::Xml(format!("bad branch id {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::supplier_parts_view;
    use xmlpub_engine::execute;
    use xmlpub_tpch::TpchGenerator;

    #[test]
    fn figure1_sou_layout() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = supplier_parts_view(&cat).unwrap();
        let sou = sorted_outer_union(&view).unwrap();
        // keys0(1) + ord1(1) + keys1(1) + lvl(1) + sup fields(2) + part
        // fields(2) = 8 columns.
        assert_eq!(sou.plan.schema().len(), 8);
        assert_eq!(sou.tag_plan.lvl_col, 3);
        assert_eq!(sou.tag_plan.branches.len(), 2);
        assert_eq!(sou.tag_plan.branches[0].element, "supplier");
        assert_eq!(sou.tag_plan.branches[1].element, "part");
        assert_eq!(sou.tag_plan.branches[1].depth, 1);
    }

    #[test]
    fn sou_rows_are_clustered_parent_first() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = supplier_parts_view(&cat).unwrap();
        let sou = sorted_outer_union(&view).unwrap();
        let result = execute(&sou.plan, &cat).unwrap();
        // 10 suppliers + 800 partsupp rows.
        assert_eq!(result.len(), 810);
        // Walk the stream: every part row's supplier key must equal the
        // most recent supplier row's key.
        let mut current_supplier: Option<Value> = None;
        for row in result.rows() {
            let b = branch_id(row, &sou.tag_plan).unwrap();
            if b == 0 {
                // New supplier element; key must increase.
                let k = row.value(0).clone();
                if let Some(prev) = &current_supplier {
                    assert!(*prev < k, "suppliers out of order");
                }
                current_supplier = Some(k);
            } else {
                assert_eq!(Some(row.value(0)), current_supplier.as_ref());
            }
        }
    }

    #[test]
    fn restricted_sou_matches_the_full_plan_rows_for_those_keys() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = supplier_parts_view(&cat).unwrap();
        let sou = sorted_outer_union(&view).unwrap();
        let full = execute(&sou.plan, &cat).unwrap();
        use xmlpub_common::row;
        let keys = vec![row![3], row![7]];
        let restricted = sorted_outer_union_for_keys(&view, &keys).unwrap();
        assert_eq!(restricted.tag_plan.lvl_col, sou.tag_plan.lvl_col, "same layout");
        let got = execute(&restricted.plan, &cat).unwrap();
        // Exactly the full stream's rows for suppliers 3 and 7, in the
        // same relative order — the splice invariant.
        let expected: Vec<_> = full
            .rows()
            .iter()
            .filter(|r| matches!(r.value(0), Value::Int(3) | Value::Int(7)))
            .cloned()
            .collect();
        assert!(!expected.is_empty());
        assert_eq!(got.rows(), &expected[..]);
        // No keys: empty stream, same shape.
        let none = sorted_outer_union_for_keys(&view, &[]).unwrap();
        assert_eq!(execute(&none.plan, &cat).unwrap().len(), 0);
    }

    #[test]
    fn tag_plan_root_key_helpers() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = supplier_parts_view(&cat).unwrap();
        let sou = sorted_outer_union(&view).unwrap();
        assert_eq!(sou.tag_plan.root_key_cols(), &[0]);
        let result = execute(&sou.plan, &cat).unwrap();
        let first = &result.rows()[0];
        assert!(sou.tag_plan.is_root_row(first).unwrap());
        use xmlpub_common::row;
        assert_eq!(sou.tag_plan.root_key_of(first), row![1]);
        assert!(!sou.tag_plan.is_root_row(&result.rows()[1]).unwrap());
    }

    #[test]
    fn sou_branch_counts() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = supplier_parts_view(&cat).unwrap();
        let sou = sorted_outer_union(&view).unwrap();
        let result = execute(&sou.plan, &cat).unwrap();
        let mut counts = [0usize; 2];
        for row in result.rows() {
            counts[branch_id(row, &sou.tag_plan).unwrap()] += 1;
        }
        assert_eq!(counts, [10, 800]);
    }
}
