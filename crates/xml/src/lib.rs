//! XML publishing middleware.
//!
//! The application layer the paper's queries come from:
//!
//! * [`view`] — XML view definitions over relational data in the style of
//!   Figure 1: a tree of element nodes, each backed by a query and bound
//!   to its parent through join columns;
//! * [`souq`] — the *sorted outer union* query generator (XPeranto
//!   style, [17]): one relational plan whose output, clustered by the
//!   element keys, drives a constant-space tagger;
//! * [`tagger`] — the constant-space tagger: a single pass over the
//!   key-clustered tuple stream emitting XML text, holding only the
//!   current ancestor path;
//! * [`xquery`] — the XQuery subset the paper's examples use (FLWR over
//!   a view, per-element aggregates, where-clauses over the subtree) and
//!   its translation to *both* SQL formulations: the classic §2 form
//!   (sorted outer union with correlated subqueries) and the §3.1
//!   `gapply` form;
//! * [`workloads`] — the paper's evaluation queries Q1–Q4, each in both
//!   formulations, plus the parameterised queries behind the Table 1
//!   rule sweeps.

pub mod souq;
pub mod tagger;
pub mod view;
pub mod workloads;
pub mod xquery;

pub use souq::{sorted_outer_union, sorted_outer_union_for_keys};
pub use tagger::{tag, StreamingTagger};
pub use view::{customer_orders_view, supplier_parts_view, FieldKind, FieldMap, ViewNode, XmlView};
