//! The XQuery subset the paper's examples use, and its translation to
//! SQL — both ways.
//!
//! The subset covers FLWR expressions over a two-level view (the
//! Figure 1 `suppliers/supplier/part` shape): iterate the top-level
//! elements, optionally filter each by a predicate over its subtree
//! (exists / aggregate comparison), and return any mix of child-element
//! listings, per-subtree aggregates, and counts of children compared
//! against per-subtree aggregates. That is exactly the query family of
//! §2 (Q1, Q2), §4.2 (group/aggregate selection) and §5.2 (Q3, Q4).
//!
//! [`XQueryFor::to_gapply_sql`] emits the §3.1 formulation — this is the
//! paper's open question 1 made concrete: an XQuery translator that
//! exploits the extended syntax emits one `gapply` block per FLWR and is
//! *shorter than the XQuery itself*, while [`XQueryFor::to_classic_sql`]
//! emits the §2 sorted-outer-union formulation with its redundant joins
//! and correlated subqueries.

use std::fmt;
use xmlpub_common::Value;
use xmlpub_expr::BinOp;

/// Aggregate functions over a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XAgg {
    /// `avg(path)`
    Avg,
    /// `min(path)`
    Min,
    /// `max(path)`
    Max,
    /// `sum(path)`
    Sum,
    /// `count(path)`
    Count,
}

impl XAgg {
    fn sql(self) -> &'static str {
        match self {
            XAgg::Avg => "avg",
            XAgg::Min => "min",
            XAgg::Max => "max",
            XAgg::Sum => "sum",
            XAgg::Count => "count",
        }
    }
}

/// A predicate over one child element.
#[derive(Debug, Clone, PartialEq)]
pub enum ChildCond {
    /// `field op literal` (e.g. `p_retailprice > 9000`).
    Compare {
        /// Child field.
        field: String,
        /// Comparison.
        op: BinOp,
        /// Literal right-hand side.
        value: Value,
    },
    /// `field op scale * agg(agg_field)` over the same subtree
    /// (e.g. `p_retailprice >= 0.9 * max(p_retailprice)`).
    CompareToAgg {
        /// Child field.
        field: String,
        /// Comparison.
        op: BinOp,
        /// Scale factor applied to the aggregate (1.0 for none).
        scale: f64,
        /// Aggregate function.
        agg: XAgg,
        /// Aggregated field.
        agg_field: String,
    },
}

/// The FLWR `where` clause over one top-level element's subtree.
#[derive(Debug, Clone, PartialEq)]
pub enum WhereClause {
    /// `some $p in $s/part satisfies cond` (XPath-existential).
    SomeChild(ChildCond),
    /// `agg($s/part/field) op value`.
    AggCompare {
        /// Aggregate function.
        agg: XAgg,
        /// Aggregated child field.
        field: String,
        /// Comparison.
        op: BinOp,
        /// Literal right-hand side.
        value: Value,
    },
}

/// One item of the element constructor in the `return` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum ReturnItem {
    /// Nested `for $p in $s/part return <part>fields</part>`, optionally
    /// filtered.
    Nested {
        /// Child fields to return.
        fields: Vec<String>,
        /// Optional per-child filter.
        filter: Option<ChildCond>,
    },
    /// `agg($s/part/field)`.
    Aggregate {
        /// Aggregate function.
        agg: XAgg,
        /// Aggregated child field.
        field: String,
        /// Optional filter on the aggregated children.
        filter: Option<ChildCond>,
    },
    /// `count($s/part[field op agg($s/part/agg_field)])` — Q2's shape.
    CountCompare {
        /// Compared child field.
        field: String,
        /// Comparison.
        op: BinOp,
        /// Aggregate on the right-hand side.
        agg: XAgg,
        /// Aggregated child field.
        agg_field: String,
    },
}

/// A FLWR expression over the two-level view.
#[derive(Debug, Clone, PartialEq)]
pub struct XQueryFor {
    /// The bound variable name (`s` for `$s`).
    pub var: String,
    /// Optional subtree filter.
    pub where_clause: Option<WhereClause>,
    /// Return items; empty means `return $s` (the whole subtree).
    pub return_items: Vec<ReturnItem>,
}

/// The relational embedding of the two-level view the translation
/// targets: how to join the child table(s), which column groups the
/// children under a top-level element, and which columns a "whole
/// subtree" return should carry.
#[derive(Debug, Clone)]
pub struct ViewSql {
    /// FROM clause joining the child tables (`partsupp, part`).
    pub child_from: String,
    /// Join condition between them (`ps_partkey = p_partkey`).
    pub child_join: String,
    /// The grouping column binding children to their element
    /// (`ps_suppkey`).
    pub key: String,
    /// The table within `child_from` holding `key` (for the correlated
    /// classic formulation's alias).
    pub key_table: String,
}

impl ViewSql {
    /// The Figure 1 supplier/part embedding.
    pub fn supplier_parts() -> Self {
        ViewSql {
            child_from: "partsupp, part".to_string(),
            child_join: "ps_partkey = p_partkey".to_string(),
            key: "ps_suppkey".to_string(),
            key_table: "partsupp".to_string(),
        }
    }

    /// A correlated scalar subquery computing `agg(field)` over the
    /// current element's children, optionally filtered — the building
    /// block of the classic formulation.
    fn correlated_agg(
        &self,
        agg: XAgg,
        field: &str,
        outer_alias: &str,
        filter: Option<&ChildCond>,
    ) -> String {
        let extra =
            filter.map(|c| format!(" and {}", self.cond_sql(c, outer_alias))).unwrap_or_default();
        format!(
            "(select {}({field}) from {} where {} and {} = {outer_alias}.{}{extra})",
            agg.sql(),
            self.child_from,
            self.child_join,
            self.key,
            self.key,
            extra = extra
        )
    }

    fn cond_sql(&self, cond: &ChildCond, outer_alias: &str) -> String {
        match cond {
            ChildCond::Compare { field, op, value } => {
                format!("{field} {} {}", op.symbol(), sql_literal(value))
            }
            ChildCond::CompareToAgg { field, op, scale, agg, agg_field } => {
                let sub = self.correlated_agg(*agg, agg_field, outer_alias, None);
                if (*scale - 1.0).abs() < f64::EPSILON {
                    format!("{field} {} {sub}", op.symbol())
                } else {
                    format!("{field} {} {scale} * {sub}", op.symbol())
                }
            }
        }
    }

    /// Per-group-query condition (references only `g`).
    fn cond_gapply(&self, cond: &ChildCond) -> String {
        match cond {
            ChildCond::Compare { field, op, value } => {
                format!("{field} {} {}", op.symbol(), sql_literal(value))
            }
            ChildCond::CompareToAgg { field, op, scale, agg, agg_field } => {
                let sub = format!("(select {}({agg_field}) from g)", agg.sql());
                if (*scale - 1.0).abs() < f64::EPSILON {
                    format!("{field} {} {sub}", op.symbol())
                } else {
                    format!("{field} {} {scale} * {sub}", op.symbol())
                }
            }
        }
    }
}

fn sql_literal(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        other => other.to_string(),
    }
}

impl XQueryFor {
    /// Total output width of the per-group part (for NULL padding).
    fn output_columns(&self) -> Vec<String> {
        let mut cols = Vec::new();
        for (i, item) in self.return_items.iter().enumerate() {
            match item {
                ReturnItem::Nested { fields, .. } => cols.extend(fields.iter().cloned()),
                ReturnItem::Aggregate { agg, field, .. } => {
                    cols.push(format!("{}_{field}_{i}", agg.sql()))
                }
                ReturnItem::CountCompare { field, .. } => cols.push(format!("count_{field}_{i}")),
            }
        }
        cols
    }

    /// Emit the §3.1 `gapply` formulation.
    pub fn to_gapply_sql(&self, view: &ViewSql) -> String {
        let key = &view.key;
        // Whole-subtree return (group selection queries).
        if self.return_items.is_empty() {
            let inner = match &self.where_clause {
                Some(WhereClause::SomeChild(cond)) => format!(
                    "select * from g where exists (select 1 from g where {})",
                    view.cond_gapply(cond)
                ),
                Some(WhereClause::AggCompare { agg, field, op, value }) => format!(
                    "select * from g where (select {}({field}) from g) {} {}",
                    agg.sql(),
                    op.symbol(),
                    sql_literal(value)
                ),
                None => "select * from g".to_string(),
            };
            return format!(
                "select gapply({inner}) from {} where {} group by {key} : g",
                view.child_from, view.child_join
            );
        }

        // Branch-per-return-item union. A FLWR where-clause becomes a
        // group qualifier ANDed into every branch.
        let qualifier: Option<String> = match &self.where_clause {
            Some(WhereClause::SomeChild(cond)) => {
                Some(format!("exists (select 1 from g where {})", view.cond_gapply(cond)))
            }
            Some(WhereClause::AggCompare { agg, field, op, value }) => Some(format!(
                "(select {}({field}) from g) {} {}",
                agg.sql(),
                op.symbol(),
                sql_literal(value)
            )),
            None => None,
        };
        let all_cols = self.output_columns();
        let mut branches = Vec::new();
        let mut offset = 0usize;
        for (bi, item) in self.return_items.iter().enumerate() {
            let (exprs, conds, width, aggregating): (Vec<String>, Vec<String>, usize, bool) =
                match item {
                    ReturnItem::Nested { fields, filter } => (
                        fields.clone(),
                        filter.as_ref().map(|c| vec![view.cond_gapply(c)]).unwrap_or_default(),
                        fields.len(),
                        false,
                    ),
                    ReturnItem::Aggregate { agg, field, filter } => (
                        vec![format!("{}({field})", agg.sql())],
                        filter.as_ref().map(|c| vec![view.cond_gapply(c)]).unwrap_or_default(),
                        1,
                        true,
                    ),
                    ReturnItem::CountCompare { field, op, agg, agg_field } => (
                        vec!["count(*)".to_string()],
                        vec![format!(
                            "{field} {} (select {}({agg_field}) from g)",
                            op.symbol(),
                            agg.sql()
                        )],
                        1,
                        true,
                    ),
                };
            // Padding layout.
            let pad = |inner: &[String]| -> String {
                let mut select_list = Vec::with_capacity(all_cols.len());
                for (i, _col) in all_cols.iter().enumerate() {
                    if i >= offset && i < offset + width {
                        select_list.push(inner[i - offset].clone());
                    } else {
                        select_list.push("null".to_string());
                    }
                }
                select_list.join(", ")
            };
            let branch = match (&qualifier, aggregating) {
                // Aggregating branch with a group qualifier: the
                // aggregate emits a row even over ∅, so the qualifier
                // must gate it from *outside* the aggregation.
                (Some(q), true) => {
                    let where_sql = if conds.is_empty() {
                        String::new()
                    } else {
                        format!(" where {}", conds.join(" and "))
                    };
                    let inner_cols: Vec<String> =
                        (0..width).map(|i| format!("b{bi}.v{i}")).collect();
                    let col_names: Vec<String> = (0..width).map(|i| format!("v{i}")).collect();
                    format!(
                        "select {} from (select {} from g{}) as b{bi}({}) where {q}",
                        pad(&inner_cols),
                        exprs.join(", "),
                        where_sql,
                        col_names.join(", ")
                    )
                }
                _ => {
                    let mut all_conds = conds;
                    if let Some(q) = &qualifier {
                        all_conds.push(q.clone());
                    }
                    let where_sql = if all_conds.is_empty() {
                        String::new()
                    } else {
                        format!(" where {}", all_conds.join(" and "))
                    };
                    format!("select {} from g{}", pad(&exprs), where_sql)
                }
            };
            branches.push(branch);
            offset += width;
        }
        let pgq = branches.join(" union all ");
        format!(
            "select gapply({pgq}) as ({}) from {} where {} group by {key} : g",
            all_cols.join(", "),
            view.child_from,
            view.child_join
        )
    }

    /// Emit the §2 classic formulation (sorted outer union with
    /// correlated subqueries), ordered by the element key for the
    /// constant-space tagger.
    pub fn to_classic_sql(&self, view: &ViewSql) -> String {
        let key = &view.key;
        if self.return_items.is_empty() {
            // Whole-subtree return with a group predicate.
            let alias = "t1";
            let from = aliased_from(view, alias);
            let cond = match &self.where_clause {
                Some(WhereClause::SomeChild(cond)) => format!(
                    "exists (select 1 from {} where {} and {key} = {alias}.{key} and {})",
                    view.child_from,
                    view.child_join,
                    view.cond_sql(cond, alias)
                ),
                Some(WhereClause::AggCompare { agg, field, op, value }) => format!(
                    "{} {} {}",
                    view.correlated_agg(*agg, field, alias, None),
                    op.symbol(),
                    sql_literal(value)
                ),
                None => "1 = 1".to_string(),
            };
            return format!(
                "select * from {from} where {} and {cond} order by {alias}.{key}",
                view.child_join
            );
        }

        let all_cols = self.output_columns();
        let mut branches = Vec::new();
        let mut offset = 0usize;
        for (bi, item) in self.return_items.iter().enumerate() {
            let alias = format!("t{bi}");
            let from = aliased_from(view, &alias);
            let qualifier = match &self.where_clause {
                Some(WhereClause::SomeChild(cond)) => format!(
                    " and exists (select 1 from {} where {} and {key} = {alias}.{key} and {})",
                    view.child_from,
                    view.child_join,
                    view.cond_sql(cond, &alias)
                ),
                Some(WhereClause::AggCompare { agg, field, op, value }) => format!(
                    " and {} {} {}",
                    view.correlated_agg(*agg, field, &alias, None),
                    op.symbol(),
                    sql_literal(value)
                ),
                None => String::new(),
            };
            let (exprs, mut extra_where, group_by, width): (Vec<String>, String, String, usize) =
                match item {
                    ReturnItem::Nested { fields, filter } => (
                        fields.clone(),
                        filter
                            .as_ref()
                            .map(|c| format!(" and {}", view.cond_sql(c, &alias)))
                            .unwrap_or_default(),
                        String::new(),
                        fields.len(),
                    ),
                    ReturnItem::Aggregate { agg, field, filter } => (
                        vec![format!("{}({field})", agg.sql())],
                        filter
                            .as_ref()
                            .map(|c| format!(" and {}", view.cond_sql(c, &alias)))
                            .unwrap_or_default(),
                        format!(" group by {alias}.{key}"),
                        1,
                    ),
                    ReturnItem::CountCompare { field, op, agg, agg_field } => (
                        vec!["count(*)".to_string()],
                        format!(
                            " and {field} {} {}",
                            op.symbol(),
                            view.correlated_agg(*agg, agg_field, &alias, None)
                        ),
                        format!(" group by {alias}.{key}"),
                        1,
                    ),
                };
            extra_where.push_str(&qualifier);
            let mut select_list = vec![format!("{alias}.{key}")];
            for (i, _col) in all_cols.iter().enumerate() {
                if i >= offset && i < offset + width {
                    select_list.push(exprs[i - offset].clone());
                } else {
                    select_list.push("null".to_string());
                }
            }
            branches.push(format!(
                "select {} from {from} where {}{extra_where}{group_by}",
                select_list.join(", "),
                view.child_join
            ));
            offset += width;
        }
        format!("({}) order by 1", branches.join(" union all "))
    }
}

impl fmt::Display for XQueryFor {
    /// Render back as FLWR text (documentation / examples).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = &self.var;
        writeln!(f, "For ${v} in /doc(tpch.xml)/suppliers/supplier")?;
        if let Some(w) = &self.where_clause {
            match w {
                WhereClause::SomeChild(c) => {
                    writeln!(f, "Where some $p in ${v}/part satisfies {c:?}")?
                }
                WhereClause::AggCompare { agg, field, op, value } => {
                    writeln!(f, "Where {}(${v}/part/{field}) {} {value}", agg.sql(), op.symbol())?
                }
            }
        }
        if self.return_items.is_empty() {
            writeln!(f, "Return ${v}")?;
        } else {
            writeln!(f, "Return <ret>")?;
            for item in &self.return_items {
                match item {
                    ReturnItem::Nested { fields, .. } => writeln!(
                        f,
                        "  For $p in ${v}/part Return <part> {} </part>",
                        fields.iter().map(|x| format!("$p/{x}")).collect::<Vec<_>>().join(", ")
                    )?,
                    ReturnItem::Aggregate { agg, field, .. } => {
                        writeln!(f, "  {}(${v}/part/{field})", agg.sql())?
                    }
                    ReturnItem::CountCompare { field, op, agg, agg_field } => writeln!(
                        f,
                        "  count(${v}/part[{field} {} {}(${v}/part/{agg_field})])",
                        op.symbol(),
                        agg.sql()
                    )?,
                }
            }
            writeln!(f, "</ret>")?;
        }
        Ok(())
    }
}

fn aliased_from(view: &ViewSql, alias: &str) -> String {
    // `partsupp, part` with alias on the key table: `partsupp t0, part`.
    view.child_from
        .split(',')
        .map(|t| {
            let t = t.trim();
            if t.eq_ignore_ascii_case(&view.key_table) {
                format!("{t} {alias}")
            } else {
                t.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_sql::compile;
    use xmlpub_tpch::TpchGenerator;

    /// The paper's Q1 as an XQuery value.
    pub fn q1() -> XQueryFor {
        XQueryFor {
            var: "s".to_string(),
            where_clause: None,
            return_items: vec![
                ReturnItem::Nested {
                    fields: vec!["p_name".into(), "p_retailprice".into()],
                    filter: None,
                },
                ReturnItem::Aggregate {
                    agg: XAgg::Avg,
                    field: "p_retailprice".into(),
                    filter: None,
                },
            ],
        }
    }

    /// The paper's Q2.
    pub fn q2() -> XQueryFor {
        XQueryFor {
            var: "s".to_string(),
            where_clause: None,
            return_items: vec![
                ReturnItem::CountCompare {
                    field: "p_retailprice".into(),
                    op: BinOp::GtEq,
                    agg: XAgg::Avg,
                    agg_field: "p_retailprice".into(),
                },
                ReturnItem::CountCompare {
                    field: "p_retailprice".into(),
                    op: BinOp::Lt,
                    agg: XAgg::Avg,
                    agg_field: "p_retailprice".into(),
                },
            ],
        }
    }

    #[test]
    fn both_translations_compile_and_agree_q1() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = ViewSql::supplier_parts();
        let g = compile(&q1().to_gapply_sql(&view), &cat).unwrap();
        let c = compile(&q1().to_classic_sql(&view), &cat).unwrap();
        let rg = xmlpub_engine::execute(&g, &cat).unwrap();
        let rc = xmlpub_engine::execute(&c, &cat).unwrap();
        assert!(rg.bag_eq(&rc), "{}", rg.bag_diff(&rc));
        assert!(!rg.is_empty());
    }

    #[test]
    fn both_translations_compile_and_agree_q2() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = ViewSql::supplier_parts();
        let g = compile(&q2().to_gapply_sql(&view), &cat).unwrap();
        let c = compile(&q2().to_classic_sql(&view), &cat).unwrap();
        let rg = xmlpub_engine::execute(&g, &cat).unwrap();
        let rc = xmlpub_engine::execute(&c, &cat).unwrap();
        assert!(rg.bag_eq(&rc), "{}", rg.bag_diff(&rc));
    }

    #[test]
    fn group_selection_translations_agree() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = ViewSql::supplier_parts();
        let q = XQueryFor {
            var: "s".into(),
            where_clause: Some(WhereClause::SomeChild(ChildCond::Compare {
                field: "p_retailprice".into(),
                op: BinOp::Gt,
                value: Value::Float(1500.0),
            })),
            return_items: vec![],
        };
        let g = compile(&q.to_gapply_sql(&view), &cat).unwrap();
        let c = compile(&q.to_classic_sql(&view), &cat).unwrap();
        let rg = xmlpub_engine::execute(&g, &cat).unwrap();
        let rc = xmlpub_engine::execute(&c, &cat).unwrap();
        // The gapply output is keys ++ whole group; the classic output is
        // the aliased join output — same width + 1 (key) difference:
        // compare the group part by checking counts per key.
        assert_eq!(rg.len(), rc.len());
    }

    #[test]
    fn aggregate_selection_translations_agree_on_cardinality() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = ViewSql::supplier_parts();
        let q = XQueryFor {
            var: "s".into(),
            where_clause: Some(WhereClause::AggCompare {
                agg: XAgg::Avg,
                field: "p_retailprice".into(),
                op: BinOp::Gt,
                value: Value::Float(1400.0),
            }),
            return_items: vec![],
        };
        let g = compile(&q.to_gapply_sql(&view), &cat).unwrap();
        let c = compile(&q.to_classic_sql(&view), &cat).unwrap();
        let rg = xmlpub_engine::execute(&g, &cat).unwrap();
        let rc = xmlpub_engine::execute(&c, &cat).unwrap();
        assert_eq!(rg.len(), rc.len());
    }

    #[test]
    fn display_renders_flwr() {
        let text = q1().to_string();
        assert!(text.contains("For $s in /doc(tpch.xml)/suppliers/supplier"), "{text}");
        assert!(text.contains("avg($s/part/p_retailprice)"), "{text}");
        let q2t = q2().to_string();
        assert!(
            q2t.contains("count($s/part[p_retailprice >= avg($s/part/p_retailprice)])"),
            "{q2t}"
        );
    }

    #[test]
    fn compare_to_agg_condition_q3_style() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = ViewSql::supplier_parts();
        let q = XQueryFor {
            var: "s".into(),
            where_clause: None,
            return_items: vec![
                ReturnItem::Nested {
                    fields: vec!["p_name".into()],
                    filter: Some(ChildCond::CompareToAgg {
                        field: "p_retailprice".into(),
                        op: BinOp::GtEq,
                        scale: 0.9,
                        agg: XAgg::Max,
                        agg_field: "p_retailprice".into(),
                    }),
                },
                ReturnItem::Nested {
                    fields: vec!["p_name".into()],
                    filter: Some(ChildCond::CompareToAgg {
                        field: "p_retailprice".into(),
                        op: BinOp::LtEq,
                        scale: 1.1,
                        agg: XAgg::Min,
                        agg_field: "p_retailprice".into(),
                    }),
                },
            ],
        };
        let g = compile(&q.to_gapply_sql(&view), &cat).unwrap();
        let c = compile(&q.to_classic_sql(&view), &cat).unwrap();
        let rg = xmlpub_engine::execute(&g, &cat).unwrap();
        let rc = xmlpub_engine::execute(&c, &cat).unwrap();
        assert!(rg.bag_eq(&rc), "{}", rg.bag_diff(&rc));
    }
}

#[cfg(test)]
mod where_plus_return_tests {
    use super::*;
    use xmlpub_sql::compile;
    use xmlpub_tpch::TpchGenerator;

    /// A FLWR with BOTH a where-clause and return items: suppliers with
    /// some part above a threshold, returning their cheap parts and the
    /// average price.
    fn combined(threshold: f64) -> XQueryFor {
        XQueryFor {
            var: "s".into(),
            where_clause: Some(WhereClause::SomeChild(ChildCond::Compare {
                field: "p_retailprice".into(),
                op: BinOp::Gt,
                value: Value::Float(threshold),
            })),
            return_items: vec![
                ReturnItem::Nested {
                    fields: vec!["p_name".into()],
                    filter: Some(ChildCond::Compare {
                        field: "p_retailprice".into(),
                        op: BinOp::Lt,
                        value: Value::Float(1200.0),
                    }),
                },
                ReturnItem::Aggregate {
                    agg: XAgg::Avg,
                    field: "p_retailprice".into(),
                    filter: None,
                },
            ],
        }
    }

    #[test]
    fn where_clause_filters_which_groups_produce_output() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = ViewSql::supplier_parts();
        // Selective: only suppliers with a part above 2000 qualify.
        let selective = combined(2000.0);
        let g = compile(&selective.to_gapply_sql(&view), &cat).unwrap();
        let rg = xmlpub_engine::execute(&g, &cat).unwrap();
        let c = compile(&selective.to_classic_sql(&view), &cat).unwrap();
        let rc = xmlpub_engine::execute(&c, &cat).unwrap();
        assert!(rg.bag_eq(&rc), "{}", rg.bag_diff(&rc));

        // Permissive threshold ⇒ more suppliers qualify.
        let permissive = combined(1000.0);
        let g2 = compile(&permissive.to_gapply_sql(&view), &cat).unwrap();
        let rg2 = xmlpub_engine::execute(&g2, &cat).unwrap();
        assert!(rg2.distinct_values(0).len() >= rg.distinct_values(0).len());
    }

    #[test]
    fn agg_where_clause_with_returns_agrees() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = ViewSql::supplier_parts();
        let q = XQueryFor {
            var: "s".into(),
            where_clause: Some(WhereClause::AggCompare {
                agg: XAgg::Avg,
                field: "p_retailprice".into(),
                op: BinOp::Gt,
                value: Value::Float(1450.0),
            }),
            return_items: vec![ReturnItem::CountCompare {
                field: "p_retailprice".into(),
                op: BinOp::GtEq,
                agg: XAgg::Avg,
                agg_field: "p_retailprice".into(),
            }],
        };
        let g = compile(&q.to_gapply_sql(&view), &cat).unwrap();
        let rg = xmlpub_engine::execute(&g, &cat).unwrap();
        let c = compile(&q.to_classic_sql(&view), &cat).unwrap();
        let rc = xmlpub_engine::execute(&c, &cat).unwrap();
        assert!(rg.bag_eq(&rc), "{}", rg.bag_diff(&rc));
    }
}
