//! The paper's evaluation workloads (§5.2) and the Table 1 sweep
//! queries, as SQL text in both formulations.
//!
//! Everything here is plain query text compiled through the workspace's
//! own SQL front end, so the benches exercise the full stack: parse →
//! bind → (optionally optimize) → execute.

use crate::xquery::{ChildCond, ReturnItem, ViewSql, XAgg, XQueryFor};
use xmlpub_expr::BinOp;

/// One benchmark query: name, both SQL formulations, and the XQuery it
/// came from when the workload is XQuery-born.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name (Q1..Q4).
    pub name: &'static str,
    /// Natural-language description.
    pub description: &'static str,
    /// The XQuery origin, when applicable.
    pub xquery: Option<XQueryFor>,
    /// The §2 classic formulation.
    pub classic_sql: String,
    /// The §3.1 gapply formulation.
    pub gapply_sql: String,
}

/// Q1 (§2): per supplier, all part names/prices plus the overall average.
pub fn q1() -> Workload {
    let view = ViewSql::supplier_parts();
    let xq = XQueryFor {
        var: "s".to_string(),
        where_clause: None,
        return_items: vec![
            ReturnItem::Nested {
                fields: vec!["p_name".into(), "p_retailprice".into()],
                filter: None,
            },
            ReturnItem::Aggregate { agg: XAgg::Avg, field: "p_retailprice".into(), filter: None },
        ],
    };
    Workload {
        name: "Q1",
        description: "per supplier: every part (name, price) and the average price of all \
                      parts supplied",
        classic_sql: xq.to_classic_sql(&view),
        gapply_sql: xq.to_gapply_sql(&view),
        xquery: Some(xq),
    }
}

/// Q2 (§2): per supplier, counts of parts priced above/below the
/// supplier's average.
pub fn q2() -> Workload {
    let view = ViewSql::supplier_parts();
    let xq = XQueryFor {
        var: "s".to_string(),
        where_clause: None,
        return_items: vec![
            ReturnItem::CountCompare {
                field: "p_retailprice".into(),
                op: BinOp::GtEq,
                agg: XAgg::Avg,
                agg_field: "p_retailprice".into(),
            },
            ReturnItem::CountCompare {
                field: "p_retailprice".into(),
                op: BinOp::Lt,
                agg: XAgg::Avg,
                agg_field: "p_retailprice".into(),
            },
        ],
    };
    Workload {
        name: "Q2",
        description: "per supplier: how many parts are priced at/above and below the \
                      supplier's average price",
        classic_sql: xq.to_classic_sql(&view),
        gapply_sql: xq.to_gapply_sql(&view),
        xquery: Some(xq),
    }
}

/// Q3 (§5.2): per supplier, high-end and low-end parts (relative to the
/// supplier's max/min price).
pub fn q3() -> Workload {
    let view = ViewSql::supplier_parts();
    let xq = XQueryFor {
        var: "s".to_string(),
        where_clause: None,
        return_items: vec![
            ReturnItem::Nested {
                fields: vec!["p_name".into(), "p_retailprice".into()],
                filter: Some(ChildCond::CompareToAgg {
                    field: "p_retailprice".into(),
                    op: BinOp::GtEq,
                    scale: 0.9,
                    agg: XAgg::Max,
                    agg_field: "p_retailprice".into(),
                }),
            },
            ReturnItem::Nested {
                fields: vec!["p_name".into(), "p_retailprice".into()],
                filter: Some(ChildCond::CompareToAgg {
                    field: "p_retailprice".into(),
                    op: BinOp::LtEq,
                    scale: 1.1,
                    agg: XAgg::Min,
                    agg_field: "p_retailprice".into(),
                }),
            },
        ],
    };
    Workload {
        name: "Q3",
        description: "per supplier: parts priced high-end (≥ 0.9 × max) or low-end \
                      (≤ 1.1 × min)",
        classic_sql: xq.to_classic_sql(&view),
        gapply_sql: xq.to_gapply_sql(&view),
        xquery: Some(xq),
    }
}

/// Q4 (§5.2): per supplier and part size, the parts priced above the
/// (supplier, size) average. The classic formulation is the paper's
/// derived-table join, with the FROM clause exactly as printed in §5.2
/// (derived table first). Our engine executes joins in FROM order, so
/// this runs the naive order; see [`q4_reordered`] for the baseline a
/// join-reordering optimizer would pick.
pub fn q4() -> Workload {
    Workload {
        name: "Q4",
        description: "per supplier and part size: parts priced above the average price \
                      for that supplier and size (paper-literal FROM order)",
        xquery: None,
        classic_sql: "select tmp.k, p_name, p_size, p_retailprice \
                      from (select ps_suppkey, p_size, avg(p_retailprice) \
                            from partsupp, part where p_partkey = ps_partkey \
                            group by ps_suppkey, p_size) as tmp(k, s, avgprice), \
                           partsupp, part \
                      where ps_partkey = p_partkey and ps_suppkey = tmp.k \
                        and p_size = tmp.s and p_retailprice > tmp.avgprice \
                      order by tmp.k"
            .to_string(),
        gapply_sql: "select gapply(\
                         select p_name, p_retailprice from g \
                         where p_retailprice > (select avg(p_retailprice) from g)\
                     ) as (p_name, p_retailprice) \
                     from partsupp, part where ps_partkey = p_partkey \
                     group by ps_suppkey, p_size : g"
            .to_string(),
    }
}

/// Q4 with the derived table moved to the end of the FROM clause — the
/// join order a reordering optimizer (like the paper's SQL Server) would
/// pick. Our greedy left-deep binder honours FROM order, so the true
/// SQL Server baseline lies between [`q4`] (naive) and this (best).
pub fn q4_reordered() -> Workload {
    let mut w = q4();
    w.name = "Q4r";
    w.description = "Q4 with the classic baseline's joins in the optimal order";
    w.classic_sql = "select tmp.k, p_name, p_size, p_retailprice \
                     from partsupp, part, \
                          (select ps_suppkey, p_size, avg(p_retailprice) \
                           from partsupp, part where p_partkey = ps_partkey \
                           group by ps_suppkey, p_size) as tmp(k, s, avgprice) \
                     where ps_partkey = p_partkey and ps_suppkey = tmp.k \
                       and p_size = tmp.s and p_retailprice > tmp.avgprice \
                     order by tmp.k"
        .to_string();
    w
}

/// The Figure 8 workloads (Q4 in both baseline join orders).
pub fn figure8_workloads() -> Vec<Workload> {
    vec![q1(), q2(), q3(), q4(), q4_reordered()]
}

// ---------------------------------------------------------------------
// Table 1 sweep queries (one parameterised gapply query per rule).
// ---------------------------------------------------------------------

/// Selection-before-GApply sweep: the per-group query keeps rows priced
/// above `threshold`; the covering range pushes it into the outer join.
/// TPC-H retail prices span [900, 2099).
pub fn selection_sweep_sql(threshold: f64) -> String {
    format!(
        "select gapply(select p_name, p_retailprice from g \
         where p_retailprice > {threshold}) as (p_name, p_retailprice) \
         from partsupp, part where ps_partkey = p_partkey \
         group by ps_suppkey : g"
    )
}

/// Projection-before-GApply sweep: the per-group query touches only the
/// price column while the outer join carries every part column
/// (`use_wide_pgq` keeps more columns alive, shrinking the benefit).
pub fn projection_sweep_sql(use_wide_pgq: bool) -> String {
    let pgq = if use_wide_pgq {
        "select p_name, p_brand, p_type, p_container, avg(p_retailprice) from g \
         group by p_name, p_brand, p_type, p_container"
    } else {
        "select avg(p_retailprice), count(*) from g"
    };
    format!(
        "select gapply({pgq}) from partsupp, part where ps_partkey = p_partkey \
         group by ps_suppkey : g"
    )
}

/// GApply→groupby sweep: a pure aggregate per-group query.
pub fn to_groupby_sweep_sql() -> String {
    "select gapply(select avg(p_retailprice), min(p_retailprice), max(p_retailprice), \
     count(*) from g) from partsupp, part where ps_partkey = p_partkey \
     group by ps_suppkey : g"
        .to_string()
}

/// Exists group-selection sweep (the paper's own parameterised query):
/// suppliers supplying some part priced above `threshold`, returning the
/// whole group.
pub fn exists_sweep_sql(threshold: f64) -> String {
    format!(
        "select gapply(select * from g where exists \
         (select 1 from g where p_retailprice > {threshold})) \
         from partsupp, part where ps_partkey = p_partkey \
         group by ps_suppkey : g"
    )
}

/// Aggregate-selection sweep: suppliers whose average part price exceeds
/// `threshold`, returning the whole group.
pub fn aggregate_selection_sweep_sql(threshold: f64) -> String {
    format!(
        "select gapply(select * from g where \
         (select avg(p_retailprice) from g) > {threshold}) \
         from partsupp, part where ps_partkey = p_partkey \
         group by ps_suppkey : g"
    )
}

/// Invariant-grouping sweep (the Figure 7 query): per supplier, the
/// supplier name and the least expensive part. The supplier join is a
/// foreign-key join above the grouping, so the GApply can sink below it.
pub fn invariant_grouping_sweep_sql() -> String {
    "select gapply(select p_name, p_retailprice, s_name from g \
     where p_retailprice = (select min(p_retailprice) from g)) \
     as (p_name, p_retailprice, s_name) \
     from partsupp, part, supplier \
     where ps_partkey = p_partkey and ps_suppkey = s_suppkey \
     group by ps_suppkey : g"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_engine::execute;
    use xmlpub_sql::compile;
    use xmlpub_tpch::TpchGenerator;

    #[test]
    fn all_figure8_workloads_compile_and_agree() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        for w in figure8_workloads() {
            let classic = compile(&w.classic_sql, &cat)
                .unwrap_or_else(|e| panic!("{} classic: {e}\n{}", w.name, w.classic_sql));
            let gapply = compile(&w.gapply_sql, &cat)
                .unwrap_or_else(|e| panic!("{} gapply: {e}\n{}", w.name, w.gapply_sql));
            let rc = execute(&classic, &cat).unwrap();
            let rg = execute(&gapply, &cat).unwrap();
            assert!(!rg.is_empty(), "{} produced nothing", w.name);
            match w.name {
                // Q1 and Q3's outputs are directly comparable bags
                // (key + same columns).
                "Q1" | "Q3" => {
                    assert!(rc.bag_eq(&rg), "{}: {}", w.name, rc.bag_diff(&rg));
                }
                // Q2's classic group-by drops empty groups; compare the
                // non-empty part.
                "Q2" => {
                    assert!(rc.len() <= rg.len(), "{}", w.name);
                }
                // Q4's gapply groups by (supplier, size): both report the
                // same above-average parts. Classic carries p_size too,
                // so compare cardinalities.
                "Q4" | "Q4r" => {
                    assert_eq!(rc.len(), rg.len(), "{}", w.name);
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn sweep_queries_compile_and_run() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        for sql in [
            selection_sweep_sql(1800.0),
            projection_sweep_sql(false),
            projection_sweep_sql(true),
            to_groupby_sweep_sql(),
            exists_sweep_sql(2000.0),
            aggregate_selection_sweep_sql(1500.0),
            invariant_grouping_sweep_sql(),
        ] {
            let plan = compile(&sql, &cat).unwrap_or_else(|e| panic!("{e}\n{sql}"));
            let r = execute(&plan, &cat).unwrap_or_else(|e| panic!("{e}\n{sql}"));
            // Every sweep query produces something at a permissive
            // parameter; selective ones may legitimately produce little.
            let _ = r;
        }
    }

    #[test]
    fn q2_descriptions_match_paper_counts() {
        // Cross-check Q2's gapply result against a direct computation.
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let w = q2();
        let plan = compile(&w.gapply_sql, &cat).unwrap();
        let r = execute(&plan, &cat).unwrap();
        // 10 suppliers × 2 rows (above + below).
        assert_eq!(r.len(), 20);
    }

    #[test]
    fn exists_sweep_selectivity_monotone() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let lo = execute(&compile(&exists_sweep_sql(1000.0), &cat).unwrap(), &cat).unwrap();
        let hi = execute(&compile(&exists_sweep_sql(2090.0), &cat).unwrap(), &cat).unwrap();
        assert!(lo.len() >= hi.len());
    }

    #[test]
    fn invariant_grouping_query_has_fk_spine() {
        use xmlpub_algebra::LogicalPlan;
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let plan = compile(&invariant_grouping_sweep_sql(), &cat).unwrap();
        // The supplier join under the GApply must carry the FK flag for
        // the invariant-grouping rule to fire.
        let mut fk_found = false;
        fn walk(p: &LogicalPlan, found: &mut bool) {
            if let LogicalPlan::Join { fk_left_to_right: true, .. } = p {
                *found = true;
            }
            for c in p.children() {
                walk(c, found);
            }
        }
        walk(&plan, &mut fk_found);
        assert!(fk_found, "{}", plan.explain());
    }
}
