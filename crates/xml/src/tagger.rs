//! The constant-space tagger.
//!
//! Consumes a key-clustered sorted-outer-union tuple stream and emits
//! XML text. Space usage is bounded by the view depth — the tagger
//! holds only the stack of currently open elements (with their keys, for
//! defensive clustering checks), never any buffered subtree. This is why
//! the middleware insists on clustered input in the first place (§2).
//!
//! The tagger is *streaming*: [`StreamingTagger`] writes incrementally
//! to any [`std::io::Write`] sink as rows arrive (the publishing service
//! feeds it batches straight from the engine's `ResultStream`, so a
//! document is on the wire before the query has finished executing).
//! [`tag`] is the convenience wrapper that collects the document into a
//! `String` for tests and the CLI.

use crate::souq::{branch_id, TagPlan};
use std::io::Write;
use xmlpub_common::{Error, Result, Tuple, Value};

/// Escape text content / attribute values.
fn escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
}

/// Write a string to the sink, mapping IO failures to [`Error::Xml`].
fn wr<W: Write>(out: &mut W, s: &str) -> Result<()> {
    out.write_all(s.as_bytes()).map_err(|e| Error::Xml(format!("tagger sink write failed: {e}")))
}

/// One open element on the tagger stack.
struct Open {
    element: String,
    keys: Vec<Value>,
}

/// Incremental tagger writing to an [`io::Write`](std::io::Write) sink.
///
/// Rows must arrive clustered exactly as
/// [`crate::souq::sorted_outer_union`] orders them (parents immediately
/// before their children); violations are detected and reported rather
/// than silently producing interleaved elements. Memory held is the
/// open-element stack plus one small escape buffer — independent of the
/// document size.
pub struct StreamingTagger<'p, W: Write> {
    out: W,
    tag_plan: &'p TagPlan,
    pretty: bool,
    stack: Vec<Open>,
    started: bool,
    /// Scratch buffer for escaping, reused across rows.
    buf: String,
}

impl<'p, W: Write> StreamingTagger<'p, W> {
    /// A tagger over `out`. Nothing is written until the first row (or
    /// [`finish`](Self::finish), which emits an empty document).
    pub fn new(out: W, tag_plan: &'p TagPlan, pretty: bool) -> Self {
        StreamingTagger {
            out,
            tag_plan,
            pretty,
            stack: Vec::new(),
            started: false,
            buf: String::new(),
        }
    }

    fn nl(&mut self) -> Result<()> {
        if self.pretty {
            wr(&mut self.out, "\n")?;
        }
        Ok(())
    }

    fn indent(&mut self, depth: usize) -> Result<()> {
        if self.pretty {
            for _ in 0..depth {
                wr(&mut self.out, "  ")?;
            }
        }
        Ok(())
    }

    fn start_document(&mut self) -> Result<()> {
        if self.started {
            return Ok(());
        }
        self.started = true;
        wr(&mut self.out, "<")?;
        wr(&mut self.out, &self.tag_plan.document_element)?;
        wr(&mut self.out, ">")?;
        self.nl()
    }

    fn close_one(&mut self) -> Result<()> {
        let open = self.stack.pop().expect("close_one on empty stack");
        self.indent(self.stack.len() + 1)?;
        wr(&mut self.out, "</")?;
        wr(&mut self.out, &open.element)?;
        wr(&mut self.out, ">")?;
        self.nl()
    }

    /// Emit one sorted-outer-union row: closes finished elements, checks
    /// clustering, opens this row's element and writes its fields.
    pub fn write_row(&mut self, row: &Tuple) -> Result<()> {
        self.start_document()?;
        let tag_plan = self.tag_plan;
        let b = branch_id(row, tag_plan)?;
        let branch = &tag_plan.branches[b];
        let depth = branch.depth;
        // Close elements deeper than or at this depth.
        while self.stack.len() > depth {
            self.close_one()?;
        }
        if self.stack.len() < depth {
            return Err(Error::Xml(format!(
                "stream not clustered: row for depth-{depth} element '{}' arrived with only \
                 {} ancestors open",
                branch.element,
                self.stack.len()
            )));
        }
        // Defensive: ancestor keys must match the open elements.
        for (level, open) in self.stack.iter().enumerate() {
            let expect: Vec<Value> =
                branch.key_cols[level].iter().map(|&c| row.value(c).clone()).collect();
            if expect != open.keys {
                return Err(Error::Xml(format!(
                    "stream not clustered: child of '{}' with keys {:?} arrived while {:?} \
                     is open",
                    open.element, expect, open.keys
                )));
            }
        }
        // Open this element — attributes on the tag, then sub-elements.
        self.indent(depth + 1)?;
        wr(&mut self.out, "<")?;
        wr(&mut self.out, &branch.element)?;
        for (col, name, kind) in &branch.field_cols {
            if *kind != crate::view::FieldKind::Attribute {
                continue;
            }
            let v = row.value(*col);
            if v.is_null() {
                continue;
            }
            self.buf.clear();
            escape(&v.render(), &mut self.buf);
            wr(&mut self.out, " ")?;
            wr(&mut self.out, name)?;
            wr(&mut self.out, "=\"")?;
            wr(&mut self.out, &self.buf)?;
            wr(&mut self.out, "\"")?;
        }
        wr(&mut self.out, ">")?;
        self.nl()?;
        for (col, name, kind) in &branch.field_cols {
            if *kind != crate::view::FieldKind::Element {
                continue;
            }
            let v = row.value(*col);
            if v.is_null() {
                continue; // absent optional content
            }
            self.buf.clear();
            escape(&v.render(), &mut self.buf);
            self.indent(depth + 2)?;
            wr(&mut self.out, "<")?;
            wr(&mut self.out, name)?;
            wr(&mut self.out, ">")?;
            wr(&mut self.out, &self.buf)?;
            wr(&mut self.out, "</")?;
            wr(&mut self.out, name)?;
            wr(&mut self.out, ">")?;
            self.nl()?;
        }
        self.stack.push(Open {
            element: branch.element.clone(),
            keys: branch.key_cols[depth].iter().map(|&c| row.value(c).clone()).collect(),
        });
        Ok(())
    }

    /// Force the document element open now (a no-op once anything has
    /// been written). The incremental re-tagger calls this before the
    /// first row so the *header* bytes (everything up to the first root
    /// element) are delimited in the sink.
    pub fn open_document(&mut self) -> Result<()> {
        self.start_document()
    }

    /// Close every currently open element, leaving the document element
    /// open. After this the sink sits exactly on a subtree boundary —
    /// the incremental re-tagger calls it before recording each root
    /// segment's byte range and before cutting the footer.
    pub fn close_open_elements(&mut self) -> Result<()> {
        while !self.stack.is_empty() {
            self.close_one()?;
        }
        Ok(())
    }

    /// Borrow the sink (e.g. to read the current length of an in-memory
    /// buffer when recording segment boundaries).
    pub fn sink(&self) -> &W {
        &self.out
    }

    /// Close every open element and the document element, flush, and
    /// return the sink. Must be called to produce a well-formed document
    /// (dropping the tagger without `finish` truncates the output).
    pub fn finish(mut self) -> Result<W> {
        self.start_document()?; // an empty stream still yields <doc></doc>
        while !self.stack.is_empty() {
            self.close_one()?;
        }
        wr(&mut self.out, "</")?;
        wr(&mut self.out, &self.tag_plan.document_element)?;
        wr(&mut self.out, ">")?;
        self.nl()?;
        self.out.flush().map_err(|e| Error::Xml(format!("tagger sink flush failed: {e}")))?;
        Ok(self.out)
    }
}

/// Tag a clustered row stream into an XML string (the materialised
/// convenience form of [`StreamingTagger`]).
pub fn tag<'a>(
    rows: impl IntoIterator<Item = &'a Tuple>,
    tag_plan: &TagPlan,
    pretty: bool,
) -> Result<String> {
    let mut tagger = StreamingTagger::new(Vec::new(), tag_plan, pretty);
    for row in rows {
        tagger.write_row(row)?;
    }
    let bytes = tagger.finish()?;
    Ok(String::from_utf8(bytes).expect("tagger emits UTF-8 only"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::souq::sorted_outer_union;
    use crate::view::supplier_parts_view;
    use xmlpub_engine::execute;
    use xmlpub_tpch::TpchGenerator;

    #[test]
    fn escaping() {
        let mut s = String::new();
        escape("a<b>&'\"", &mut s);
        assert_eq!(s, "a&lt;b&gt;&amp;&apos;&quot;");
    }

    #[test]
    fn end_to_end_figure1_publishing() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = supplier_parts_view(&cat).unwrap();
        let sou = sorted_outer_union(&view).unwrap();
        let result = execute(&sou.plan, &cat).unwrap();
        let xml = tag(result.rows(), &sou.tag_plan, true).unwrap();
        // Document structure.
        assert!(xml.starts_with("<suppliers>"), "{}", &xml[..100.min(xml.len())]);
        assert!(xml.trim_end().ends_with("</suppliers>"));
        // s_suppkey maps to an attribute on the supplier tag.
        assert_eq!(xml.matches("<supplier s_suppkey=\"").count(), 10);
        assert_eq!(xml.matches("</supplier>").count(), 10);
        assert_eq!(xml.matches("<part>").count(), 800);
        assert_eq!(xml.matches("<p_name>").count(), 800);
        assert_eq!(xml.matches("<s_name>").count(), 10);
        // Well-formed nesting: parts appear between supplier open/close.
        let first_part = xml.find("<part>").unwrap();
        let first_supplier = xml.find("<supplier ").unwrap();
        assert!(first_supplier < first_part);
    }

    #[test]
    fn streaming_and_materialised_taggers_agree_bytewise() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = supplier_parts_view(&cat).unwrap();
        let sou = sorted_outer_union(&view).unwrap();
        let result = execute(&sou.plan, &cat).unwrap();
        for pretty in [false, true] {
            let whole = tag(result.rows(), &sou.tag_plan, pretty).unwrap();
            // Feed the same rows one at a time through the streaming
            // surface into a byte sink.
            let mut tagger = StreamingTagger::new(Vec::new(), &sou.tag_plan, pretty);
            for row in result.rows() {
                tagger.write_row(row).unwrap();
            }
            let bytes = tagger.finish().unwrap();
            assert_eq!(whole.as_bytes(), &bytes[..], "pretty={pretty}");
        }
    }

    #[test]
    fn empty_stream_produces_empty_document() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = supplier_parts_view(&cat).unwrap();
        let sou = sorted_outer_union(&view).unwrap();
        let xml = tag(std::iter::empty(), &sou.tag_plan, false).unwrap();
        assert_eq!(xml, "<suppliers></suppliers>");
    }

    #[test]
    fn unclustered_stream_is_rejected() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = supplier_parts_view(&cat).unwrap();
        let sou = sorted_outer_union(&view).unwrap();
        let result = execute(&sou.plan, &cat).unwrap();
        // Reverse the stream: children arrive before parents.
        let reversed: Vec<_> = result.rows().iter().rev().collect();
        assert!(tag(reversed, &sou.tag_plan, false).is_err());
    }

    #[test]
    fn compact_mode_has_no_newlines() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = supplier_parts_view(&cat).unwrap();
        let sou = sorted_outer_union(&view).unwrap();
        let result = execute(&sou.plan, &cat).unwrap();
        let xml = tag(result.rows(), &sou.tag_plan, false).unwrap();
        assert!(!xml.contains('\n'));
    }

    /// A sink that fails after a byte budget, proving write errors
    /// surface as `Error::Xml` instead of panicking.
    struct FailingSink {
        budget: usize,
    }

    impl Write for FailingSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if buf.len() > self.budget {
                return Err(std::io::Error::other("sink full"));
            }
            self.budget -= buf.len();
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn sink_errors_surface_as_xml_errors() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = supplier_parts_view(&cat).unwrap();
        let sou = sorted_outer_union(&view).unwrap();
        let result = execute(&sou.plan, &cat).unwrap();
        let mut tagger = StreamingTagger::new(FailingSink { budget: 64 }, &sou.tag_plan, false);
        let mut failed = None;
        for row in result.rows() {
            if let Err(e) = tagger.write_row(row) {
                failed = Some(e);
                break;
            }
        }
        match failed {
            Some(Error::Xml(msg)) => assert!(msg.contains("sink"), "{msg}"),
            other => panic!("expected an Error::Xml sink failure, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod three_level_tests {
    use super::*;
    use crate::souq::sorted_outer_union;
    use crate::view::customer_orders_view;
    use xmlpub_engine::execute;
    use xmlpub_tpch::{TpchConfig, TpchGenerator};

    #[test]
    fn three_level_view_publishes_well_formed_xml() {
        let gen = TpchGenerator::new(TpchConfig { scale: 0.0002, seed: 11, skew: 0.0 });
        let cat = gen.catalog().unwrap();
        let view = customer_orders_view(&cat).unwrap();
        assert_eq!(view.root.depth(), 3);
        let sou = sorted_outer_union(&view).unwrap();
        let result = execute(&sou.plan, &cat).unwrap();
        let xml = tag(result.rows(), &sou.tag_plan, true).unwrap();

        let customers = cat.data("customer").unwrap().len();
        let orders = cat.data("orders").unwrap().len();
        let lineitems = cat.data("lineitem").unwrap().len();
        assert_eq!(xml.matches("<customer key=\"").count(), customers);
        assert_eq!(xml.matches("<order>").count(), orders);
        assert_eq!(xml.matches("<lineitem>").count(), lineitems);
        // Balanced tags everywhere.
        for el in ["order", "lineitem"] {
            assert_eq!(
                xml.matches(&format!("<{el}>")).count(),
                xml.matches(&format!("</{el}>")).count(),
                "unbalanced <{el}>"
            );
        }
        assert_eq!(xml.matches("</customer>").count(), customers);
        // Every lineitem is nested inside an open order: scan the lines.
        let mut depth_order = 0i64;
        for line in xml.lines() {
            let t = line.trim();
            if t == "<order>" {
                depth_order += 1;
            } else if t == "</order>" {
                depth_order -= 1;
            } else if t == "<lineitem>" {
                assert!(depth_order > 0, "lineitem outside any order");
            }
        }
    }
}
