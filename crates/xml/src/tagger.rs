//! The constant-space tagger.
//!
//! Consumes a key-clustered sorted-outer-union tuple stream and emits
//! XML text. Space usage is bounded by the view depth — the tagger
//! holds only the stack of currently open elements (with their keys, for
//! defensive clustering checks), never any buffered subtree. This is why
//! the middleware insists on clustered input in the first place (§2).

use crate::souq::{branch_id, TagPlan};
use xmlpub_common::{Error, Result, Tuple, Value};

/// Escape text content / attribute values.
fn escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
}

/// One open element on the tagger stack.
struct Open {
    element: String,
    keys: Vec<Value>,
}

/// Tag a clustered row stream into an XML string.
///
/// `rows` must be clustered exactly as [`crate::souq::sorted_outer_union`]
/// orders them (parents immediately before their children); violations
/// are detected and reported rather than silently producing interleaved
/// elements.
pub fn tag<'a>(
    rows: impl IntoIterator<Item = &'a Tuple>,
    tag_plan: &TagPlan,
    pretty: bool,
) -> Result<String> {
    let mut out = String::new();
    let mut stack: Vec<Open> = Vec::new();
    let nl = if pretty { "\n" } else { "" };
    let indent = |out: &mut String, depth: usize| {
        if pretty {
            out.push_str(&"  ".repeat(depth));
        }
    };

    out.push('<');
    out.push_str(&tag_plan.document_element);
    out.push('>');
    out.push_str(nl);

    for row in rows {
        let b = branch_id(row, tag_plan)?;
        let branch = &tag_plan.branches[b];
        let depth = branch.depth;
        // Close elements deeper than or at this depth.
        while stack.len() > depth {
            let open = stack.pop().expect("stack non-empty");
            indent(&mut out, stack.len() + 1);
            out.push_str("</");
            out.push_str(&open.element);
            out.push('>');
            out.push_str(nl);
        }
        if stack.len() < depth {
            return Err(Error::Xml(format!(
                "stream not clustered: row for depth-{depth} element '{}' arrived with only \
                 {} ancestors open",
                branch.element,
                stack.len()
            )));
        }
        // Defensive: ancestor keys must match the open elements.
        for (level, open) in stack.iter().enumerate() {
            let expect: Vec<Value> =
                branch.key_cols[level].iter().map(|&c| row.value(c).clone()).collect();
            if expect != open.keys {
                return Err(Error::Xml(format!(
                    "stream not clustered: child of '{}' with keys {:?} arrived while {:?} \
                     is open",
                    open.element, expect, open.keys
                )));
            }
        }
        // Open this element — attributes on the tag, then sub-elements.
        indent(&mut out, depth + 1);
        out.push('<');
        out.push_str(&branch.element);
        for (col, name, kind) in &branch.field_cols {
            if *kind != crate::view::FieldKind::Attribute {
                continue;
            }
            let v = row.value(*col);
            if v.is_null() {
                continue;
            }
            out.push(' ');
            out.push_str(name);
            out.push_str("=\"");
            escape(&v.render(), &mut out);
            out.push('"');
        }
        out.push('>');
        out.push_str(nl);
        for (col, name, kind) in &branch.field_cols {
            if *kind != crate::view::FieldKind::Element {
                continue;
            }
            let v = row.value(*col);
            if v.is_null() {
                continue; // absent optional content
            }
            indent(&mut out, depth + 2);
            out.push('<');
            out.push_str(name);
            out.push('>');
            escape(&v.render(), &mut out);
            out.push_str("</");
            out.push_str(name);
            out.push('>');
            out.push_str(nl);
        }
        stack.push(Open {
            element: branch.element.clone(),
            keys: branch.key_cols[depth].iter().map(|&c| row.value(c).clone()).collect(),
        });
    }
    while let Some(open) = stack.pop() {
        indent(&mut out, stack.len() + 1);
        out.push_str("</");
        out.push_str(&open.element);
        out.push('>');
        out.push_str(nl);
    }
    out.push_str("</");
    out.push_str(&tag_plan.document_element);
    out.push('>');
    out.push_str(nl);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::souq::sorted_outer_union;
    use crate::view::supplier_parts_view;
    use xmlpub_engine::execute;
    use xmlpub_tpch::TpchGenerator;

    #[test]
    fn escaping() {
        let mut s = String::new();
        escape("a<b>&'\"", &mut s);
        assert_eq!(s, "a&lt;b&gt;&amp;&apos;&quot;");
    }

    #[test]
    fn end_to_end_figure1_publishing() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = supplier_parts_view(&cat).unwrap();
        let sou = sorted_outer_union(&view).unwrap();
        let result = execute(&sou.plan, &cat).unwrap();
        let xml = tag(result.rows(), &sou.tag_plan, true).unwrap();
        // Document structure.
        assert!(xml.starts_with("<suppliers>"), "{}", &xml[..100.min(xml.len())]);
        assert!(xml.trim_end().ends_with("</suppliers>"));
        // s_suppkey maps to an attribute on the supplier tag.
        assert_eq!(xml.matches("<supplier s_suppkey=\"").count(), 10);
        assert_eq!(xml.matches("</supplier>").count(), 10);
        assert_eq!(xml.matches("<part>").count(), 800);
        assert_eq!(xml.matches("<p_name>").count(), 800);
        assert_eq!(xml.matches("<s_name>").count(), 10);
        // Well-formed nesting: parts appear between supplier open/close.
        let first_part = xml.find("<part>").unwrap();
        let first_supplier = xml.find("<supplier ").unwrap();
        assert!(first_supplier < first_part);
    }

    #[test]
    fn unclustered_stream_is_rejected() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = supplier_parts_view(&cat).unwrap();
        let sou = sorted_outer_union(&view).unwrap();
        let result = execute(&sou.plan, &cat).unwrap();
        // Reverse the stream: children arrive before parents.
        let reversed: Vec<_> = result.rows().iter().rev().collect();
        assert!(tag(reversed, &sou.tag_plan, false).is_err());
    }

    #[test]
    fn compact_mode_has_no_newlines() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = supplier_parts_view(&cat).unwrap();
        let sou = sorted_outer_union(&view).unwrap();
        let result = execute(&sou.plan, &cat).unwrap();
        let xml = tag(result.rows(), &sou.tag_plan, false).unwrap();
        assert!(!xml.contains('\n'));
    }
}

#[cfg(test)]
mod three_level_tests {
    use super::*;
    use crate::souq::sorted_outer_union;
    use crate::view::customer_orders_view;
    use xmlpub_engine::execute;
    use xmlpub_tpch::{TpchConfig, TpchGenerator};

    #[test]
    fn three_level_view_publishes_well_formed_xml() {
        let gen = TpchGenerator::new(TpchConfig { scale: 0.0002, seed: 11, skew: 0.0 });
        let cat = gen.catalog().unwrap();
        let view = customer_orders_view(&cat).unwrap();
        assert_eq!(view.root.depth(), 3);
        let sou = sorted_outer_union(&view).unwrap();
        let result = execute(&sou.plan, &cat).unwrap();
        let xml = tag(result.rows(), &sou.tag_plan, true).unwrap();

        let customers = cat.data("customer").unwrap().len();
        let orders = cat.data("orders").unwrap().len();
        let lineitems = cat.data("lineitem").unwrap().len();
        assert_eq!(xml.matches("<customer key=\"").count(), customers);
        assert_eq!(xml.matches("<order>").count(), orders);
        assert_eq!(xml.matches("<lineitem>").count(), lineitems);
        // Balanced tags everywhere.
        for el in ["order", "lineitem"] {
            assert_eq!(
                xml.matches(&format!("<{el}>")).count(),
                xml.matches(&format!("</{el}>")).count(),
                "unbalanced <{el}>"
            );
        }
        assert_eq!(xml.matches("</customer>").count(), customers);
        // Every lineitem is nested inside an open order: scan the lines.
        let mut depth_order = 0i64;
        for line in xml.lines() {
            let t = line.trim();
            if t == "<order>" {
                depth_order += 1;
            } else if t == "</order>" {
                depth_order -= 1;
            } else if t == "<lineitem>" {
                assert!(depth_order > 0, "lineitem outside any order");
            }
        }
    }
}
