//! XML view definitions (Figure 1 style).
//!
//! A view is a tree of element nodes. Each node is backed by a base
//! table (or any bound plan), exposes a subset of its columns as child
//! elements, and nests under its parent through an equality between a
//! parent column and one of its own ("the parts are bound to the
//! corresponding suppliers through the binding variable `$s`").

use xmlpub_algebra::{Catalog, LogicalPlan};
use xmlpub_common::{Error, Result};

/// How a relational column appears in the XML output — "relational
/// attributes can be mapped to sub-elements or attributes" (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FieldKind {
    /// `<name>value</name>` inside the element.
    #[default]
    Element,
    /// `name="value"` on the element's open tag.
    Attribute,
}

/// One exposed column: source column, output name, and mapping kind.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldMap {
    /// Column index into the node's source schema.
    pub column: usize,
    /// Output element/attribute name.
    pub name: String,
    /// Sub-element or attribute.
    pub kind: FieldKind,
}

impl FieldMap {
    /// A sub-element mapping.
    pub fn element(column: usize, name: impl Into<String>) -> Self {
        FieldMap { column, name: name.into(), kind: FieldKind::Element }
    }

    /// An attribute mapping.
    pub fn attribute(column: usize, name: impl Into<String>) -> Self {
        FieldMap { column, name: name.into(), kind: FieldKind::Attribute }
    }
}

/// One element node of a view.
#[derive(Debug, Clone)]
pub struct ViewNode {
    /// Element name emitted per row (e.g. `supplier`, `part`).
    pub element: String,
    /// The node's relational source.
    pub source: LogicalPlan,
    /// Key columns of `source` identifying one element instance (by
    /// index into `source`'s schema). Also the clustering keys of the
    /// sorted outer union.
    pub key_columns: Vec<usize>,
    /// Exposed columns (sub-elements and attributes).
    pub fields: Vec<FieldMap>,
    /// Child nodes, each with its linkage to this node.
    pub children: Vec<ChildLink>,
}

/// A child node plus its parent linkage.
#[derive(Debug, Clone)]
pub struct ChildLink {
    /// Parent column (index into the parent source schema).
    pub parent_col: usize,
    /// Child column (index into the child source schema) equated with
    /// `parent_col`.
    pub child_col: usize,
    /// The child node.
    pub node: ViewNode,
}

/// A full view: a document element wrapping one top-level node.
#[derive(Debug, Clone)]
pub struct XmlView {
    /// Document element (e.g. `suppliers`).
    pub document_element: String,
    /// The repeated top-level node.
    pub root: ViewNode,
}

impl ViewNode {
    /// Structural validation: key/field/link columns in range, child
    /// links consistent, at every level.
    pub fn validate(&self) -> Result<()> {
        let width = self.source.schema().len();
        let check = |c: usize, what: &str| -> Result<()> {
            if c >= width {
                return Err(Error::Xml(format!(
                    "view node '{}': {what} column #{c} out of range ({width} columns)",
                    self.element
                )));
            }
            Ok(())
        };
        if self.key_columns.is_empty() {
            return Err(Error::Xml(format!(
                "view node '{}' needs at least one key column",
                self.element
            )));
        }
        for &k in &self.key_columns {
            check(k, "key")?;
        }
        for f in &self.fields {
            check(f.column, "field")?;
        }
        for link in &self.children {
            check(link.parent_col, "child-link parent")?;
            let cw = link.node.source.schema().len();
            if link.child_col >= cw {
                return Err(Error::Xml(format!(
                    "view node '{}': child-link column #{} out of range for child '{}'",
                    self.element, link.child_col, link.node.element
                )));
            }
            link.node.validate()?;
        }
        Ok(())
    }

    /// Depth of the node tree (1 for a leaf).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(|c| c.node.depth()).max().unwrap_or(0)
    }
}

impl XmlView {
    /// Validate the whole view.
    pub fn validate(&self) -> Result<()> {
        self.root.validate()
    }
}

/// The paper's Figure 1 view: `suppliers / supplier / part`, with the
/// parts of a supplier found through the `partsupp ⋈ part` join.
pub fn supplier_parts_view(catalog: &Catalog) -> Result<XmlView> {
    let supplier = catalog.table("supplier")?;
    let s_schema = &supplier.schema;
    let s_key = s_schema.resolve(None, "s_suppkey")?;
    let s_name = s_schema.resolve(None, "s_name")?;

    let partsupp = catalog.table("partsupp")?;
    let part = catalog.table("part")?;
    let ps_schema = &partsupp.schema;
    let joined_schema = ps_schema.join(&part.schema);
    let ps_partkey = ps_schema.resolve(None, "ps_partkey")?;
    let p_partkey_joined = joined_schema.resolve(None, "p_partkey")?;
    let parts_plan = LogicalPlan::scan("partsupp", ps_schema.clone()).fk_join(
        LogicalPlan::scan("part", part.schema.clone()),
        xmlpub_expr::Expr::col(ps_partkey).eq(xmlpub_expr::Expr::col(p_partkey_joined)),
    );
    let parts_schema = parts_plan.schema();
    let ps_suppkey = parts_schema.resolve(None, "ps_suppkey")?;
    let p_name = parts_schema.resolve(None, "p_name")?;
    let p_price = parts_schema.resolve(None, "p_retailprice")?;
    let p_key = parts_schema.resolve(None, "p_partkey")?;

    let view = XmlView {
        document_element: "suppliers".to_string(),
        root: ViewNode {
            element: "supplier".to_string(),
            source: LogicalPlan::scan("supplier", s_schema.clone()),
            key_columns: vec![s_key],
            fields: vec![
                FieldMap::attribute(s_key, "s_suppkey"),
                FieldMap::element(s_name, "s_name"),
            ],
            children: vec![ChildLink {
                parent_col: s_key,
                child_col: ps_suppkey,
                node: ViewNode {
                    element: "part".to_string(),
                    source: parts_plan,
                    key_columns: vec![p_key],
                    fields: vec![
                        FieldMap::element(p_name, "p_name"),
                        FieldMap::element(p_price, "p_retailprice"),
                    ],
                    children: vec![],
                },
            }],
        },
    };
    view.validate()?;
    Ok(view)
}

/// A three-level view over the full TPC-H subset:
/// `customers / customer / order / lineitem`. Exercises ancestor-key
/// replication and multi-level clustering in the sorted outer union.
pub fn customer_orders_view(catalog: &Catalog) -> Result<XmlView> {
    let customer = catalog.table("customer")?;
    let c_schema = &customer.schema;
    let c_key = c_schema.resolve(None, "c_custkey")?;
    let c_name = c_schema.resolve(None, "c_name")?;

    let orders = catalog.table("orders")?;
    let o_schema = &orders.schema;
    let o_key = o_schema.resolve(None, "o_orderkey")?;
    let o_cust = o_schema.resolve(None, "o_custkey")?;
    let o_price = o_schema.resolve(None, "o_totalprice")?;

    let lineitem = catalog.table("lineitem")?;
    let l_schema = &lineitem.schema;
    let l_order = l_schema.resolve(None, "l_orderkey")?;
    let l_line = l_schema.resolve(None, "l_linenumber")?;
    let l_qty = l_schema.resolve(None, "l_quantity")?;
    let l_price = l_schema.resolve(None, "l_extendedprice")?;

    let view = XmlView {
        document_element: "customers".to_string(),
        root: ViewNode {
            element: "customer".to_string(),
            source: LogicalPlan::scan("customer", c_schema.clone()),
            key_columns: vec![c_key],
            fields: vec![FieldMap::attribute(c_key, "key"), FieldMap::element(c_name, "c_name")],
            children: vec![ChildLink {
                parent_col: c_key,
                child_col: o_cust,
                node: ViewNode {
                    element: "order".to_string(),
                    source: LogicalPlan::scan("orders", o_schema.clone()),
                    key_columns: vec![o_key],
                    fields: vec![FieldMap::element(o_price, "o_totalprice")],
                    children: vec![ChildLink {
                        parent_col: o_key,
                        child_col: l_order,
                        node: ViewNode {
                            element: "lineitem".to_string(),
                            source: LogicalPlan::scan("lineitem", l_schema.clone()),
                            key_columns: vec![l_order, l_line],
                            fields: vec![
                                FieldMap::element(l_qty, "l_quantity"),
                                FieldMap::element(l_price, "l_extendedprice"),
                            ],
                            children: vec![],
                        },
                    }],
                },
            }],
        },
    };
    view.validate()?;
    Ok(view)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_tpch::TpchGenerator;

    #[test]
    fn figure1_view_builds_and_validates() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let view = supplier_parts_view(&cat).unwrap();
        assert_eq!(view.document_element, "suppliers");
        assert_eq!(view.root.element, "supplier");
        assert_eq!(view.root.depth(), 2);
        assert_eq!(view.root.children.len(), 1);
        assert_eq!(view.root.children[0].node.element, "part");
    }

    #[test]
    fn validation_catches_bad_columns() {
        let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
        let mut view = supplier_parts_view(&cat).unwrap();
        view.root.key_columns = vec![99];
        assert!(view.validate().is_err());

        let mut view = supplier_parts_view(&cat).unwrap();
        view.root.key_columns.clear();
        assert!(view.validate().is_err());

        let mut view = supplier_parts_view(&cat).unwrap();
        view.root.children[0].child_col = 99;
        assert!(view.validate().is_err());

        let mut view = supplier_parts_view(&cat).unwrap();
        view.root.fields.push(FieldMap::element(42, "oops"));
        assert!(view.validate().is_err());
    }
}
