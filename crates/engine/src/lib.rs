//! Physical execution engine (vectorized Volcano model).
//!
//! Each operator implements `open`/`next_batch`/`close`, exchanging
//! [`TupleBatch`](xmlpub_common::TupleBatch)es of up to
//! `EngineConfig::batch_size` rows (default 1024; 1 degenerates to the
//! classic tuple-at-a-time model) over an [`ExecContext`] that carries
//! the two kinds of runtime bindings the paper's execution model needs:
//!
//! * **relation-valued parameters** — the `$group` temporary relation a
//!   `GApply` binds before running its per-group query ("when the leaf
//!   scan operator receives the relation-valued parameter, it understands
//!   this to be a temporary relation and reads from it", §3);
//! * **scalar outer rows** — the current outer tuple of each enclosing
//!   `Apply`, which correlated expressions read.
//!
//! The [`ops::gapply`] module implements the operator's two phases exactly
//! as §3 describes: a *partition* phase (hash-based or sort-based,
//! selectable via [`EngineConfig`]) and a nested-loops *execution* phase
//! that runs the per-group plan once per group.
//!
//! [`client_sim`] reimplements the paper's §5.1 client-side simulation of
//! GApply (materialise the outer result, partition it, extract each group
//! into a fresh temporary relation, run the per-group query per group,
//! pay per-query overhead) so the §5.2 "simulation is ~20% conservative"
//! calibration can be reproduced against the native operator.

pub mod client_sim;
pub mod context;
pub mod delta;
pub mod executor;
pub mod ops;
pub mod parallel;
pub mod planner;
pub mod prop_check;

#[cfg(test)]
pub(crate) mod test_support;

pub use context::{emit_operator_spans, render_profiles, ExecContext, ExecStats, OpProfile};
pub use delta::{dirty_keys, gapply_dirty_groups, propagate_touched, TableDeltas};
pub use executor::{
    execute, execute_analyzed, execute_stream, execute_stream_with_obs, execute_with_config,
    execute_with_stats, ResultStream,
};
pub use ops::gapply::PartitionStrategy;
pub use ops::PhysicalOp;
pub use parallel::ParallelConfig;
pub use planner::{EngineConfig, PhysicalPlanner};
pub use prop_check::PropChecker;
pub use xmlpub_obs::ObsContext;
