//! Delta propagation: push base-table [`DeltaBatch`]es up a logical plan
//! to find out *which output rows could have changed*.
//!
//! The product of this module is deliberately modest — not a maintained
//! materialised view, but a conservative **touched-row superset**: every
//! output row of the old or new plan result that the applied deltas
//! could have added, removed, or altered appears in the propagated set
//! (possibly alongside rows that did not actually change). That is
//! exactly what incremental publishing needs, because the paper's
//! group-key discipline (§3) localises change: a group's subtree can
//! only differ if one of its input tuples does, so projecting the
//! touched rows onto the group keys yields the **dirty groups** — the
//! only subtrees the re-tagger has to recompute.
//!
//! Propagation rules (per operator, Δ = touched rows of the input):
//!
//! * `Scan(T)` — the appended ∪ deleted tuples of `T`'s delta;
//! * `Select(p)` — Δ filtered by `p` (a tuple failing `p` in both the
//!   old and new state cannot affect the output; appends and deletes
//!   are both present in Δ, so state flips are covered);
//! * `Project(e…)` — Δ mapped through the expressions;
//! * `Join(L, R)` — `ΔL ⋈ R_new ∪ L_new ⋈ ΔR ∪ ΔL ⋈ ΔR`, each term a
//!   hash join built on the *unchanged* side (and skipped entirely when
//!   the driving delta is empty — the common case where one table of a
//!   view churns and the rest hold still). The third term is what makes
//!   the rule sound when matching rows disappear from **both** sides at
//!   once: neither `R_new` nor `L_new` still holds the partner, but the
//!   deleted partners meet in `ΔL ⋈ ΔR`;
//! * `UnionAll` — concatenation; `OrderBy` — pass-through (the touched
//!   *set* is order-blind).
//!
//! Anything else (`GroupBy`, `Distinct`, `Apply`, aggregation — where a
//! delta's effect is not row-local) reports *unsupported* (`None`) and
//! the caller falls back to full recomputation. Correctness never
//! depends on propagation succeeding; only speed does.

use std::collections::{BTreeSet, HashMap};

use xmlpub_algebra::{Catalog, LogicalPlan};
use xmlpub_common::{DeltaBatch, Result, Tuple, Value};
use xmlpub_expr::{BinOp, Expr};

use crate::executor::execute_with_config;
use crate::planner::EngineConfig;

/// Per-table deltas for one propagation round, keyed by lower-cased
/// table name. Batches added for the same table merge in order.
#[derive(Debug, Clone, Default)]
pub struct TableDeltas {
    deltas: std::collections::BTreeMap<String, DeltaBatch>,
}

impl TableDeltas {
    /// No changes anywhere.
    pub fn new() -> Self {
        TableDeltas::default()
    }

    /// Record a batch against `table` (merging with any earlier batch).
    pub fn add(&mut self, table: &str, delta: DeltaBatch) {
        let key = table.to_ascii_lowercase();
        match self.deltas.get_mut(&key) {
            Some(existing) => existing.merge(delta),
            None => {
                self.deltas.insert(key, delta);
            }
        }
    }

    /// The merged batch for `table`, if any.
    pub fn get(&self, table: &str) -> Option<&DeltaBatch> {
        self.deltas.get(&table.to_ascii_lowercase())
    }

    /// True when no table has any changes.
    pub fn is_empty(&self) -> bool {
        self.deltas.values().all(|d| d.is_empty())
    }

    /// The tables with recorded changes.
    pub fn tables(&self) -> impl Iterator<Item = &str> {
        self.deltas.keys().map(String::as_str)
    }
}

/// Push `deltas` through `plan`, returning the touched-row superset in
/// the plan's output arity — or `None` when the plan contains an
/// operator delta propagation does not support.
///
/// `catalog` must already reflect the **new** state (deltas applied):
/// the join rule executes unchanged sides against it.
pub fn propagate_touched(
    plan: &LogicalPlan,
    catalog: &Catalog,
    config: &EngineConfig,
    deltas: &TableDeltas,
) -> Result<Option<Vec<Tuple>>> {
    match plan {
        LogicalPlan::Scan { table, .. } => {
            let touched = match deltas.get(table) {
                Some(d) => d.touched().cloned().collect(),
                None => Vec::new(),
            };
            Ok(Some(touched))
        }
        LogicalPlan::Select { input, predicate } => {
            let Some(rows) = propagate_touched(input, catalog, config, deltas)? else {
                return Ok(None);
            };
            let mut out = Vec::with_capacity(rows.len());
            for r in rows {
                if predicate.eval_predicate(&r, &[])? {
                    out.push(r);
                }
            }
            Ok(Some(out))
        }
        LogicalPlan::Project { input, items } => {
            let Some(rows) = propagate_touched(input, catalog, config, deltas)? else {
                return Ok(None);
            };
            let mut out = Vec::with_capacity(rows.len());
            for r in rows {
                let vals: Result<Vec<Value>> =
                    items.iter().map(|item| item.expr.eval(&r, &[])).collect();
                out.push(Tuple::new(vals?));
            }
            Ok(Some(out))
        }
        LogicalPlan::Join { left, right, predicate, .. } => {
            let left_width = left.schema().len();
            let Some((lk, rk)) = equi_key_columns(predicate, left_width) else {
                return Ok(None);
            };
            let Some(dl) = propagate_touched(left, catalog, config, deltas)? else {
                return Ok(None);
            };
            let Some(dr) = propagate_touched(right, catalog, config, deltas)? else {
                return Ok(None);
            };
            let mut out = Vec::new();
            if !dl.is_empty() {
                // ΔL ⋈ R_new — only now is the right side worth running.
                let r_new = execute_with_config(right, catalog, config)?;
                join_touched(&dl, r_new.rows(), &lk, &rk, true, predicate, &mut out)?;
            }
            if !dr.is_empty() {
                let l_new = execute_with_config(left, catalog, config)?;
                join_touched(&dr, l_new.rows(), &rk, &lk, false, predicate, &mut out)?;
            }
            if !dl.is_empty() && !dr.is_empty() {
                // Partners deleted from both sides meet only here.
                join_touched(&dl, &dr, &lk, &rk, true, predicate, &mut out)?;
            }
            Ok(Some(out))
        }
        LogicalPlan::UnionAll { inputs } => {
            let mut out = Vec::new();
            for input in inputs {
                let Some(mut rows) = propagate_touched(input, catalog, config, deltas)? else {
                    return Ok(None);
                };
                out.append(&mut rows);
            }
            Ok(Some(out))
        }
        LogicalPlan::OrderBy { input, .. } => propagate_touched(input, catalog, config, deltas),
        // Non-row-local operators: a delta can change *other* rows'
        // output (aggregates, duplicate elimination) or needs per-row
        // re-execution (Apply, GApply bodies). Full recompute territory.
        _ => Ok(None),
    }
}

/// The distinct group keys among the touched rows reaching a `GApply` —
/// the node's **dirty groups**. `None` when the plan is not a `GApply`
/// or its input is unsupported.
pub fn gapply_dirty_groups(
    plan: &LogicalPlan,
    catalog: &Catalog,
    config: &EngineConfig,
    deltas: &TableDeltas,
) -> Result<Option<BTreeSet<Tuple>>> {
    let LogicalPlan::GApply { input, group_cols, .. } = plan else {
        return Ok(None);
    };
    let Some(keys) = touched_keys(input, group_cols, catalog, config, deltas)? else {
        return Ok(None);
    };
    Ok(Some(keys.into_iter().collect()))
}

/// The distinct `key_cols` prefixes among the touched rows at the top of
/// `plan`, sorted by the engine's total order (the order the sorted
/// outer union clusters by). `None` when propagation is unsupported.
pub fn dirty_keys(
    plan: &LogicalPlan,
    key_cols: &[usize],
    catalog: &Catalog,
    config: &EngineConfig,
    deltas: &TableDeltas,
) -> Result<Option<Vec<Tuple>>> {
    let Some(rows) = touched_keys(plan, key_cols, catalog, config, deltas)? else {
        return Ok(None);
    };
    let set: BTreeSet<Tuple> = rows.into_iter().collect();
    let mut keys: Vec<Tuple> = set.into_iter().collect();
    keys.sort_by(|a, b| {
        a.values()
            .iter()
            .zip(b.values())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(Some(keys))
}

/// Propagate only the **projection onto `cols`** of the touched rows —
/// a superset of `π_cols(touched(plan))`, usually without materialising
/// the touched rows themselves.
///
/// The point is cost: [`propagate_touched`]'s join rule must execute the
/// unchanged side to reconstruct full output rows, which makes a
/// one-row delta cost O(data) when the unchanged side is the big one.
/// But when every requested column lives on **one** side of a join —
/// exactly the shape of a sorted-outer-union branch, where the root key
/// is replicated from the root table — the projection is available
/// without the join:
///
/// * a delta on the *key side* contributes `π(Δ_keyside)` directly
///   (joining it with the other side can only drop or duplicate keys,
///   never invent new ones), so nothing is executed at all;
/// * a delta on the *other* side contributes the keys of the key-side
///   rows it joins to — a semi-join that executes only the key side,
///   which in a nested view is the small ancestor table, not the fat
///   descendant.
///
/// Falls back to [`propagate_touched`] + projection when the columns
/// straddle a join or pass through a computed projection, and reports
/// `None` exactly where full propagation would.
fn touched_keys(
    plan: &LogicalPlan,
    cols: &[usize],
    catalog: &Catalog,
    config: &EngineConfig,
    deltas: &TableDeltas,
) -> Result<Option<Vec<Tuple>>> {
    fn project(rows: &[Tuple], cols: &[usize]) -> Vec<Tuple> {
        rows.iter()
            .map(|r| Tuple::new(cols.iter().map(|&c| r.value(c).clone()).collect()))
            .collect()
    }
    match plan {
        LogicalPlan::Scan { table, .. } => Ok(Some(match deltas.get(table) {
            Some(d) => d
                .touched()
                .map(|r| Tuple::new(cols.iter().map(|&c| r.value(c).clone()).collect()))
                .collect(),
            None => Vec::new(),
        })),
        // Superset: a filter only narrows the touched set, and the keys
        // of a narrower set are a subset of what we report.
        LogicalPlan::Select { input, .. } => touched_keys(input, cols, catalog, config, deltas),
        LogicalPlan::Project { input, items } => {
            let mut src = Vec::with_capacity(cols.len());
            for &c in cols {
                match &items[c].expr {
                    Expr::Column(i) => src.push(*i),
                    // Computed key column: reconstruct the full rows.
                    _ => {
                        let Some(rows) = propagate_touched(plan, catalog, config, deltas)? else {
                            return Ok(None);
                        };
                        return Ok(Some(project(&rows, cols)));
                    }
                }
            }
            touched_keys(input, &src, catalog, config, deltas)
        }
        LogicalPlan::Join { left, right, predicate, .. } => {
            let left_width = left.schema().len();
            let Some((lk, rk)) = equi_key_columns(predicate, left_width) else {
                return Ok(None);
            };
            let (key_side, other, key_cols_local, key_join, other_join): (
                &LogicalPlan,
                &LogicalPlan,
                Vec<usize>,
                &[usize],
                &[usize],
            ) = if cols.iter().all(|&c| c < left_width) {
                (left, right, cols.to_vec(), &lk, &rk)
            } else if cols.iter().all(|&c| c >= left_width) {
                (right, left, cols.iter().map(|&c| c - left_width).collect(), &rk, &lk)
            } else {
                // Keys straddle the join: no shortcut.
                let Some(rows) = propagate_touched(plan, catalog, config, deltas)? else {
                    return Ok(None);
                };
                return Ok(Some(project(&rows, cols)));
            };
            // Δ on the key side (covers the ΔK ⋈ O and ΔK ⋈ ΔO terms):
            // their keys all come from ΔK itself. No execution needed.
            let Some(mut out) = touched_keys(key_side, &key_cols_local, catalog, config, deltas)?
            else {
                return Ok(None);
            };
            // Δ on the other side (the K_new ⋈ ΔO term): semi-join the
            // executed key side against the delta's join-key values.
            let Some(d_other) = propagate_touched(other, catalog, config, deltas)? else {
                return Ok(None);
            };
            if !d_other.is_empty() {
                let k_new = execute_with_config(key_side, catalog, config)?;
                semi_join_keys(
                    &d_other,
                    other_join,
                    k_new.rows(),
                    key_join,
                    &key_cols_local,
                    &mut out,
                );
            }
            Ok(Some(out))
        }
        LogicalPlan::UnionAll { inputs } => {
            let mut out = Vec::new();
            for input in inputs {
                let Some(mut keys) = touched_keys(input, cols, catalog, config, deltas)? else {
                    return Ok(None);
                };
                out.append(&mut keys);
            }
            Ok(Some(out))
        }
        LogicalPlan::OrderBy { input, .. } => touched_keys(input, cols, catalog, config, deltas),
        _ => Ok(None),
    }
}

/// For each executed key-side row whose join key appears among the
/// delta rows' join keys, emit its projection onto `cols` (key-side
/// relative). NULL join keys never match, per SQL equality.
fn semi_join_keys(
    delta_rows: &[Tuple],
    delta_join_cols: &[usize],
    exec_rows: &[Tuple],
    exec_join_cols: &[usize],
    cols: &[usize],
    out: &mut Vec<Tuple>,
) {
    use std::collections::HashSet;
    let mut wanted: HashSet<Vec<Value>> = HashSet::new();
    for row in delta_rows {
        let key: Vec<Value> = delta_join_cols.iter().map(|&c| row.value(c).clone()).collect();
        if !key.iter().any(|v| matches!(v, Value::Null)) {
            wanted.insert(key);
        }
    }
    if wanted.is_empty() {
        return;
    }
    for row in exec_rows {
        let key: Vec<Value> = exec_join_cols.iter().map(|&c| row.value(c).clone()).collect();
        if key.iter().any(|v| matches!(v, Value::Null)) {
            continue;
        }
        if wanted.contains(&key) {
            out.push(Tuple::new(cols.iter().map(|&c| row.value(c).clone()).collect()));
        }
    }
}

/// Extract the conjunctive column-equality keys of a join predicate:
/// `l.a = r.x AND l.b = r.y …` over the concatenated schema. `None`
/// when any conjunct is not a plain cross-side column equality — the
/// hash-join delta rule then does not apply and the caller falls back.
fn equi_key_columns(pred: &Expr, left_width: usize) -> Option<(Vec<usize>, Vec<usize>)> {
    fn walk(e: &Expr, left_width: usize, lk: &mut Vec<usize>, rk: &mut Vec<usize>) -> bool {
        match e {
            Expr::Binary { op: BinOp::And, left, right } => {
                walk(left, left_width, lk, rk) && walk(right, left_width, lk, rk)
            }
            Expr::Binary { op: BinOp::Eq, left, right } => match (&**left, &**right) {
                (Expr::Column(i), Expr::Column(j)) if *i < left_width && *j >= left_width => {
                    lk.push(*i);
                    rk.push(*j - left_width);
                    true
                }
                (Expr::Column(i), Expr::Column(j)) if *j < left_width && *i >= left_width => {
                    lk.push(*j);
                    rk.push(*i - left_width);
                    true
                }
                _ => false,
            },
            _ => false,
        }
    }
    let (mut lk, mut rk) = (Vec::new(), Vec::new());
    walk(pred, left_width, &mut lk, &mut rk).then_some((lk, rk))
}

/// Hash-join a (small) delta against the other side: build an index on
/// `build` keyed by `build_keys`, probe with `probe`, re-check the full
/// predicate on each candidate (NULL keys never match, per SQL
/// equality). `probe_is_left` fixes the concatenation order so the
/// output matches the join's schema.
fn join_touched(
    probe: &[Tuple],
    build: &[Tuple],
    probe_keys: &[usize],
    build_keys: &[usize],
    probe_is_left: bool,
    predicate: &Expr,
    out: &mut Vec<Tuple>,
) -> Result<()> {
    if probe.is_empty() || build.is_empty() {
        return Ok(());
    }
    let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (i, row) in build.iter().enumerate() {
        let key: Vec<Value> = build_keys.iter().map(|&c| row.value(c).clone()).collect();
        if key.iter().any(|v| matches!(v, Value::Null)) {
            continue;
        }
        index.entry(key).or_default().push(i);
    }
    for row in probe {
        let key: Vec<Value> = probe_keys.iter().map(|&c| row.value(c).clone()).collect();
        if key.iter().any(|v| matches!(v, Value::Null)) {
            continue;
        }
        let Some(candidates) = index.get(&key) else {
            continue;
        };
        for &i in candidates {
            let combined: Vec<Value> = if probe_is_left {
                row.values().iter().chain(build[i].values()).cloned().collect()
            } else {
                build[i].values().iter().chain(row.values()).cloned().collect()
            };
            let t = Tuple::new(combined);
            if predicate.eval_predicate(&t, &[])? {
                out.push(t);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_algebra::{ProjectItem, TableDef};
    use xmlpub_common::{row, DataType, Field, Schema};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let sup = TableDef::new(
            "supplier",
            Schema::new(vec![
                Field::new("s_suppkey", DataType::Int),
                Field::new("s_name", DataType::Str),
            ]),
        )
        .with_primary_key(&["s_suppkey"]);
        cat.register(
            sup.clone(),
            xmlpub_common::Relation::new(
                sup.schema.clone(),
                vec![row![1, "Acme"], row![2, "Globex"], row![3, "Initech"]],
            )
            .unwrap(),
        )
        .unwrap();
        let ps = TableDef::new(
            "partsupp",
            Schema::new(vec![
                Field::new("ps_suppkey", DataType::Int),
                Field::new("ps_partkey", DataType::Int),
            ]),
        )
        .with_primary_key(&["ps_suppkey", "ps_partkey"])
        .with_foreign_key(&["ps_suppkey"], "supplier", &["s_suppkey"]);
        cat.register(
            ps.clone(),
            xmlpub_common::Relation::new(
                ps.schema.clone(),
                vec![row![1, 10], row![1, 11], row![2, 20]],
            )
            .unwrap(),
        )
        .unwrap();
        cat
    }

    fn join_plan(cat: &Catalog) -> LogicalPlan {
        // supplier ⋈ partsupp on suppkey, projecting (s_suppkey, ps_partkey).
        let sup = LogicalPlan::scan("supplier", cat.table("supplier").unwrap().schema.clone());
        let ps = LogicalPlan::scan("partsupp", cat.table("partsupp").unwrap().schema.clone());
        let join = LogicalPlan::join(sup, ps, Expr::col(0).eq(Expr::col(2)));
        LogicalPlan::project(join, vec![ProjectItem::col(0), ProjectItem::col(3)])
    }

    #[test]
    fn scan_select_project_propagate_row_local_deltas() {
        let cat = catalog();
        let config = EngineConfig::default();
        let plan = LogicalPlan::select(
            LogicalPlan::scan("supplier", cat.table("supplier").unwrap().schema.clone()),
            Expr::col(0).eq(Expr::lit(2)),
        );
        let mut deltas = TableDeltas::new();
        deltas.add("supplier", DeltaBatch::new(vec![row![4, "Umbrella"]], vec![row![2, "Globex"]]));
        let touched = propagate_touched(&plan, &cat, &config, &deltas).unwrap().unwrap();
        // The appended row fails the filter; the deleted row passes it.
        assert_eq!(touched, vec![row![2, "Globex"]]);
        // No deltas at all: empty touched set, still supported.
        let none = propagate_touched(&plan, &cat, &config, &TableDeltas::new()).unwrap().unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn join_delta_builds_against_unchanged_side() {
        let cat = catalog();
        let config = EngineConfig::default();
        let plan = join_plan(&cat);
        // Churn partsupp only: append (3,30), delete (1,11). The new
        // catalog state is "after": apply to the catalog first.
        let delta = DeltaBatch::new(vec![row![3, 30]], vec![row![1, 11]]);
        cat.apply_delta("partsupp", &delta).unwrap();
        let mut deltas = TableDeltas::new();
        deltas.add("partsupp", delta);
        let mut touched = propagate_touched(&plan, &cat, &config, &deltas).unwrap().unwrap();
        touched.sort();
        // Both the appended and the deleted partsupp row join to their
        // (unchanged) suppliers: suppliers 1 and 3 are touched.
        assert_eq!(touched, vec![row![1, 11], row![3, 30]]);
        let keys = dirty_keys(&plan, &[0], &cat, &config, &deltas).unwrap().unwrap();
        assert_eq!(keys, vec![row![1], row![3]]);
    }

    #[test]
    fn join_delta_catches_both_sides_deleted() {
        let cat = catalog();
        let config = EngineConfig::default();
        let plan = join_plan(&cat);
        // Supplier 2 and its only partsupp row vanish together: neither
        // new side still holds the partner, so only the ΔL ⋈ ΔR term
        // can report supplier 2 as touched.
        let sup_delta = DeltaBatch::deletes(vec![row![2, "Globex"]]);
        let ps_delta = DeltaBatch::deletes(vec![row![2, 20]]);
        cat.apply_delta("supplier", &sup_delta).unwrap();
        cat.apply_delta("partsupp", &ps_delta).unwrap();
        let mut deltas = TableDeltas::new();
        deltas.add("supplier", sup_delta);
        deltas.add("partsupp", ps_delta);
        let keys = dirty_keys(&plan, &[0], &cat, &config, &deltas).unwrap().unwrap();
        assert_eq!(keys, vec![row![2]], "the vanished pair must still dirty supplier 2");
    }

    #[test]
    fn union_and_order_pass_through_aggregates_fall_back() {
        let cat = catalog();
        let config = EngineConfig::default();
        let scan = LogicalPlan::scan("supplier", cat.table("supplier").unwrap().schema.clone());
        let union = LogicalPlan::union_all(vec![scan.clone(), scan.clone()]);
        let ordered = LogicalPlan::order_by(union, vec![xmlpub_algebra::SortKey::asc(0)]);
        let mut deltas = TableDeltas::new();
        deltas.add("supplier", DeltaBatch::appends(vec![row![5, "Wonka"]]));
        let touched = propagate_touched(&ordered, &cat, &config, &deltas).unwrap().unwrap();
        assert_eq!(touched.len(), 2, "both union branches report the append");
        // Duplicate elimination is not row-local: unsupported.
        let distinct = LogicalPlan::distinct(scan);
        assert!(propagate_touched(&distinct, &cat, &config, &deltas).unwrap().is_none());
    }

    #[test]
    fn gapply_dirty_groups_mark_only_changed_keys() {
        let cat = catalog();
        let config = EngineConfig::default();
        let sup = LogicalPlan::scan("supplier", cat.table("supplier").unwrap().schema.clone());
        let ps = LogicalPlan::scan("partsupp", cat.table("partsupp").unwrap().schema.clone());
        let join = LogicalPlan::join(sup, ps, Expr::col(0).eq(Expr::col(2)));
        let pgq = LogicalPlan::group_scan(join.schema());
        let gapply = LogicalPlan::gapply(join, vec![0], pgq);
        let delta = DeltaBatch::appends(vec![row![2, 21]]);
        cat.apply_delta("partsupp", &delta).unwrap();
        let mut deltas = TableDeltas::new();
        deltas.add("partsupp", delta);
        let groups = gapply_dirty_groups(&gapply, &cat, &config, &deltas).unwrap().unwrap();
        assert_eq!(groups.into_iter().collect::<Vec<_>>(), vec![row![2]]);
        // Non-GApply root: not this entry point's job.
        let plain = join_plan(&cat);
        assert!(gapply_dirty_groups(&plain, &cat, &config, &deltas).unwrap().is_none());
    }
}
