//! A transparent profiling decorator.
//!
//! When `EngineConfig::profile_ops` is set, the planner wraps every
//! operator it builds in a [`Profiled`] that counts `open`/`next_batch`/
//! `close` calls, batches, rows and wall time into the context's
//! [`OpProfile`](crate::context::OpProfile) slot for the operator's
//! pre-order plan position. When the flag is off the decorator is simply
//! never constructed, so profiling costs nothing.
//!
//! Timing is **monotonic-safe** (clock anomalies clamp a call to zero
//! via `saturating_ns_since` rather than panicking or going negative)
//! and **exclusive-time correct**: the context keeps a stack of active
//! `Profiled` frames, each call's elapsed time is charged to its own
//! slot's `total_ns` *and* to the enclosing frame's `child_ns`, and
//! `self_ns()` is the saturating difference — so rendering self-times
//! over a nested plan (a GApply running `Profiled` subtrees per group
//! included) never double-counts a nanosecond.
//!
//! When the context carries an enabled metrics registry, the decorator
//! also feeds engine-wide row/batch counters. The counter handles are
//! resolved once on first `open` and cached, keeping the per-batch cost
//! to a relaxed atomic add.

use super::{BoxedOp, PhysicalOp};
use crate::context::ExecContext;
use std::sync::Arc;
use std::time::Instant;
use xmlpub_common::{Result, Schema, TupleBatch};
use xmlpub_obs::{saturating_ns_since, Counter};

/// Counts calls, rows and wall time around an inner operator.
pub struct Profiled {
    inner: BoxedOp,
    id: usize,
    label: String,
    depth: usize,
    /// Cached `engine.rows_out` counter, resolved on first open when the
    /// context's metrics handle is live.
    rows_counter: Option<Arc<Counter>>,
    /// Cached `engine.batches` counter, ditto.
    batches_counter: Option<Arc<Counter>>,
}

impl Profiled {
    /// Wrap `inner` as plan node `id` (pre-order) at `depth`.
    pub fn new(inner: BoxedOp, id: usize, label: impl Into<String>, depth: usize) -> Self {
        Profiled {
            inner,
            id,
            label: label.into(),
            depth,
            rows_counter: None,
            batches_counter: None,
        }
    }

    /// Charge `elapsed` to this operator's slot and to the enclosing
    /// frame's `child_ns` (if any). `parent` is the frame that was on
    /// top of the stack when this call started.
    fn charge(&self, ctx: &mut ExecContext<'_>, parent: Option<usize>, elapsed: u64) {
        let p = ctx.profile_mut(self.id, &self.label, self.depth);
        p.total_ns = p.total_ns.saturating_add(elapsed);
        if let Some(pid) = parent {
            // The parent's slot exists: pre-order parents have smaller
            // ids, and `profile_mut` above grew the vector past ours.
            let pp = &mut ctx.profiles[pid];
            pp.child_ns = pp.child_ns.saturating_add(elapsed);
        }
    }
}

impl PhysicalOp for Profiled {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        if self.rows_counter.is_none() && ctx.obs.metrics.enabled() {
            self.rows_counter = ctx.obs.metrics.counter("engine.rows_out");
            self.batches_counter = ctx.obs.metrics.counter("engine.batches");
        }
        let parent = ctx.op_stack.last().copied();
        ctx.op_stack.push(self.id);
        let start = Instant::now();
        let r = self.inner.open(ctx);
        let elapsed = saturating_ns_since(start);
        ctx.op_stack.pop();
        self.charge(ctx, parent, elapsed);
        ctx.profile_mut(self.id, &self.label, self.depth).opens += 1;
        r
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        let parent = ctx.op_stack.last().copied();
        ctx.op_stack.push(self.id);
        let start = Instant::now();
        let r = self.inner.next_batch(ctx);
        let elapsed = saturating_ns_since(start);
        ctx.op_stack.pop();
        self.charge(ctx, parent, elapsed);
        let r = r?;
        if let Some(b) = &r {
            debug_assert!(
                !b.is_empty(),
                "operator {} produced an empty batch (exhaustion must be None)",
                self.label
            );
        }
        let p = ctx.profile_mut(self.id, &self.label, self.depth);
        p.next_calls += 1;
        if let Some(b) = &r {
            p.batches += 1;
            p.rows_out += b.len() as u64;
            if let Some(c) = &self.rows_counter {
                c.add(b.len() as u64);
            }
            if let Some(c) = &self.batches_counter {
                c.add(1);
            }
        }
        Ok(r)
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        let parent = ctx.op_stack.last().copied();
        ctx.op_stack.push(self.id);
        let start = Instant::now();
        let r = self.inner.close(ctx);
        let elapsed = saturating_ns_since(start);
        ctx.op_stack.pop();
        self.charge(ctx, parent, elapsed);
        r?;
        ctx.profile_mut(self.id, &self.label, self.depth).closes += 1;
        Ok(())
    }

    /// The clone keeps the original's plan id and depth, so counters a
    /// worker collects against the clone merge into the same
    /// [`OpProfile`](crate::context::OpProfile) slot as the original's.
    /// Cached metric handles are dropped: the clone re-resolves against
    /// whatever registry its own context carries.
    fn clone_op(&self) -> BoxedOp {
        Box::new(Profiled::new(self.inner.clone_op(), self.id, self.label.clone(), self.depth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::drain;
    use crate::test_support::{ctx_with, values_op};
    use std::time::Duration;
    use xmlpub_common::row;

    /// Delegates to its inner operator but burns a fixed amount of its
    /// *own* time per `next_batch` — so the test can distinguish
    /// exclusive time from inherited child time.
    struct SlowPassThrough {
        inner: BoxedOp,
        own_work: Duration,
    }

    impl PhysicalOp for SlowPassThrough {
        fn schema(&self) -> &Schema {
            self.inner.schema()
        }
        fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
            self.inner.open(ctx)
        }
        fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
            std::thread::sleep(self.own_work);
            self.inner.next_batch(ctx)
        }
        fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
            self.inner.close(ctx)
        }
        fn clone_op(&self) -> BoxedOp {
            Box::new(SlowPassThrough { inner: self.inner.clone_op(), own_work: self.own_work })
        }
    }

    /// Hand-built two-level (plus leaf) profiled plan:
    ///
    /// ```text
    /// Profiled#0(outer pass-through)
    ///   Profiled#1(inner pass-through)
    ///     Profiled#2(Values)
    /// ```
    ///
    /// Pins the exclusive-time invariants: a parent's `child_ns` is
    /// *exactly* the sum of its direct children's `total_ns` (the same
    /// measured values go to both sides), so summing `self_ns` over the
    /// tree reproduces the root's `total_ns` with no double counting —
    /// the nested-plan accounting bug this decorator used to have.
    #[test]
    fn nested_profiled_plan_times_exclusively() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let leaf = Box::new(Profiled::new(values_op(vec![row![1], row![2]]), 2, "Values", 2));
        let inner = Box::new(Profiled::new(
            Box::new(SlowPassThrough { inner: leaf, own_work: Duration::from_millis(2) }),
            1,
            "Inner",
            1,
        ));
        let mut outer = Profiled::new(
            Box::new(SlowPassThrough { inner, own_work: Duration::from_millis(2) }),
            0,
            "Outer",
            0,
        );
        let rows = drain(&mut outer, &mut ctx).unwrap();
        assert_eq!(rows.len(), 2);

        let p = &ctx.profiles;
        assert_eq!(p.len(), 3);
        // Exact attribution: each child call's elapsed time lands in the
        // child's total AND the parent's child_ns, so these are equal —
        // not approximately, identically.
        assert_eq!(p[0].child_ns, p[1].total_ns);
        assert_eq!(p[1].child_ns, p[2].total_ns);
        // No double counting: exclusive times over the tree sum back to
        // the root's inclusive time.
        assert_eq!(p[0].self_ns() + p[1].self_ns() + p[2].self_ns(), p[0].total_ns);
        // Both pass-throughs did ≥ 2ms of their own work (one sleep per
        // next_batch, and there is at least one next_batch call).
        assert!(p[0].self_ns() >= 2_000_000, "outer self {}ns", p[0].self_ns());
        assert!(p[1].self_ns() >= 2_000_000, "inner self {}ns", p[1].self_ns());
        // Nesting is properly ordered.
        assert!(p[0].total_ns >= p[1].total_ns);
        assert!(p[1].total_ns >= p[2].total_ns);
    }

    /// `self_ns` saturates rather than underflowing, even if merged
    /// profile fragments ever produced child_ns > total_ns.
    #[test]
    fn self_time_saturates() {
        let p = crate::OpProfile { total_ns: 10, child_ns: 25, ..Default::default() };
        assert_eq!(p.self_ns(), 0);
    }

    /// Worker-collected profiles merge times into the same slots.
    #[test]
    fn merge_profiles_folds_times() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        ctx.profile_mut(0, "Op", 0).total_ns = 100;
        ctx.profiles[0].child_ns = 40;
        let worker = vec![crate::OpProfile {
            label: "Op".into(),
            total_ns: 7,
            child_ns: 3,
            ..Default::default()
        }];
        ctx.merge_profiles(&worker);
        assert_eq!(ctx.profiles[0].total_ns, 107);
        assert_eq!(ctx.profiles[0].child_ns, 43);
        assert_eq!(ctx.profiles[0].self_ns(), 64);
    }

    /// Metrics reporting: rows flowing through a profiled plan land in
    /// the context registry via the cached counter.
    #[test]
    fn profiled_reports_rows_into_metrics() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let obs = xmlpub_obs::Observability::with_metrics();
        ctx.obs = obs.context(0);
        let mut op = Profiled::new(values_op(vec![row![1], row![2], row![3]]), 0, "Values", 0);
        let rows = drain(&mut op, &mut ctx).unwrap();
        assert_eq!(rows.len(), 3);
        let snap = obs.metrics.snapshot().unwrap();
        assert_eq!(snap.counter("engine.rows_out"), Some(3));
        assert!(snap.counter("engine.batches").unwrap() >= 1);
    }
}
