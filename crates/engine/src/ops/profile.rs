//! A transparent profiling decorator.
//!
//! When `EngineConfig::profile_ops` is set, the planner wraps every
//! operator it builds in a [`Profiled`] that counts `open`/`next_batch`/
//! `close` calls, batches, and rows into the context's
//! [`OpProfile`](crate::context::OpProfile) slot for the operator's
//! pre-order plan position. When the flag is off the decorator is simply
//! never constructed, so profiling costs nothing.

use super::{BoxedOp, PhysicalOp};
use crate::context::ExecContext;
use xmlpub_common::{Result, Schema, TupleBatch};

/// Counts calls and rows around an inner operator.
pub struct Profiled {
    inner: BoxedOp,
    id: usize,
    label: String,
    depth: usize,
}

impl Profiled {
    /// Wrap `inner` as plan node `id` (pre-order) at `depth`.
    pub fn new(inner: BoxedOp, id: usize, label: impl Into<String>, depth: usize) -> Self {
        Profiled { inner, id, label: label.into(), depth }
    }
}

impl PhysicalOp for Profiled {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        ctx.profile_mut(self.id, &self.label, self.depth).opens += 1;
        self.inner.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        let r = self.inner.next_batch(ctx)?;
        let p = ctx.profile_mut(self.id, &self.label, self.depth);
        p.next_calls += 1;
        if let Some(b) = &r {
            p.batches += 1;
            p.rows_out += b.len() as u64;
        }
        Ok(r)
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.inner.close(ctx)?;
        ctx.profile_mut(self.id, &self.label, self.depth).closes += 1;
        Ok(())
    }

    /// The clone keeps the original's plan id and depth, so counters a
    /// worker collects against the clone merge into the same
    /// [`OpProfile`](crate::context::OpProfile) slot as the original's.
    fn clone_op(&self) -> BoxedOp {
        Box::new(Profiled::new(self.inner.clone_op(), self.id, self.label.clone(), self.depth))
    }
}
