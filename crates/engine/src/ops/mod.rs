//! Physical operators.
//!
//! Everything follows the classic Volcano contract:
//! `open` (re)initialises state — operators are required to be
//! re-openable, because `GApply` re-opens its per-group plan once per
//! group; `next` produces one tuple or `None`; `close` releases buffers.

use crate::context::ExecContext;
use xmlpub_common::{Result, Schema, Tuple};

pub mod agg;
pub mod apply;
pub mod distinct;
pub mod filter;
pub mod gapply;
pub mod join;
pub mod project;
pub mod scan;
pub mod sort;
pub mod union;
pub mod values;

pub use agg::{HashAggregate, ScalarAggregate};
pub use apply::{ApplyOp, ExistsOp};
pub use distinct::HashDistinct;
pub use filter::Filter;
pub use gapply::{GApplyOp, PartitionStrategy};
pub use join::{HashJoin, NestedLoopJoin};
pub use project::Project;
pub use scan::{GroupScan, TableScan};
pub use sort::Sort;
pub use union::UnionAll;
pub use values::ValuesOp;

/// A Volcano-style physical operator.
pub trait PhysicalOp {
    /// Output schema.
    fn schema(&self) -> &Schema;
    /// (Re)initialise. Must be callable repeatedly (after `close`).
    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()>;
    /// Produce the next tuple, or `None` when exhausted.
    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Tuple>>;
    /// Release state. Idempotent.
    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()>;
}

/// Boxed operator alias used throughout the planner.
pub type BoxedOp = Box<dyn PhysicalOp>;

/// Drain an operator into a vector of tuples (open → next* → close).
pub fn drain(op: &mut dyn PhysicalOp, ctx: &mut ExecContext<'_>) -> Result<Vec<Tuple>> {
    op.open(ctx)?;
    let mut out = Vec::new();
    while let Some(t) = op.next(ctx)? {
        out.push(t);
    }
    op.close(ctx)?;
    Ok(out)
}
