//! Physical operators.
//!
//! Everything follows a vectorized Volcano contract:
//! `open` (re)initialises state — operators are required to be
//! re-openable, because `GApply` re-opens its per-group plan once per
//! group; `next_batch` produces the next [`TupleBatch`] or `None` when
//! exhausted; `close` releases buffers. Batches flowing between operators
//! are never empty — exhaustion is signalled *only* by `None` — and
//! `ctx.batch_size` is a target, not a bound: operators whose output
//! expands one input batch (joins, applies) may exceed it rather than
//! buffer rows across calls. Setting `batch_size` to 1 degenerates to the
//! classic tuple-at-a-time model.

use crate::context::ExecContext;
use xmlpub_common::{Result, Schema, Tuple, TupleBatch};

pub mod agg;
pub mod apply;
pub mod distinct;
pub mod filter;
pub mod gapply;
pub mod join;
pub mod profile;
pub mod project;
pub mod scan;
pub mod sort;
pub mod union;
pub mod values;

pub use agg::{HashAggregate, ScalarAggregate};
pub use apply::{ApplyOp, ExistsOp};
pub use distinct::HashDistinct;
pub use filter::Filter;
pub use gapply::{GApplyOp, PartitionStrategy};
pub use join::{HashJoin, NestedLoopJoin};
pub use profile::Profiled;
pub use project::Project;
pub use scan::{GroupScan, TableScan};
pub use sort::Sort;
pub use union::UnionAll;
pub use values::ValuesOp;

/// A vectorized Volcano-style physical operator.
pub trait PhysicalOp {
    /// Output schema.
    fn schema(&self) -> &Schema;
    /// (Re)initialise. Must be callable repeatedly (after `close`).
    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()>;
    /// Produce the next non-empty batch of tuples, or `None` when
    /// exhausted.
    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>>;
    /// Release state. Idempotent.
    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()>;
}

/// Boxed operator alias used throughout the planner.
pub type BoxedOp = Box<dyn PhysicalOp>;

/// Drain an operator into a vector of tuples (open → next_batch* → close).
///
/// This is the workspace's one materialisation loop: the executor's
/// [`ResultStream`](crate::executor::ResultStream), the §5.1 client
/// simulator and the operator unit tests all run exhaustion through
/// here (or through [`collect_remaining`] when the operator is already
/// open), so batch-handling bugs cannot diverge between consumers.
pub fn drain(op: &mut dyn PhysicalOp, ctx: &mut ExecContext<'_>) -> Result<Vec<Tuple>> {
    op.open(ctx)?;
    let out = collect_remaining(op, ctx)?;
    op.close(ctx)?;
    Ok(out)
}

/// Collect every remaining batch of an already-open operator.
pub(crate) fn collect_remaining(
    op: &mut dyn PhysicalOp,
    ctx: &mut ExecContext<'_>,
) -> Result<Vec<Tuple>> {
    let mut out = Vec::new();
    while let Some(batch) = op.next_batch(ctx)? {
        out.extend(batch.into_rows());
    }
    Ok(out)
}

/// Cut the next `batch_size`-row chunk out of a materialised buffer,
/// advancing `pos`. `None` once the buffer is exhausted — the shared
/// emission loop for materialising operators (scan, values, sort, agg).
pub(crate) fn chunk(rows: &[Tuple], pos: &mut usize, batch_size: usize) -> Option<Vec<Tuple>> {
    if *pos >= rows.len() {
        return None;
    }
    let end = (*pos + batch_size.max(1)).min(rows.len());
    let out = rows[*pos..end].to_vec();
    *pos = end;
    Some(out)
}
