//! Physical operators.
//!
//! Everything follows a vectorized Volcano contract:
//! `open` (re)initialises state — operators are required to be
//! re-openable, because `GApply` re-opens its per-group plan once per
//! group; `next_batch` produces the next [`TupleBatch`] or `None` when
//! exhausted; `close` releases buffers. Batches flowing between operators
//! are never empty — exhaustion is signalled *only* by `None` — and
//! `ctx.batch_size` is a target, not a bound: operators whose output
//! expands one input batch (joins, applies) may exceed it rather than
//! buffer rows across calls. Setting `batch_size` to 1 degenerates to the
//! classic tuple-at-a-time model.

use crate::context::ExecContext;
use xmlpub_common::{Result, Schema, Tuple, TupleBatch};

pub mod agg;
pub mod apply;
pub mod distinct;
pub mod filter;
pub mod gapply;
pub mod join;
pub mod profile;
pub mod project;
pub mod scan;
pub mod sort;
pub mod union;
pub mod values;

pub use agg::{HashAggregate, ScalarAggregate};
pub use apply::{ApplyOp, ExistsOp};
pub use distinct::HashDistinct;
pub use filter::Filter;
pub use gapply::{GApplyOp, PartitionStrategy};
pub use join::{HashJoin, NestedLoopJoin};
pub use profile::Profiled;
pub use project::Project;
pub use scan::{GroupScan, TableScan};
pub use sort::Sort;
pub use union::UnionAll;
pub use values::ValuesOp;

/// A vectorized Volcano-style physical operator.
///
/// Operators are `Send` so plan fragments can migrate to the engine's
/// scoped worker threads (parallel GApply), and every operator can stamp
/// out a fresh copy of itself via [`clone_op`](Self::clone_op) — the
/// plan-template factory the parallel execution phase uses to give each
/// worker its own per-group plan instance.
pub trait PhysicalOp: Send {
    /// Output schema.
    fn schema(&self) -> &Schema;
    /// (Re)initialise. Must be callable repeatedly (after `close`).
    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()>;
    /// Produce the next non-empty batch of tuples, or `None` when
    /// exhausted.
    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>>;
    /// Release state. Idempotent.
    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()>;
    /// Instantiate a fresh, closed copy of this operator (and its whole
    /// subtree) sharing no mutable state with the original: the plan
    /// template the parallel GApply clones once per worker. Runtime
    /// buffers (hash tables, sort buffers, caches) are *not* copied.
    fn clone_op(&self) -> BoxedOp;
}

/// Boxed operator alias used throughout the planner.
pub type BoxedOp = Box<dyn PhysicalOp>;

/// Drain an operator into a vector of tuples (open → next_batch* → close).
///
/// This is the workspace's one materialisation loop: the executor's
/// [`ResultStream`](crate::executor::ResultStream), the §5.1 client
/// simulator and the operator unit tests all run exhaustion through
/// here (or through [`collect_remaining`] when the operator is already
/// open), so batch-handling bugs cannot diverge between consumers.
pub fn drain(op: &mut dyn PhysicalOp, ctx: &mut ExecContext<'_>) -> Result<Vec<Tuple>> {
    op.open(ctx)?;
    let out = collect_remaining(op, ctx)?;
    op.close(ctx)?;
    Ok(out)
}

/// Collect every remaining batch of an already-open operator.
pub(crate) fn collect_remaining(
    op: &mut dyn PhysicalOp,
    ctx: &mut ExecContext<'_>,
) -> Result<Vec<Tuple>> {
    let mut out = Vec::new();
    while let Some(batch) = op.next_batch(ctx)? {
        // The operator contract: exhaustion is None, never an empty
        // batch. Checked here (and in ResultStream/Profiled) so every
        // consumer path enforces it in debug builds.
        debug_assert!(!batch.is_empty(), "operator produced an empty batch");
        out.extend(batch.into_rows());
    }
    Ok(out)
}

/// Cut the next `batch_size`-row chunk out of a materialised buffer,
/// advancing `pos`. `None` once the buffer is exhausted — the shared
/// emission loop for materialising operators (scan, values, sort, agg).
pub(crate) fn chunk(rows: &[Tuple], pos: &mut usize, batch_size: usize) -> Option<Vec<Tuple>> {
    if *pos >= rows.len() {
        return None;
    }
    let end = (*pos + batch_size.max(1)).min(rows.len());
    let out = rows[*pos..end].to_vec();
    *pos = end;
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{values_op, values_op_schema};
    use xmlpub_algebra::Catalog;
    use xmlpub_common::row;

    /// Schema is `Arc`-backed, so per-batch `schema.clone()` in every
    /// operator's emission path is a refcount bump, not a deep copy of
    /// the field vector. Pin that: every batch an operator emits — and
    /// every `clone_op` plan template — shares the operator's one
    /// allocation, even through an operator that computes its own output
    /// schema (Project).
    #[test]
    fn emitted_batches_share_the_operator_schema_allocation() {
        let cat = Catalog::new();
        let mut ctx = crate::context::ExecContext::with_batch_size(&cat, 3);
        let source = values_op((0..10).map(|i| row![i]).collect());
        let mut op: BoxedOp =
            Box::new(Project::new(source, vec![xmlpub_algebra::ProjectItem::col(0)]));
        assert!(!op.schema().ptr_eq(&values_op_schema()), "Project computes a fresh output schema");
        op.open(&mut ctx).unwrap();
        let mut batches = 0;
        while let Some(b) = op.next_batch(&mut ctx).unwrap() {
            assert!(b.schema().ptr_eq(op.schema()), "batch must share, not copy, the schema");
            batches += 1;
        }
        op.close(&mut ctx).unwrap();
        assert!(batches >= 3, "expected several batches, got {batches}");
        // The parallel plan template shares it too.
        assert!(op.clone_op().schema().ptr_eq(op.schema()));
    }
}
