//! Selection.

use crate::context::ExecContext;
use crate::ops::{BoxedOp, PhysicalOp};
use crate::parallel::{run_morsels, ParallelConfig};
use xmlpub_common::{Result, Schema, TupleBatch};
use xmlpub_expr::Expr;

/// Filters rows through a predicate with SQL WHERE semantics (NULL and
/// false reject). Column-primary batches (scan slices, projection
/// output) evaluate the predicate column-at-a-time; row-primary batches
/// use the row-oriented evaluator directly rather than paying a
/// columnification. Large batches are split into row-range morsels
/// evaluated across worker threads, with the per-morsel masks
/// concatenated in morsel order so the surviving rows — and their order —
/// are identical at any degree of parallelism.
pub struct Filter {
    input: BoxedOp,
    predicate: Expr,
    schema: Schema,
    parallel: ParallelConfig,
}

impl Filter {
    /// Filter `input` by `predicate` (serial).
    pub fn new(input: BoxedOp, predicate: Expr) -> Self {
        Filter::with_parallel(input, predicate, ParallelConfig::default())
    }

    /// Filter `input` by `predicate` with explicit parallelism knobs.
    pub fn with_parallel(input: BoxedOp, predicate: Expr, parallel: ParallelConfig) -> Self {
        let schema = input.schema().clone();
        Filter { input, predicate, schema, parallel }
    }
}

impl PhysicalOp for Filter {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.input.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        while let Some(mut batch) = self.input.next_batch(ctx)? {
            let mask = if self.parallel.parallel_morsels(batch.len()) {
                let predicate = &self.predicate;
                let outers = &ctx.outers;
                let shared = &batch;
                let per_worker = self.parallel.morsel_rows_per_worker;
                let parts = run_morsels(self.parallel.dop, per_worker, shared.len(), |range| {
                    if shared.is_columnar() {
                        predicate.eval_column_predicate(&shared.slice(range), outers)
                    } else {
                        predicate.eval_batch_predicate(&shared.rows()[range], outers)
                    }
                })?;
                parts.concat()
            } else if batch.is_columnar() {
                self.predicate.eval_column_predicate(&batch, &ctx.outers)?
            } else {
                self.predicate.eval_batch_predicate(batch.rows(), &ctx.outers)?
            };
            if mask.iter().all(|&keep| keep) {
                return Ok(Some(batch));
            }
            batch.retain(&mask);
            if !batch.is_empty() {
                return Ok(Some(batch));
            }
        }
        Ok(None)
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.input.close(ctx)
    }

    fn clone_op(&self) -> BoxedOp {
        Box::new(Filter::with_parallel(
            self.input.clone_op(),
            self.predicate.clone(),
            self.parallel,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::drain;
    use crate::test_support::{ctx_with, values_op};
    use xmlpub_common::{row, Value};

    #[test]
    fn filters_rows() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let input = values_op(vec![row![1], row![5], row![3]]);
        let mut f = Filter::new(input, Expr::col(0).gt(Expr::lit(2)));
        let rows = drain(&mut f, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![5], row![3]]);
    }

    #[test]
    fn null_predicate_rejects() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let input = values_op(vec![row![Value::Null], row![4]]);
        let mut f = Filter::new(input, Expr::col(0).gt(Expr::lit(2)));
        let rows = drain(&mut f, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![4]]);
    }

    #[test]
    fn correlated_predicate_reads_outer_stack() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        ctx.outers.push(row![10]);
        let input = values_op(vec![row![5], row![15]]);
        let mut f = Filter::new(input, Expr::col(0).gt(Expr::Correlated { level: 0, index: 0 }));
        let rows = drain(&mut f, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![15]]);
    }

    #[test]
    fn morsel_parallel_filter_matches_serial() {
        let rows: Vec<_> = (0..5000).map(|i| row![i]).collect();
        let pred = Expr::col(0).gt(Expr::lit(17)).and(
            Expr::binary(xmlpub_expr::BinOp::Mod, Expr::col(0), Expr::lit(3)).eq(Expr::lit(0)),
        );
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut serial = Filter::new(values_op(rows.clone()), pred.clone());
        let expected = drain(&mut serial, &mut ctx).unwrap();
        for dop in [2, 4, 8] {
            // Thresholds shrunk so 5000 rows genuinely spread across
            // worker threads (defaults would run this size inline).
            let mut f = Filter::with_parallel(
                values_op(rows.clone()),
                pred.clone(),
                ParallelConfig {
                    morsel_min_rows: 256,
                    morsel_rows_per_worker: 256,
                    ..ParallelConfig::with_dop(dop)
                },
            );
            let got = drain(&mut f, &mut ctx).unwrap();
            assert_eq!(got, expected, "dop {dop} diverged from serial");
        }
    }
}
