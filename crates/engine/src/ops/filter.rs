//! Selection.

use crate::context::ExecContext;
use crate::ops::{BoxedOp, PhysicalOp};
use xmlpub_common::{Result, Schema, TupleBatch};
use xmlpub_expr::Expr;

/// Filters rows through a predicate with SQL WHERE semantics (NULL and
/// false reject).
pub struct Filter {
    input: BoxedOp,
    predicate: Expr,
    schema: Schema,
}

impl Filter {
    /// Filter `input` by `predicate`.
    pub fn new(input: BoxedOp, predicate: Expr) -> Self {
        let schema = input.schema().clone();
        Filter { input, predicate, schema }
    }
}

impl PhysicalOp for Filter {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.input.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        while let Some(mut batch) = self.input.next_batch(ctx)? {
            let mask = self.predicate.eval_batch_predicate(batch.rows(), &ctx.outers)?;
            if mask.iter().all(|&keep| keep) {
                return Ok(Some(batch));
            }
            batch.retain(&mask);
            if !batch.is_empty() {
                return Ok(Some(batch));
            }
        }
        Ok(None)
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.input.close(ctx)
    }

    fn clone_op(&self) -> BoxedOp {
        Box::new(Filter::new(self.input.clone_op(), self.predicate.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::drain;
    use crate::test_support::{ctx_with, values_op};
    use xmlpub_common::{row, Value};

    #[test]
    fn filters_rows() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let input = values_op(vec![row![1], row![5], row![3]]);
        let mut f = Filter::new(input, Expr::col(0).gt(Expr::lit(2)));
        let rows = drain(&mut f, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![5], row![3]]);
    }

    #[test]
    fn null_predicate_rejects() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let input = values_op(vec![row![Value::Null], row![4]]);
        let mut f = Filter::new(input, Expr::col(0).gt(Expr::lit(2)));
        let rows = drain(&mut f, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![4]]);
    }

    #[test]
    fn correlated_predicate_reads_outer_stack() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        ctx.outers.push(row![10]);
        let input = values_op(vec![row![5], row![15]]);
        let mut f = Filter::new(input, Expr::col(0).gt(Expr::Correlated { level: 0, index: 0 }));
        let rows = drain(&mut f, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![15]]);
    }
}
