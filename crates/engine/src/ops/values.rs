//! Literal row source (VALUES) — used by tests and the client-side
//! simulation to feed materialised intermediates back into plans.

use crate::context::ExecContext;
use crate::ops::{chunk, BoxedOp, PhysicalOp};
use xmlpub_common::{Relation, Result, Schema, Tuple, TupleBatch};

/// Produces a fixed list of rows.
pub struct ValuesOp {
    schema: Schema,
    rows: Vec<Tuple>,
    pos: usize,
}

impl ValuesOp {
    /// A source yielding `rows` with the given schema.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Self {
        ValuesOp { schema, rows, pos: 0 }
    }

    /// A source over a materialised relation.
    pub fn from_relation(rel: Relation) -> Self {
        let schema = rel.schema().clone();
        ValuesOp { schema, rows: rel.into_rows(), pos: 0 }
    }
}

impl PhysicalOp for ValuesOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
        self.pos = 0;
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        Ok(chunk(&self.rows, &mut self.pos, ctx.batch_size)
            .map(|rows| TupleBatch::new(self.schema.clone(), rows)))
    }

    fn close(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
        self.pos = 0;
        Ok(())
    }

    fn clone_op(&self) -> BoxedOp {
        Box::new(ValuesOp::new(self.schema.clone(), self.rows.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::drain;
    use xmlpub_algebra::Catalog;
    use xmlpub_common::{row, DataType, Field};

    #[test]
    fn yields_rows_and_reopens() {
        let cat = Catalog::new();
        let mut ctx = ExecContext::new(&cat);
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let mut v = ValuesOp::new(schema, vec![row![1], row![2]]);
        assert_eq!(drain(&mut v, &mut ctx).unwrap().len(), 2);
        assert_eq!(drain(&mut v, &mut ctx).unwrap().len(), 2);
    }

    #[test]
    fn from_relation_keeps_schema() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let rel = Relation::new(schema.clone(), vec![row![3]]).unwrap();
        let v = ValuesOp::from_relation(rel);
        assert_eq!(v.schema(), &schema);
    }
}
