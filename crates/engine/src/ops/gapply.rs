//! The GApply physical operator (paper §3).
//!
//! Two phases, exactly as described:
//!
//! 1. **Partition** — the input stream is materialised and partitioned on
//!    the grouping columns, by hashing (first-seen group order) or by
//!    sorting (group-key order — this variant also *guarantees* the
//!    output is clustered by the grouping columns, which the constant
//!    space tagger downstream relies on, making a separate partition/sort
//!    operator above GApply redundant per §3.1). When the input is large
//!    and `ParallelConfig::dop > 1`, the hash build / sort itself runs
//!    chunked across scoped workers and the chunks are merged back in a
//!    way that reproduces the serial group order exactly.
//! 2. **Execution** — each group becomes a temporary [`Relation`] bound
//!    as the relation-valued parameter `$group`; the per-group plan is
//!    (re)opened against that binding and drained; every result row is
//!    crossed with the group-key values. Serially this is a nested loop;
//!    with `dop > 1` and enough groups, groups are scheduled as
//!    work-stealing chunks onto scoped worker threads, each worker
//!    running its own [`clone_op`](PhysicalOp::clone_op) copy of the
//!    per-group plan, and a deterministic merge re-emits the buffered
//!    per-group output in serial group order — so result rows (and the
//!    golden XML tagged from them) are byte-identical at any DOP.

use crate::context::ExecContext;
use crate::ops::{chunk, BoxedOp, PhysicalOp};
use crate::parallel::{run_scoped, split_owned, ParallelConfig, TaskCursor};
use std::collections::HashMap;
use std::sync::Arc;
use xmlpub_common::{Error, Relation, Result, Schema, Tuple, TupleBatch, Value};

/// How the partition phase groups the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Hash partitioning; groups come out in first-seen order.
    #[default]
    Hash,
    /// Sort partitioning; groups come out in key order (output is
    /// clustered by the grouping columns).
    Sort,
}

/// The GApply operator.
pub struct GApplyOp {
    input: BoxedOp,
    group_cols: Vec<usize>,
    pgq: BoxedOp,
    strategy: PartitionStrategy,
    parallel: ParallelConfig,
    schema: Schema,
    input_schema: Schema,
    groups: Vec<(Tuple, Arc<Relation>)>,
    group_idx: usize,
    pgq_open: bool,
    /// Fully merged output of a parallel execution phase (group order,
    /// emitted via `chunk`); `None` when executing serially.
    merged: Option<Vec<Tuple>>,
    merged_pos: usize,
}

impl GApplyOp {
    /// Create a serial GApply over `input`, partitioning on `group_cols`
    /// and running `pgq` per group.
    pub fn new(
        input: BoxedOp,
        group_cols: Vec<usize>,
        pgq: BoxedOp,
        strategy: PartitionStrategy,
    ) -> Self {
        GApplyOp::with_parallel(input, group_cols, pgq, strategy, ParallelConfig::default())
    }

    /// [`GApplyOp::new`] with an explicit parallelism configuration.
    pub fn with_parallel(
        input: BoxedOp,
        group_cols: Vec<usize>,
        pgq: BoxedOp,
        strategy: PartitionStrategy,
        parallel: ParallelConfig,
    ) -> Self {
        let input_schema = input.schema().clone();
        let key_fields = group_cols.iter().map(|&c| input_schema.field(c).clone()).collect();
        let schema = Schema::new(key_fields).join(pgq.schema());
        GApplyOp {
            input,
            group_cols,
            pgq,
            strategy,
            parallel,
            schema,
            input_schema,
            groups: Vec::new(),
            group_idx: 0,
            pgq_open: false,
            merged: None,
            merged_pos: 0,
        }
    }

    fn partition(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        let mut rows = Vec::new();
        self.input.open(ctx)?;
        while let Some(b) = self.input.next_batch(ctx)? {
            rows.extend(b.into_rows());
        }
        self.input.close(ctx)?;

        let parallel_workers =
            if self.parallel.parallel_partition(rows.len()) { self.parallel.dop } else { 1 };
        let grouped: Vec<(Vec<Value>, Vec<Tuple>)> = match self.strategy {
            PartitionStrategy::Hash => {
                ctx.stats.rows_hashed += rows.len() as u64;
                if parallel_workers > 1 {
                    hash_partition_parallel(rows, &self.group_cols, parallel_workers)?
                } else {
                    hash_partition(rows, &self.group_cols)
                }
            }
            PartitionStrategy::Sort => {
                ctx.stats.rows_sorted += rows.len() as u64;
                let sorted = if parallel_workers > 1 {
                    sort_rows_parallel(rows, &self.group_cols, parallel_workers)?
                } else {
                    sort_rows(rows, &self.group_cols)
                };
                cluster_sorted(sorted, &self.group_cols)
            }
        };

        self.groups = grouped
            .into_iter()
            .map(|(key, rows)| {
                (
                    Tuple::new(key),
                    Arc::new(Relation::from_rows_unchecked(self.input_schema.clone(), rows)),
                )
            })
            .collect();
        Ok(())
    }

    /// The parallel execution phase: schedule groups as work-stealing
    /// chunks onto `dop` scoped workers, each running its own clone of
    /// the per-group plan over a private context, then merge the
    /// per-group buffers back in serial group order (plus worker stats
    /// and profiles into `ctx`).
    fn execute_parallel(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        let group_count = self.groups.len();
        let worker_count = self.parallel.dop.min(group_count);
        let cursor =
            TaskCursor::new(group_count, TaskCursor::balanced_chunk(group_count, worker_count));
        // Plan templates are cloned on the calling thread: `clone_op`
        // needs only `&self`, and each clone is a fresh closed tree, so
        // workers never share operator state.
        let plans: Vec<BoxedOp> = (0..worker_count).map(|_| self.pgq.clone_op()).collect();

        let groups = &self.groups;
        let catalog = ctx.catalog;
        let batch_size = ctx.batch_size;
        // Each worker starts from a snapshot of the enclosing bindings:
        // correlated references (`ctx.outers`) and outer GApply groups
        // (`ctx.groups`) resolve exactly as they would serially.
        let outers = &ctx.outers;
        let outer_groups = &ctx.groups;
        let obs = &ctx.obs;
        let cursor_ref = &cursor;

        type WorkerOutput = (Vec<(usize, Vec<Tuple>)>, crate::ExecStats, Vec<crate::OpProfile>);
        let workers: Vec<_> = plans
            .into_iter()
            .enumerate()
            .map(|(w, mut plan)| {
                move || -> Result<WorkerOutput> {
                    let mut wctx = ExecContext::with_batch_size(catalog, batch_size);
                    // Workers share the parent's metrics registry and
                    // tracer; their spans parent under the same span the
                    // GApply itself reports to.
                    wctx.obs = obs.clone();
                    wctx.outers = outers.clone();
                    wctx.groups = outer_groups.clone();
                    let mut span = obs.tracer.span(
                        "gapply.worker",
                        obs.parent_span,
                        &[("worker", &w.to_string())],
                    );
                    let mut claimed = 0usize;
                    let mut out: Vec<(usize, Vec<Tuple>)> = Vec::new();
                    while let Some(range) = cursor_ref.claim() {
                        claimed += range.len();
                        for gi in range {
                            let (key, group) = &groups[gi];
                            wctx.groups.push(Arc::clone(group));
                            wctx.stats.groups_processed += 1;
                            wctx.stats.pgq_executions += 1;
                            let drained = crate::ops::drain(plan.as_mut(), &mut wctx);
                            wctx.groups.pop();
                            let rows = match drained {
                                Ok(rows) => rows,
                                Err(e) => {
                                    cursor_ref.abort();
                                    return Err(e);
                                }
                            };
                            out.push((gi, rows.iter().map(|r| key.concat(r)).collect()));
                        }
                    }
                    debug_assert!(wctx.groups.len() == outer_groups.len());
                    span.annotate("groups", &claimed.to_string());
                    Ok((out, wctx.stats, wctx.profiles))
                }
            })
            .collect();

        let results = run_scoped(workers);
        let mut slots: Vec<Option<Vec<Tuple>>> = Vec::with_capacity(group_count);
        slots.resize_with(group_count, || None);
        let mut first_err: Option<Error> = None;
        for result in results {
            match result {
                Ok((per_group, stats, profiles)) => {
                    ctx.stats.merge(&stats);
                    ctx.merge_profiles(&profiles);
                    for (gi, rows) in per_group {
                        slots[gi] = Some(rows);
                    }
                }
                // Worker order is deterministic, so so is the reported
                // error when several workers fail.
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        if let Some(e) = first_err {
            self.groups.clear();
            return Err(e);
        }
        let mut merged = Vec::new();
        for slot in slots {
            merged.extend(slot.expect("all groups executed: no worker reported an error"));
        }
        self.merged = Some(merged);
        Ok(())
    }
}

impl PhysicalOp for GApplyOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.groups.clear();
        self.group_idx = 0;
        self.pgq_open = false;
        self.merged = None;
        self.merged_pos = 0;
        self.partition(ctx)?;
        if self.parallel.parallel_groups(self.groups.len()) {
            self.execute_parallel(ctx)?;
        }
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        if let Some(buffer) = &self.merged {
            return Ok(chunk(buffer, &mut self.merged_pos, ctx.batch_size)
                .map(|rows| TupleBatch::new(self.schema.clone(), rows)));
        }
        loop {
            if self.pgq_open {
                match self.pgq.next_batch(ctx)? {
                    Some(batch) => {
                        let key = &self.groups[self.group_idx].0;
                        let rows = batch.rows().iter().map(|row| key.concat(row)).collect();
                        return Ok(Some(TupleBatch::new(self.schema.clone(), rows)));
                    }
                    None => {
                        self.pgq.close(ctx)?;
                        ctx.groups.pop();
                        self.pgq_open = false;
                        self.group_idx += 1;
                    }
                }
            }
            let Some((_, group)) = self.groups.get(self.group_idx) else {
                return Ok(None);
            };
            ctx.groups.push(Arc::clone(group));
            ctx.stats.groups_processed += 1;
            ctx.stats.pgq_executions += 1;
            if let Err(e) = self.pgq.open(ctx) {
                ctx.groups.pop();
                return Err(e);
            }
            self.pgq_open = true;
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        if self.pgq_open {
            self.pgq.close(ctx)?;
            ctx.groups.pop();
            self.pgq_open = false;
        }
        self.groups.clear();
        self.group_idx = 0;
        self.merged = None;
        self.merged_pos = 0;
        Ok(())
    }

    fn clone_op(&self) -> BoxedOp {
        Box::new(GApplyOp::with_parallel(
            self.input.clone_op(),
            self.group_cols.clone(),
            self.pgq.clone_op(),
            self.strategy,
            self.parallel,
        ))
    }
}

fn key_of(row: &Tuple, cols: &[usize]) -> Vec<Value> {
    cols.iter().map(|&c| row.value(c).clone()).collect()
}

/// Hash-partition rows into (key, group) pairs in first-seen key order.
fn hash_partition(rows: Vec<Tuple>, cols: &[usize]) -> Vec<(Vec<Value>, Vec<Tuple>)> {
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut order: Vec<(Vec<Value>, Vec<Tuple>)> = Vec::new();
    for row in rows {
        let key = key_of(&row, cols);
        // Probe with a borrowed lookup first: the common case (the group
        // already exists) must not clone the key vector again.
        match index.get(&key) {
            Some(&slot) => order[slot].1.push(row),
            None => {
                index.insert(key.clone(), order.len());
                order.push((key, vec![row]));
            }
        }
    }
    order
}

/// Chunked hash partitioning: each worker builds first-seen groups over
/// a contiguous slice of the input, and the chunk results are merged *in
/// chunk order* — the first occurrence of a key in the concatenation of
/// chunks is its first occurrence in the original input, so the global
/// first-seen group order is reproduced exactly.
fn hash_partition_parallel(
    rows: Vec<Tuple>,
    cols: &[usize],
    workers: usize,
) -> Result<Vec<(Vec<Value>, Vec<Tuple>)>> {
    let chunks = split_owned(rows, workers);
    let jobs: Vec<_> =
        chunks.into_iter().map(|chunk| move || Ok(hash_partition(chunk, cols))).collect();
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut order: Vec<(Vec<Value>, Vec<Tuple>)> = Vec::new();
    for result in run_scoped(jobs) {
        for (key, rows) in result? {
            match index.get(&key) {
                Some(&slot) => order[slot].1.extend(rows),
                None => {
                    index.insert(key.clone(), order.len());
                    order.push((key, rows));
                }
            }
        }
    }
    Ok(order)
}

fn cmp_on(a: &Tuple, b: &Tuple, cols: &[usize]) -> std::cmp::Ordering {
    for &c in cols {
        let ord = a.value(c).total_cmp(b.value(c));
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Stable in-place sort by the grouping columns.
fn sort_rows(mut rows: Vec<Tuple>, cols: &[usize]) -> Vec<Tuple> {
    rows.sort_by(|a, b| cmp_on(a, b, cols));
    rows
}

/// Chunked sort: stable-sort contiguous chunks in parallel, then k-way
/// merge the runs. Ties across runs resolve to the earliest run (and
/// chunk sorts are stable within a run), so the merged order equals a
/// global stable sort of the original input.
fn sort_rows_parallel(rows: Vec<Tuple>, cols: &[usize], workers: usize) -> Result<Vec<Tuple>> {
    let chunks = split_owned(rows, workers);
    let jobs: Vec<_> = chunks.into_iter().map(|chunk| move || Ok(sort_rows(chunk, cols))).collect();
    let mut runs: Vec<Vec<Tuple>> = Vec::new();
    for result in run_scoped(jobs) {
        runs.push(result?);
    }
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<Tuple>> = runs.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<Tuple>> = iters.iter_mut().map(Iterator::next).collect();
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for (i, head) in heads.iter().enumerate() {
            let Some(candidate) = head else { continue };
            best = match best {
                // Strict less-than keeps the earliest run on ties.
                Some(b)
                    if cmp_on(candidate, heads[b].as_ref().expect("best is live"), cols)
                        == std::cmp::Ordering::Less =>
                {
                    Some(i)
                }
                Some(b) => Some(b),
                None => Some(i),
            };
        }
        let Some(b) = best else { break };
        out.push(heads[b].take().expect("best is live"));
        heads[b] = iters[b].next();
    }
    Ok(out)
}

/// Linear boundary scan over key-sorted rows → (key, group) pairs in key
/// order.
fn cluster_sorted(rows: Vec<Tuple>, cols: &[usize]) -> Vec<(Vec<Value>, Vec<Tuple>)> {
    let mut order: Vec<(Vec<Value>, Vec<Tuple>)> = Vec::new();
    for row in rows {
        let key = key_of(&row, cols);
        match order.last_mut() {
            Some((last_key, group)) if *last_key == key => group.push(row),
            _ => order.push((key, vec![row])),
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::agg::ScalarAggregate;
    use crate::ops::drain;
    use crate::ops::scan::GroupScan;
    use crate::test_support::{ctx_with, values_op2, values_op2_schema};
    use xmlpub_common::row;
    use xmlpub_expr::{AggExpr, Expr};

    /// Per-group plan: avg of column 1 over the bound group.
    fn avg_pgq() -> BoxedOp {
        Box::new(ScalarAggregate::new(
            Box::new(GroupScan::new(values_op2_schema())),
            vec![AggExpr::avg(Expr::col(1), "a")],
        ))
    }

    fn input_rows() -> Vec<Tuple> {
        vec![row![2, 10.0], row![1, 1.0], row![2, 30.0], row![1, 3.0]]
    }

    #[test]
    fn hash_partitioning_first_seen_order() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut g =
            GApplyOp::new(values_op2(input_rows()), vec![0], avg_pgq(), PartitionStrategy::Hash);
        let rows = drain(&mut g, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![2, 20.0], row![1, 2.0]]);
        assert_eq!(ctx.stats.groups_processed, 2);
        assert_eq!(ctx.stats.pgq_executions, 2);
        assert_eq!(ctx.stats.rows_hashed, 4);
    }

    #[test]
    fn sort_partitioning_clusters_by_key() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut g =
            GApplyOp::new(values_op2(input_rows()), vec![0], avg_pgq(), PartitionStrategy::Sort);
        let rows = drain(&mut g, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![1, 2.0], row![2, 20.0]]);
        assert_eq!(ctx.stats.rows_sorted, 4);
    }

    #[test]
    fn group_binding_is_popped_after_each_group() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut g =
            GApplyOp::new(values_op2(input_rows()), vec![0], avg_pgq(), PartitionStrategy::Hash);
        drain(&mut g, &mut ctx).unwrap();
        assert!(ctx.groups.is_empty());
    }

    #[test]
    fn multi_column_grouping() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let rows = vec![row![1, 1.0], row![1, 1.0], row![1, 2.0]];
        let mut g = GApplyOp::new(
            values_op2(rows),
            vec![0, 1],
            Box::new(ScalarAggregate::new(
                Box::new(GroupScan::new(values_op2_schema())),
                vec![AggExpr::count_star("c")],
            )),
            PartitionStrategy::Sort,
        );
        let out = drain(&mut g, &mut ctx).unwrap();
        assert_eq!(out, vec![row![1, 1.0, 2], row![1, 2.0, 1]]);
    }

    #[test]
    fn empty_input_produces_no_groups() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut g = GApplyOp::new(values_op2(vec![]), vec![0], avg_pgq(), PartitionStrategy::Hash);
        assert!(drain(&mut g, &mut ctx).unwrap().is_empty());
        assert_eq!(ctx.stats.groups_processed, 0);
    }

    #[test]
    fn reopen_reprocesses() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut g =
            GApplyOp::new(values_op2(input_rows()), vec![0], avg_pgq(), PartitionStrategy::Sort);
        let a = drain(&mut g, &mut ctx).unwrap();
        let b = drain(&mut g, &mut ctx).unwrap();
        assert_eq!(a, b);
    }

    fn parallel(dop: usize) -> ParallelConfig {
        // Partition threshold shrunk so the ~2000-row inputs these tests
        // use genuinely run the chunked partition phase across threads.
        ParallelConfig { dop, partition_min_rows: 256, ..Default::default() }
    }

    #[test]
    fn parallel_matches_serial_rows_and_stats() {
        let (cat, _) = ctx_with();
        for strategy in [PartitionStrategy::Hash, PartitionStrategy::Sort] {
            let mut serial_ctx = ExecContext::new(&cat);
            let mut serial = GApplyOp::new(values_op2(input_rows()), vec![0], avg_pgq(), strategy);
            let expected = drain(&mut serial, &mut serial_ctx).unwrap();
            for dop in [2, 8] {
                let mut ctx = ExecContext::new(&cat);
                let mut g = GApplyOp::with_parallel(
                    values_op2(input_rows()),
                    vec![0],
                    avg_pgq(),
                    strategy,
                    parallel(dop),
                );
                let rows = drain(&mut g, &mut ctx).unwrap();
                assert_eq!(rows, expected, "strategy {strategy:?} dop {dop}");
                assert_eq!(ctx.stats, serial_ctx.stats, "strategy {strategy:?} dop {dop}");
                assert!(ctx.groups.is_empty());
            }
        }
    }

    #[test]
    fn parallel_partition_reproduces_serial_group_order() {
        // Enough rows to clear partition_min_rows, keys interleaved so
        // chunk-order merging actually matters for first-seen order.
        let rows: Vec<Tuple> = (0..2000).map(|i| row![(i * 7) % 13, i as f64]).collect();
        let (cat, _) = ctx_with();
        for strategy in [PartitionStrategy::Hash, PartitionStrategy::Sort] {
            let mut serial_ctx = ExecContext::new(&cat);
            let mut serial = GApplyOp::new(values_op2(rows.clone()), vec![0], avg_pgq(), strategy);
            let expected = drain(&mut serial, &mut serial_ctx).unwrap();
            let mut ctx = ExecContext::new(&cat);
            let mut g = GApplyOp::with_parallel(
                values_op2(rows.clone()),
                vec![0],
                avg_pgq(),
                strategy,
                parallel(4),
            );
            let got = drain(&mut g, &mut ctx).unwrap();
            assert_eq!(got, expected, "strategy {strategy:?}");
            assert_eq!(ctx.stats, serial_ctx.stats, "strategy {strategy:?}");
        }
    }

    #[test]
    fn single_group_stays_serial() {
        // One group is below group_threshold: the parallel path must not
        // engage (merged stays None ⇒ the serial loop runs).
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut g = GApplyOp::with_parallel(
            values_op2(vec![row![1, 2.0], row![1, 4.0]]),
            vec![0],
            avg_pgq(),
            PartitionStrategy::Hash,
            parallel(4),
        );
        g.open(&mut ctx).unwrap();
        assert!(g.merged.is_none());
        let rows = crate::ops::collect_remaining(&mut g, &mut ctx).unwrap();
        g.close(&mut ctx).unwrap();
        assert_eq!(rows, vec![row![1, 3.0]]);
    }

    /// A per-group plan that panics on `next_batch` — drives the
    /// worker-failure path.
    struct PanicOp {
        schema: Schema,
    }

    impl PhysicalOp for PanicOp {
        fn schema(&self) -> &Schema {
            &self.schema
        }
        fn open(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
            Ok(())
        }
        fn next_batch(&mut self, _ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
            panic!("pgq blew up mid-group")
        }
        fn close(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
            Ok(())
        }
        fn clone_op(&self) -> BoxedOp {
            Box::new(PanicOp { schema: self.schema.clone() })
        }
    }

    /// A per-group plan that fails with a plain `Err` on open.
    struct FailOp {
        schema: Schema,
    }

    impl PhysicalOp for FailOp {
        fn schema(&self) -> &Schema {
            &self.schema
        }
        fn open(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
            Err(Error::exec("pgq refuses to open"))
        }
        fn next_batch(&mut self, _ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
            Ok(None)
        }
        fn close(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
            Ok(())
        }
        fn clone_op(&self) -> BoxedOp {
            Box::new(FailOp { schema: self.schema.clone() })
        }
    }

    #[test]
    fn worker_panic_surfaces_as_error_and_poisons_nothing() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut g = GApplyOp::with_parallel(
            values_op2(input_rows()),
            vec![0],
            Box::new(PanicOp { schema: values_op2_schema() }),
            PartitionStrategy::Hash,
            parallel(2),
        );
        let err = g.open(&mut ctx).unwrap_err().to_string();
        assert!(err.contains("panicked") && err.contains("pgq blew up"), "{err}");
        g.close(&mut ctx).unwrap();
        // Nothing poisoned: the binding stack is clean and the same
        // context runs a healthy parallel plan afterwards.
        assert!(ctx.groups.is_empty());
        let mut healthy = GApplyOp::with_parallel(
            values_op2(input_rows()),
            vec![0],
            avg_pgq(),
            PartitionStrategy::Hash,
            parallel(2),
        );
        let rows = drain(&mut healthy, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![2, 20.0], row![1, 2.0]]);
    }

    #[test]
    fn worker_error_surfaces_as_error() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut g = GApplyOp::with_parallel(
            values_op2(input_rows()),
            vec![0],
            Box::new(FailOp { schema: values_op2_schema() }),
            PartitionStrategy::Sort,
            parallel(2),
        );
        let err = g.open(&mut ctx).unwrap_err().to_string();
        assert!(err.contains("refuses to open"), "{err}");
        g.close(&mut ctx).unwrap();
        assert!(ctx.groups.is_empty());
    }

    #[test]
    fn clone_op_produces_independent_fresh_plans() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut g =
            GApplyOp::new(values_op2(input_rows()), vec![0], avg_pgq(), PartitionStrategy::Hash);
        let expected = drain(&mut g, &mut ctx).unwrap();
        // A clone taken *after* execution is fresh (closed) and produces
        // the same result; the original still re-runs unaffected.
        let mut copy = g.clone_op();
        assert_eq!(drain(copy.as_mut(), &mut ctx).unwrap(), expected);
        assert_eq!(drain(&mut g, &mut ctx).unwrap(), expected);
    }
}
