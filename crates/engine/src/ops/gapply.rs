//! The GApply physical operator (paper §3).
//!
//! Two phases, exactly as described:
//!
//! 1. **Partition** — the input stream is materialised and partitioned on
//!    the grouping columns, by hashing (first-seen group order) or by
//!    sorting (group-key order — this variant also *guarantees* the
//!    output is clustered by the grouping columns, which the constant
//!    space tagger downstream relies on, making a separate partition/sort
//!    operator above GApply redundant per §3.1).
//! 2. **Execution** — nested-loops over the groups: each group becomes a
//!    temporary [`Relation`] bound as the relation-valued parameter
//!    `$group`; the per-group plan is (re)opened against that binding and
//!    drained; every result row is crossed with the group-key values.

use crate::context::ExecContext;
use crate::ops::{BoxedOp, PhysicalOp};
use std::collections::HashMap;
use std::sync::Arc;
use xmlpub_common::{Relation, Result, Schema, Tuple, TupleBatch, Value};

/// How the partition phase groups the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Hash partitioning; groups come out in first-seen order.
    #[default]
    Hash,
    /// Sort partitioning; groups come out in key order (output is
    /// clustered by the grouping columns).
    Sort,
}

/// The GApply operator.
pub struct GApplyOp {
    input: BoxedOp,
    group_cols: Vec<usize>,
    pgq: BoxedOp,
    strategy: PartitionStrategy,
    schema: Schema,
    input_schema: Schema,
    groups: Vec<(Tuple, Arc<Relation>)>,
    group_idx: usize,
    pgq_open: bool,
}

impl GApplyOp {
    /// Create a GApply over `input`, partitioning on `group_cols` and
    /// running `pgq` per group.
    pub fn new(
        input: BoxedOp,
        group_cols: Vec<usize>,
        pgq: BoxedOp,
        strategy: PartitionStrategy,
    ) -> Self {
        let input_schema = input.schema().clone();
        let key_fields = group_cols.iter().map(|&c| input_schema.field(c).clone()).collect();
        let schema = Schema::new(key_fields).join(pgq.schema());
        GApplyOp {
            input,
            group_cols,
            pgq,
            strategy,
            schema,
            input_schema,
            groups: Vec::new(),
            group_idx: 0,
            pgq_open: false,
        }
    }

    fn partition(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        let mut rows = Vec::new();
        self.input.open(ctx)?;
        while let Some(b) = self.input.next_batch(ctx)? {
            rows.extend(b.into_rows());
        }
        self.input.close(ctx)?;

        let key_of = |row: &Tuple, cols: &[usize]| -> Vec<Value> {
            cols.iter().map(|&c| row.value(c).clone()).collect()
        };

        let grouped: Vec<(Vec<Value>, Vec<Tuple>)> = match self.strategy {
            PartitionStrategy::Hash => {
                ctx.stats.rows_hashed += rows.len() as u64;
                let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
                let mut order: Vec<(Vec<Value>, Vec<Tuple>)> = Vec::new();
                for row in rows {
                    let key = key_of(&row, &self.group_cols);
                    let slot = *index.entry(key.clone()).or_insert_with(|| {
                        order.push((key, Vec::new()));
                        order.len() - 1
                    });
                    order[slot].1.push(row);
                }
                order
            }
            PartitionStrategy::Sort => {
                ctx.stats.rows_sorted += rows.len() as u64;
                let cols = self.group_cols.clone();
                rows.sort_by(|a, b| {
                    for &c in &cols {
                        let ord = a.value(c).total_cmp(b.value(c));
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                let mut order: Vec<(Vec<Value>, Vec<Tuple>)> = Vec::new();
                for row in rows {
                    let key = key_of(&row, &self.group_cols);
                    match order.last_mut() {
                        Some((last_key, group)) if *last_key == key => group.push(row),
                        _ => order.push((key, vec![row])),
                    }
                }
                order
            }
        };

        self.groups = grouped
            .into_iter()
            .map(|(key, rows)| {
                (
                    Tuple::new(key),
                    Arc::new(Relation::from_rows_unchecked(self.input_schema.clone(), rows)),
                )
            })
            .collect();
        Ok(())
    }
}

impl PhysicalOp for GApplyOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.groups.clear();
        self.group_idx = 0;
        self.pgq_open = false;
        self.partition(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        loop {
            if self.pgq_open {
                match self.pgq.next_batch(ctx)? {
                    Some(batch) => {
                        let key = &self.groups[self.group_idx].0;
                        let rows = batch.rows().iter().map(|row| key.concat(row)).collect();
                        return Ok(Some(TupleBatch::new(self.schema.clone(), rows)));
                    }
                    None => {
                        self.pgq.close(ctx)?;
                        ctx.groups.pop();
                        self.pgq_open = false;
                        self.group_idx += 1;
                    }
                }
            }
            let Some((_, group)) = self.groups.get(self.group_idx) else {
                return Ok(None);
            };
            ctx.groups.push(Arc::clone(group));
            ctx.stats.groups_processed += 1;
            ctx.stats.pgq_executions += 1;
            if let Err(e) = self.pgq.open(ctx) {
                ctx.groups.pop();
                return Err(e);
            }
            self.pgq_open = true;
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        if self.pgq_open {
            self.pgq.close(ctx)?;
            ctx.groups.pop();
            self.pgq_open = false;
        }
        self.groups.clear();
        self.group_idx = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::agg::ScalarAggregate;
    use crate::ops::drain;
    use crate::ops::scan::GroupScan;
    use crate::test_support::{ctx_with, values_op2, values_op2_schema};
    use xmlpub_common::row;
    use xmlpub_expr::{AggExpr, Expr};

    /// Per-group plan: avg of column 1 over the bound group.
    fn avg_pgq() -> BoxedOp {
        Box::new(ScalarAggregate::new(
            Box::new(GroupScan::new(values_op2_schema())),
            vec![AggExpr::avg(Expr::col(1), "a")],
        ))
    }

    fn input_rows() -> Vec<Tuple> {
        vec![row![2, 10.0], row![1, 1.0], row![2, 30.0], row![1, 3.0]]
    }

    #[test]
    fn hash_partitioning_first_seen_order() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut g =
            GApplyOp::new(values_op2(input_rows()), vec![0], avg_pgq(), PartitionStrategy::Hash);
        let rows = drain(&mut g, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![2, 20.0], row![1, 2.0]]);
        assert_eq!(ctx.stats.groups_processed, 2);
        assert_eq!(ctx.stats.pgq_executions, 2);
        assert_eq!(ctx.stats.rows_hashed, 4);
    }

    #[test]
    fn sort_partitioning_clusters_by_key() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut g =
            GApplyOp::new(values_op2(input_rows()), vec![0], avg_pgq(), PartitionStrategy::Sort);
        let rows = drain(&mut g, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![1, 2.0], row![2, 20.0]]);
        assert_eq!(ctx.stats.rows_sorted, 4);
    }

    #[test]
    fn group_binding_is_popped_after_each_group() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut g =
            GApplyOp::new(values_op2(input_rows()), vec![0], avg_pgq(), PartitionStrategy::Hash);
        drain(&mut g, &mut ctx).unwrap();
        assert!(ctx.groups.is_empty());
    }

    #[test]
    fn multi_column_grouping() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let rows = vec![row![1, 1.0], row![1, 1.0], row![1, 2.0]];
        let mut g = GApplyOp::new(
            values_op2(rows),
            vec![0, 1],
            Box::new(ScalarAggregate::new(
                Box::new(GroupScan::new(values_op2_schema())),
                vec![AggExpr::count_star("c")],
            )),
            PartitionStrategy::Sort,
        );
        let out = drain(&mut g, &mut ctx).unwrap();
        assert_eq!(out, vec![row![1, 1.0, 2], row![1, 2.0, 1]]);
    }

    #[test]
    fn empty_input_produces_no_groups() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut g = GApplyOp::new(values_op2(vec![]), vec![0], avg_pgq(), PartitionStrategy::Hash);
        assert!(drain(&mut g, &mut ctx).unwrap().is_empty());
        assert_eq!(ctx.stats.groups_processed, 0);
    }

    #[test]
    fn reopen_reprocesses() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut g =
            GApplyOp::new(values_op2(input_rows()), vec![0], avg_pgq(), PartitionStrategy::Sort);
        let a = drain(&mut g, &mut ctx).unwrap();
        let b = drain(&mut g, &mut ctx).unwrap();
        assert_eq!(a, b);
    }
}
