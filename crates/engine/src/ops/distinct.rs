//! Duplicate elimination.

use crate::context::ExecContext;
use crate::ops::{BoxedOp, PhysicalOp};
use std::collections::HashSet;
use xmlpub_common::{Result, Schema, Tuple, TupleBatch};

/// Hash-based DISTINCT, streaming in input order (first occurrence wins).
pub struct HashDistinct {
    input: BoxedOp,
    schema: Schema,
    seen: HashSet<Tuple>,
}

impl HashDistinct {
    /// Deduplicate `input`.
    pub fn new(input: BoxedOp) -> Self {
        let schema = input.schema().clone();
        HashDistinct { input, schema, seen: HashSet::new() }
    }
}

impl PhysicalOp for HashDistinct {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.seen.clear();
        self.input.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        while let Some(batch) = self.input.next_batch(ctx)? {
            ctx.stats.rows_hashed += batch.len() as u64;
            let fresh: Vec<Tuple> =
                batch.into_rows().into_iter().filter(|row| self.seen.insert(row.clone())).collect();
            if !fresh.is_empty() {
                return Ok(Some(TupleBatch::new(self.schema.clone(), fresh)));
            }
        }
        Ok(None)
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.seen.clear();
        self.input.close(ctx)
    }

    fn clone_op(&self) -> BoxedOp {
        Box::new(HashDistinct::new(self.input.clone_op()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::drain;
    use crate::test_support::{ctx_with, values_op2};
    use xmlpub_common::{row, Value};

    #[test]
    fn removes_duplicates_keeps_order() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let input = values_op2(vec![row![2, "b"], row![1, "a"], row![2, "b"], row![1, "x"]]);
        let mut d = HashDistinct::new(input);
        let rows = drain(&mut d, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![2, "b"], row![1, "a"], row![1, "x"]]);
    }

    #[test]
    fn nulls_deduplicate() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let input = values_op2(vec![row![Value::Null, "a"], row![Value::Null, "a"]]);
        let mut d = HashDistinct::new(input);
        assert_eq!(drain(&mut d, &mut ctx).unwrap().len(), 1);
    }

    #[test]
    fn reopen_resets_seen_set() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let input = values_op2(vec![row![1, "a"]]);
        let mut d = HashDistinct::new(input);
        assert_eq!(drain(&mut d, &mut ctx).unwrap().len(), 1);
        assert_eq!(drain(&mut d, &mut ctx).unwrap().len(), 1);
    }
}
