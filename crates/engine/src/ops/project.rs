//! Generalised projection.

use crate::context::ExecContext;
use crate::ops::{BoxedOp, PhysicalOp};
use xmlpub_algebra::ProjectItem;
use xmlpub_common::{Result, Schema, Tuple, TupleBatch};

/// Computes one output expression per item for each input row.
pub struct Project {
    input: BoxedOp,
    items: Vec<ProjectItem>,
    schema: Schema,
}

impl Project {
    /// Project `input` through `items`.
    pub fn new(input: BoxedOp, items: Vec<ProjectItem>) -> Self {
        let in_schema = input.schema();
        let schema = Schema::new(
            items.iter().enumerate().map(|(i, it)| it.output_field(in_schema, i)).collect(),
        );
        Project { input, items, schema }
    }
}

impl PhysicalOp for Project {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.input.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        match self.input.next_batch(ctx)? {
            Some(batch) => {
                // Evaluate each output expression over the whole batch,
                // then transpose the value columns back into rows.
                let mut cols: Vec<std::vec::IntoIter<_>> = Vec::with_capacity(self.items.len());
                for it in &self.items {
                    cols.push(it.expr.eval_batch(batch.rows(), &ctx.outers)?.into_iter());
                }
                let rows = (0..batch.len())
                    .map(|_| {
                        Tuple::new(
                            cols.iter_mut()
                                .map(|c| c.next().expect("column shorter than batch"))
                                .collect(),
                        )
                    })
                    .collect();
                Ok(Some(TupleBatch::new(self.schema.clone(), rows)))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.input.close(ctx)
    }

    fn clone_op(&self) -> BoxedOp {
        // Hand the clone the already-computed schema handle (Schema is
        // Arc-backed) instead of re-deriving an identical allocation.
        Box::new(Project {
            input: self.input.clone_op(),
            items: self.items.clone(),
            schema: self.schema.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::drain;
    use crate::test_support::{ctx_with, values_op};
    use xmlpub_common::{row, Value};
    use xmlpub_expr::{BinOp, Expr};

    #[test]
    fn computes_expressions() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let input = values_op(vec![row![2, 3]]);
        let mut p = Project::new(
            input,
            vec![
                ProjectItem::col(1),
                ProjectItem::named(Expr::binary(BinOp::Add, Expr::col(0), Expr::col(1)), "sum"),
                ProjectItem::named(Expr::Literal(Value::Null), "pad"),
            ],
        );
        assert_eq!(p.schema().field(1).name, "sum");
        let rows = drain(&mut p, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![3, 5, Value::Null]]);
    }
}
