//! Generalised projection.

use crate::context::ExecContext;
use crate::ops::{BoxedOp, PhysicalOp};
use crate::parallel::{run_morsels, ParallelConfig};
use xmlpub_algebra::ProjectItem;
use xmlpub_common::{Result, Schema, TupleBatch};

/// Computes one output column per item over each input batch.
/// Column-primary batches evaluate each item's expression
/// column-at-a-time and emit a column-primary batch; row-primary batches
/// stay in the row model end to end (no columnify/transpose round trip).
/// Large batches are split into row-range morsels projected on worker
/// threads; the per-morsel results are appended back in morsel order, so
/// output rows match the serial pass exactly at any degree of
/// parallelism.
pub struct Project {
    input: BoxedOp,
    items: Vec<ProjectItem>,
    schema: Schema,
    parallel: ParallelConfig,
}

impl Project {
    /// Project `input` through `items` (serial).
    pub fn new(input: BoxedOp, items: Vec<ProjectItem>) -> Self {
        Project::with_parallel(input, items, ParallelConfig::default())
    }

    /// Project `input` through `items` with explicit parallelism knobs.
    pub fn with_parallel(
        input: BoxedOp,
        items: Vec<ProjectItem>,
        parallel: ParallelConfig,
    ) -> Self {
        let in_schema = input.schema();
        let schema = Schema::new(
            items.iter().enumerate().map(|(i, it)| it.output_field(in_schema, i)).collect(),
        );
        Project { input, items, schema, parallel }
    }

    /// Evaluate every output expression over `batch`, staying in the
    /// batch's primary representation.
    fn project_batch(
        items: &[ProjectItem],
        schema: &Schema,
        batch: &TupleBatch,
        outers: &[xmlpub_common::Tuple],
    ) -> Result<TupleBatch> {
        if batch.is_columnar() {
            let cols = items
                .iter()
                .map(|it| it.expr.eval_column(batch, outers))
                .collect::<Result<Vec<_>>>()?;
            return Ok(TupleBatch::from_columns(schema.clone(), cols, batch.len()));
        }
        let vals = items
            .iter()
            .map(|it| it.expr.eval_batch(batch.rows(), outers))
            .collect::<Result<Vec<_>>>()?;
        let mut its: Vec<_> = vals.into_iter().map(Vec::into_iter).collect();
        let rows = (0..batch.len())
            .map(|_| {
                xmlpub_common::Tuple::new(
                    its.iter_mut().map(|it| it.next().expect("value per row")).collect(),
                )
            })
            .collect();
        Ok(TupleBatch::new(schema.clone(), rows))
    }
}

impl PhysicalOp for Project {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.input.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        match self.input.next_batch(ctx)? {
            Some(batch) => {
                let out = if self.parallel.parallel_morsels(batch.len()) {
                    let (items, schema) = (&self.items, &self.schema);
                    let outers = &ctx.outers;
                    let shared = &batch;
                    let per_worker = self.parallel.morsel_rows_per_worker;
                    let parts =
                        run_morsels(self.parallel.dop, per_worker, shared.len(), |range| {
                            Project::project_batch(items, schema, &shared.slice(range), outers)
                        })?;
                    let mut parts = parts.into_iter();
                    let mut merged = parts.next().expect("at least one morsel result");
                    for p in parts {
                        merged.append(p);
                    }
                    merged
                } else {
                    Project::project_batch(&self.items, &self.schema, &batch, &ctx.outers)?
                };
                Ok(Some(out))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.input.close(ctx)
    }

    fn clone_op(&self) -> BoxedOp {
        // Hand the clone the already-computed schema handle (Schema is
        // Arc-backed) instead of re-deriving an identical allocation.
        Box::new(Project {
            input: self.input.clone_op(),
            items: self.items.clone(),
            schema: self.schema.clone(),
            parallel: self.parallel,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::drain;
    use crate::test_support::{ctx_with, values_op2};
    use xmlpub_common::{row, Value};
    use xmlpub_expr::{BinOp, Expr};

    #[test]
    fn computes_expressions() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let input = values_op2(vec![row![2, 3]]);
        let mut p = Project::new(
            input,
            vec![
                ProjectItem::col(1),
                ProjectItem::named(Expr::binary(BinOp::Add, Expr::col(0), Expr::col(1)), "sum"),
                ProjectItem::named(Expr::Literal(Value::Null), "pad"),
            ],
        );
        assert_eq!(p.schema().field(1).name, "sum");
        let rows = drain(&mut p, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![3, 5, Value::Null]]);
    }

    #[test]
    fn morsel_parallel_project_matches_serial() {
        let rows: Vec<_> = (0..4000).map(|i| row![i, (i as f64) / 2.0]).collect();
        let items = vec![
            ProjectItem::named(Expr::binary(BinOp::Mul, Expr::col(0), Expr::lit(3)), "t"),
            ProjectItem::named(Expr::binary(BinOp::Add, Expr::col(1), Expr::lit(0.5)), "h"),
            ProjectItem::col(0),
        ];
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut serial = Project::new(values_op2(rows.clone()), items.clone());
        let expected = drain(&mut serial, &mut ctx).unwrap();
        for dop in [2, 4, 8] {
            // Thresholds shrunk so 4000 rows genuinely spread across
            // worker threads (defaults would run this size inline).
            let mut p = Project::with_parallel(
                values_op2(rows.clone()),
                items.clone(),
                crate::parallel::ParallelConfig {
                    morsel_min_rows: 256,
                    morsel_rows_per_worker: 256,
                    ..crate::parallel::ParallelConfig::with_dop(dop)
                },
            );
            let got = drain(&mut p, &mut ctx).unwrap();
            assert_eq!(got, expected, "dop {dop} diverged from serial");
        }
    }
}
