//! In-memory sort.

use crate::context::ExecContext;
use crate::ops::{chunk, BoxedOp, PhysicalOp};
use std::cmp::Ordering;
use xmlpub_algebra::SortKey;
use xmlpub_common::{Result, Schema, Tuple, TupleBatch, Value};

/// Materialising sort. Stable, so equal keys keep input order.
pub struct Sort {
    input: BoxedOp,
    keys: Vec<SortKey>,
    schema: Schema,
    buffer: Vec<Tuple>,
    pos: usize,
    loaded: bool,
}

impl Sort {
    /// Sort `input` by `keys` (major key first).
    pub fn new(input: BoxedOp, keys: Vec<SortKey>) -> Self {
        let schema = input.schema().clone();
        Sort { input, keys, schema, buffer: Vec::new(), pos: 0, loaded: false }
    }
}

impl PhysicalOp for Sort {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.buffer.clear();
        self.pos = 0;
        self.input.open(ctx)?;
        // Evaluate the sort keys one batch at a time (one dispatch per
        // key per batch), then sort by the per-row key vectors.
        let mut keyed: Vec<(Vec<Value>, Tuple)> = Vec::new();
        while let Some(batch) = self.input.next_batch(ctx)? {
            ctx.stats.rows_sorted += batch.len() as u64;
            let mut key_cols: Vec<std::vec::IntoIter<Value>> = Vec::with_capacity(self.keys.len());
            for k in &self.keys {
                key_cols.push(k.expr.eval_batch(batch.rows(), &ctx.outers)?.into_iter());
            }
            keyed.extend(batch.into_rows().into_iter().map(|row| {
                let kv: Vec<Value> = key_cols
                    .iter_mut()
                    .map(|c| c.next().expect("key column shorter than batch"))
                    .collect();
                (kv, row)
            }));
        }
        self.input.close(ctx)?;
        let dirs: Vec<bool> = self.keys.iter().map(|k| k.asc).collect();
        keyed.sort_by(|(a, _), (b, _)| {
            for (i, asc) in dirs.iter().enumerate() {
                let ord = a[i].total_cmp(&b[i]);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        self.buffer = keyed.into_iter().map(|(_, t)| t).collect();
        self.loaded = true;
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        debug_assert!(self.loaded, "Sort::next_batch before open");
        Ok(chunk(&self.buffer, &mut self.pos, ctx.batch_size)
            .map(|rows| TupleBatch::new(self.schema.clone(), rows)))
    }

    fn close(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
        self.buffer.clear();
        self.pos = 0;
        self.loaded = false;
        Ok(())
    }

    fn clone_op(&self) -> BoxedOp {
        Box::new(Sort::new(self.input.clone_op(), self.keys.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::drain;
    use crate::test_support::{ctx_with, values_op2};
    use xmlpub_common::row;

    #[test]
    fn sorts_ascending_and_descending() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let input = values_op2(vec![row![2, "b"], row![1, "a"], row![3, "c"]]);
        let mut s = Sort::new(input, vec![SortKey::desc(0)]);
        let rows = drain(&mut s, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![3, "c"], row![2, "b"], row![1, "a"]]);
        assert_eq!(ctx.stats.rows_sorted, 3);
    }

    #[test]
    fn multi_key_stable() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let input = values_op2(vec![row![1, "z"], row![1, "a"], row![0, "m"], row![1, "z"]]);
        let mut s = Sort::new(input, vec![SortKey::asc(0), SortKey::asc(1)]);
        let rows = drain(&mut s, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![0, "m"], row![1, "a"], row![1, "z"], row![1, "z"]]);
    }

    #[test]
    fn nulls_sort_first() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let input = values_op2(vec![row![1, "a"], row![xmlpub_common::Value::Null, "n"]]);
        let mut s = Sort::new(input, vec![SortKey::asc(0)]);
        let rows = drain(&mut s, &mut ctx).unwrap();
        assert!(rows[0].value(0).is_null());
    }
}
