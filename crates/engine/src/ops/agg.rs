//! Aggregation: grouped (hash) and scalar.

use crate::context::ExecContext;
use crate::ops::{chunk, BoxedOp, PhysicalOp};
use crate::parallel::{run_scoped, ParallelConfig};
use std::collections::HashMap;
use std::hash::BuildHasher;
use xmlpub_common::{Field, Result, Schema, Tuple, TupleBatch, Value};
use xmlpub_expr::{Accumulator, AggExpr};

/// Hash-based GROUP BY: one output row per distinct key combination.
/// NULL keys group together (SQL GROUP BY semantics). Blocking.
///
/// Under `dop > 1` the build goes parallel by hash-*partitioning* the
/// drained input on the group key: every row of a group lands in the
/// same partition in arrival order, so each worker's accumulators fold
/// values in exactly the serial sequence (bit-identical float sums — no
/// cross-worker `Accumulator` merge exists or is needed). Each group
/// remembers the global index of its first row; sorting the merged
/// groups by that index reproduces the serial first-seen output order.
pub struct HashAggregate {
    input: BoxedOp,
    keys: Vec<usize>,
    aggs: Vec<AggExpr>,
    schema: Schema,
    /// Materialised results, in first-seen key order (deterministic).
    results: Vec<Tuple>,
    pos: usize,
    parallel: ParallelConfig,
}

impl HashAggregate {
    /// Group `input` by `keys` computing `aggs` (serial).
    pub fn new(input: BoxedOp, keys: Vec<usize>, aggs: Vec<AggExpr>) -> Self {
        HashAggregate::with_parallel(input, keys, aggs, ParallelConfig::default())
    }

    /// Group `input` by `keys` computing `aggs` with explicit
    /// parallelism knobs.
    pub fn with_parallel(
        input: BoxedOp,
        keys: Vec<usize>,
        aggs: Vec<AggExpr>,
        parallel: ParallelConfig,
    ) -> Self {
        let in_schema = input.schema();
        let mut fields: Vec<Field> = keys.iter().map(|&k| in_schema.field(k).clone()).collect();
        fields
            .extend(aggs.iter().map(|a| Field::new(a.output_name.clone(), a.data_type(in_schema))));
        HashAggregate {
            input,
            keys,
            aggs,
            schema: Schema::new(fields),
            results: Vec::new(),
            pos: 0,
            parallel,
        }
    }

    /// Fold `rows` into per-group accumulators, in row order, against a
    /// persistent key index (`index`/`order` survive across calls so the
    /// serial path can stream batch by batch). `first_global` maps a
    /// local row index to the row's global arrival index, recorded when
    /// its group is first seen.
    fn fold_rows(
        keys: &[usize],
        aggs: &[AggExpr],
        rows: &[Tuple],
        first_global: impl Fn(usize) -> usize,
        outers: &[Tuple],
        index: &mut HashMap<Vec<Value>, usize>,
        order: &mut Vec<(Vec<Value>, Vec<Accumulator>, usize)>,
    ) -> Result<()> {
        // Evaluate every aggregate argument over all rows up front (one
        // dispatch per aggregate), then route per row.
        let arg_cols: Vec<Option<Vec<Value>>> = aggs
            .iter()
            .map(|a| a.arg.as_ref().map(|e| e.eval_batch(rows, outers)).transpose())
            .collect::<Result<_>>()?;
        for (ri, row) in rows.iter().enumerate() {
            let key: Vec<Value> = keys.iter().map(|&k| row.value(k).clone()).collect();
            let slot = *index.entry(key.clone()).or_insert_with(|| {
                order.push((key, aggs.iter().map(|a| a.accumulator()).collect(), first_global(ri)));
                order.len() - 1
            });
            let accs = &mut order[slot].1;
            for (ai, acc) in accs.iter_mut().enumerate() {
                acc.update(match &arg_cols[ai] {
                    Some(col) => col[ri].clone(),
                    None => Value::Int(1), // count(*) ignores the value
                })?;
            }
        }
        Ok(())
    }

    /// Turn folded groups (already in output order) into result tuples.
    fn finish_groups(order: Vec<(Vec<Value>, Vec<Accumulator>, usize)>) -> Vec<Tuple> {
        order
            .into_iter()
            .map(|(key, accs, _)| {
                let mut vals = key;
                vals.extend(accs.iter().map(Accumulator::finish));
                Tuple::new(vals)
            })
            .collect()
    }
}

impl PhysicalOp for HashAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.results.clear();
        self.pos = 0;
        self.input.open(ctx)?;
        if self.parallel.dop > 1 {
            // Drain, then partition across workers (fall back to one
            // serial fold when the input is too small to be worth it).
            let mut rows: Vec<Tuple> = Vec::new();
            while let Some(batch) = self.input.next_batch(ctx)? {
                ctx.stats.rows_hashed += batch.len() as u64;
                rows.extend(batch.into_rows());
            }
            self.input.close(ctx)?;
            if self.parallel.parallel_partition(rows.len()) {
                // Scatter rows into dop partitions by key hash,
                // preserving arrival order within each partition (hence
                // within each group — a group never spans partitions).
                let nparts = self.parallel.dop;
                let hasher = std::collections::hash_map::RandomState::new();
                let mut parts: Vec<(Vec<usize>, Vec<Tuple>)> =
                    (0..nparts).map(|_| (Vec::new(), Vec::new())).collect();
                for (gi, row) in rows.into_iter().enumerate() {
                    let key: Vec<&Value> = self.keys.iter().map(|&k| row.value(k)).collect();
                    let p = (hasher.hash_one(&key) as usize) % nparts;
                    parts[p].0.push(gi);
                    parts[p].1.push(row);
                }
                let (keys, aggs, outers) = (&self.keys, &self.aggs, &ctx.outers);
                let workers: Vec<_> = parts
                    .into_iter()
                    .map(|(idxs, rows)| {
                        move || {
                            let mut index = HashMap::new();
                            let mut order = Vec::new();
                            HashAggregate::fold_rows(
                                keys,
                                aggs,
                                &rows,
                                |ri| idxs[ri],
                                outers,
                                &mut index,
                                &mut order,
                            )?;
                            Ok(order)
                        }
                    })
                    .collect();
                let mut merged: Vec<(Vec<Value>, Vec<Accumulator>, usize)> = Vec::new();
                for result in run_scoped(workers) {
                    merged.extend(result?);
                }
                // The serial pass emits groups in global first-seen order.
                merged.sort_by_key(|(_, _, first)| *first);
                self.results = HashAggregate::finish_groups(merged);
            } else {
                let mut index = HashMap::new();
                let mut order = Vec::new();
                HashAggregate::fold_rows(
                    &self.keys,
                    &self.aggs,
                    &rows,
                    |ri| ri,
                    &ctx.outers,
                    &mut index,
                    &mut order,
                )?;
                self.results = HashAggregate::finish_groups(order);
            }
        } else {
            // Serial: stream batch by batch against persistent state.
            let mut index = HashMap::new();
            let mut order = Vec::new();
            let mut base = 0usize;
            while let Some(batch) = self.input.next_batch(ctx)? {
                ctx.stats.rows_hashed += batch.len() as u64;
                let rows = batch.into_rows();
                HashAggregate::fold_rows(
                    &self.keys,
                    &self.aggs,
                    &rows,
                    |ri| base + ri,
                    &ctx.outers,
                    &mut index,
                    &mut order,
                )?;
                base += rows.len();
            }
            self.input.close(ctx)?;
            self.results = HashAggregate::finish_groups(order);
        }
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        Ok(chunk(&self.results, &mut self.pos, ctx.batch_size)
            .map(|rows| TupleBatch::new(self.schema.clone(), rows)))
    }

    fn close(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
        self.results.clear();
        self.pos = 0;
        Ok(())
    }

    fn clone_op(&self) -> BoxedOp {
        Box::new(HashAggregate::with_parallel(
            self.input.clone_op(),
            self.keys.clone(),
            self.aggs.clone(),
            self.parallel,
        ))
    }
}

/// The paper's `aggregate` operator: aggregates the whole input into
/// exactly one row — including on empty input, which is the behaviour the
/// emptyOnEmpty analysis (§4.1) revolves around.
pub struct ScalarAggregate {
    input: BoxedOp,
    aggs: Vec<AggExpr>,
    schema: Schema,
    result: Option<Tuple>,
    emitted: bool,
}

impl ScalarAggregate {
    /// Aggregate `input` with `aggs`.
    pub fn new(input: BoxedOp, aggs: Vec<AggExpr>) -> Self {
        let in_schema = input.schema();
        let schema = Schema::new(
            aggs.iter()
                .map(|a| Field::new(a.output_name.clone(), a.data_type(in_schema)))
                .collect(),
        );
        ScalarAggregate { input, aggs, schema, result: None, emitted: false }
    }
}

impl PhysicalOp for ScalarAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.emitted = false;
        self.input.open(ctx)?;
        let mut accs: Vec<Accumulator> = self.aggs.iter().map(|a| a.accumulator()).collect();
        while let Some(batch) = self.input.next_batch(ctx)? {
            for (agg, acc) in self.aggs.iter().zip(accs.iter_mut()) {
                agg.update_batch(acc, batch.rows(), &ctx.outers)?;
            }
        }
        self.input.close(ctx)?;
        self.result = Some(Tuple::new(accs.iter().map(Accumulator::finish).collect()));
        Ok(())
    }

    fn next_batch(&mut self, _ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        if self.emitted {
            return Ok(None);
        }
        self.emitted = true;
        Ok(self.result.clone().map(|row| TupleBatch::new(self.schema.clone(), vec![row])))
    }

    fn close(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
        self.result = None;
        self.emitted = false;
        Ok(())
    }

    fn clone_op(&self) -> BoxedOp {
        Box::new(ScalarAggregate::new(self.input.clone_op(), self.aggs.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::drain;
    use crate::test_support::{ctx_with, values_op2};
    use xmlpub_common::row;
    use xmlpub_expr::Expr;

    #[test]
    fn groups_and_aggregates() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let input = values_op2(vec![row![1, 10.0], row![2, 20.0], row![1, 30.0]]);
        let mut g = HashAggregate::new(
            input,
            vec![0],
            vec![AggExpr::avg(Expr::col(1), "a"), AggExpr::count_star("c")],
        );
        let rows = drain(&mut g, &mut ctx).unwrap();
        // First-seen key order is deterministic.
        assert_eq!(rows, vec![row![1, 20.0, 2], row![2, 20.0, 1]]);
        assert_eq!(g.schema().field(1).name, "a");
    }

    #[test]
    fn null_keys_group_together() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let n = xmlpub_common::Value::Null;
        let input = values_op2(vec![row![n.clone(), 1.0], row![n.clone(), 2.0]]);
        let mut g = HashAggregate::new(input, vec![0], vec![AggExpr::count_star("c")]);
        let rows = drain(&mut g, &mut ctx).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0], row![n, 2]);
    }

    #[test]
    fn empty_input_groupby_vs_scalar() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        // GROUP BY over empty input: no rows (emptyOnEmpty = true).
        let mut g = HashAggregate::new(values_op2(vec![]), vec![0], vec![AggExpr::count_star("c")]);
        assert!(drain(&mut g, &mut ctx).unwrap().is_empty());
        // Scalar aggregate over empty input: one row (emptyOnEmpty = false).
        let mut s = ScalarAggregate::new(
            values_op2(vec![]),
            vec![AggExpr::count_star("c"), AggExpr::avg(Expr::col(1), "a")],
        );
        let rows = drain(&mut s, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![0, xmlpub_common::Value::Null]]);
    }

    #[test]
    fn partitioned_parallel_aggregate_matches_serial_bit_for_bit() {
        // Float sums are order-sensitive; the partitioned build must fold
        // each group's values in exactly the serial arrival order, and
        // emit groups in the serial first-seen order.
        let rows: Vec<_> = (0..3000).map(|i| row![i % 37, (i as f64) * 0.1 + 0.7]).collect();
        let aggs = || {
            vec![
                AggExpr::sum(Expr::col(1), "s"),
                AggExpr::avg(Expr::col(1), "a"),
                AggExpr::count_star("c"),
            ]
        };
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut serial = HashAggregate::new(values_op2(rows.clone()), vec![0], aggs());
        let expected = drain(&mut serial, &mut ctx).unwrap();
        for dop in [2, 4, 8] {
            let mut g = HashAggregate::with_parallel(
                values_op2(rows.clone()),
                vec![0],
                aggs(),
                // Threshold shrunk so the 3000-row fold genuinely
                // partitions across worker threads.
                crate::parallel::ParallelConfig {
                    partition_min_rows: 256,
                    ..crate::parallel::ParallelConfig::with_dop(dop)
                },
            );
            let got = drain(&mut g, &mut ctx).unwrap();
            assert_eq!(got, expected, "dop {dop} diverged from serial");
        }
    }

    #[test]
    fn scalar_aggregate_reopens() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut s = ScalarAggregate::new(
            values_op2(vec![row![1, 4.0], row![2, 6.0]]),
            vec![AggExpr::avg(Expr::col(1), "a")],
        );
        assert_eq!(drain(&mut s, &mut ctx).unwrap(), vec![row![5.0]]);
        assert_eq!(drain(&mut s, &mut ctx).unwrap(), vec![row![5.0]]);
    }
}
