//! Aggregation: grouped (hash) and scalar.

use crate::context::ExecContext;
use crate::ops::{chunk, BoxedOp, PhysicalOp};
use std::collections::HashMap;
use xmlpub_common::{Field, Result, Schema, Tuple, TupleBatch, Value};
use xmlpub_expr::{Accumulator, AggExpr};

/// Hash-based GROUP BY: one output row per distinct key combination.
/// NULL keys group together (SQL GROUP BY semantics). Blocking.
pub struct HashAggregate {
    input: BoxedOp,
    keys: Vec<usize>,
    aggs: Vec<AggExpr>,
    schema: Schema,
    /// Materialised results, in first-seen key order (deterministic).
    results: Vec<Tuple>,
    pos: usize,
}

impl HashAggregate {
    /// Group `input` by `keys` computing `aggs`.
    pub fn new(input: BoxedOp, keys: Vec<usize>, aggs: Vec<AggExpr>) -> Self {
        let in_schema = input.schema();
        let mut fields: Vec<Field> = keys.iter().map(|&k| in_schema.field(k).clone()).collect();
        fields
            .extend(aggs.iter().map(|a| Field::new(a.output_name.clone(), a.data_type(in_schema))));
        HashAggregate {
            input,
            keys,
            aggs,
            schema: Schema::new(fields),
            results: Vec::new(),
            pos: 0,
        }
    }
}

impl PhysicalOp for HashAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.results.clear();
        self.pos = 0;
        self.input.open(ctx)?;
        // Key → index into `order`; accumulators live alongside the key.
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut order: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
        while let Some(batch) = self.input.next_batch(ctx)? {
            ctx.stats.rows_hashed += batch.len() as u64;
            // Evaluate every aggregate argument over the whole batch up
            // front (one dispatch per aggregate), then route per row.
            let arg_cols: Vec<Option<Vec<Value>>> = self
                .aggs
                .iter()
                .map(|a| {
                    a.arg.as_ref().map(|e| e.eval_batch(batch.rows(), &ctx.outers)).transpose()
                })
                .collect::<Result<_>>()?;
            for (ri, row) in batch.rows().iter().enumerate() {
                let key: Vec<Value> = self.keys.iter().map(|&k| row.value(k).clone()).collect();
                let slot = *index.entry(key.clone()).or_insert_with(|| {
                    order.push((key, self.aggs.iter().map(|a| a.accumulator()).collect()));
                    order.len() - 1
                });
                let accs = &mut order[slot].1;
                for (ai, acc) in accs.iter_mut().enumerate() {
                    acc.update(match &arg_cols[ai] {
                        Some(col) => col[ri].clone(),
                        None => Value::Int(1), // count(*) ignores the value
                    })?;
                }
            }
        }
        self.input.close(ctx)?;
        self.results = order
            .into_iter()
            .map(|(key, accs)| {
                let mut vals = key;
                vals.extend(accs.iter().map(Accumulator::finish));
                Tuple::new(vals)
            })
            .collect();
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        Ok(chunk(&self.results, &mut self.pos, ctx.batch_size)
            .map(|rows| TupleBatch::new(self.schema.clone(), rows)))
    }

    fn close(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
        self.results.clear();
        self.pos = 0;
        Ok(())
    }

    fn clone_op(&self) -> BoxedOp {
        Box::new(HashAggregate::new(self.input.clone_op(), self.keys.clone(), self.aggs.clone()))
    }
}

/// The paper's `aggregate` operator: aggregates the whole input into
/// exactly one row — including on empty input, which is the behaviour the
/// emptyOnEmpty analysis (§4.1) revolves around.
pub struct ScalarAggregate {
    input: BoxedOp,
    aggs: Vec<AggExpr>,
    schema: Schema,
    result: Option<Tuple>,
    emitted: bool,
}

impl ScalarAggregate {
    /// Aggregate `input` with `aggs`.
    pub fn new(input: BoxedOp, aggs: Vec<AggExpr>) -> Self {
        let in_schema = input.schema();
        let schema = Schema::new(
            aggs.iter()
                .map(|a| Field::new(a.output_name.clone(), a.data_type(in_schema)))
                .collect(),
        );
        ScalarAggregate { input, aggs, schema, result: None, emitted: false }
    }
}

impl PhysicalOp for ScalarAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.emitted = false;
        self.input.open(ctx)?;
        let mut accs: Vec<Accumulator> = self.aggs.iter().map(|a| a.accumulator()).collect();
        while let Some(batch) = self.input.next_batch(ctx)? {
            for (agg, acc) in self.aggs.iter().zip(accs.iter_mut()) {
                agg.update_batch(acc, batch.rows(), &ctx.outers)?;
            }
        }
        self.input.close(ctx)?;
        self.result = Some(Tuple::new(accs.iter().map(Accumulator::finish).collect()));
        Ok(())
    }

    fn next_batch(&mut self, _ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        if self.emitted {
            return Ok(None);
        }
        self.emitted = true;
        Ok(self.result.clone().map(|row| TupleBatch::new(self.schema.clone(), vec![row])))
    }

    fn close(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
        self.result = None;
        self.emitted = false;
        Ok(())
    }

    fn clone_op(&self) -> BoxedOp {
        Box::new(ScalarAggregate::new(self.input.clone_op(), self.aggs.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::drain;
    use crate::test_support::{ctx_with, values_op2};
    use xmlpub_common::row;
    use xmlpub_expr::Expr;

    #[test]
    fn groups_and_aggregates() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let input = values_op2(vec![row![1, 10.0], row![2, 20.0], row![1, 30.0]]);
        let mut g = HashAggregate::new(
            input,
            vec![0],
            vec![AggExpr::avg(Expr::col(1), "a"), AggExpr::count_star("c")],
        );
        let rows = drain(&mut g, &mut ctx).unwrap();
        // First-seen key order is deterministic.
        assert_eq!(rows, vec![row![1, 20.0, 2], row![2, 20.0, 1]]);
        assert_eq!(g.schema().field(1).name, "a");
    }

    #[test]
    fn null_keys_group_together() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let n = xmlpub_common::Value::Null;
        let input = values_op2(vec![row![n.clone(), 1.0], row![n.clone(), 2.0]]);
        let mut g = HashAggregate::new(input, vec![0], vec![AggExpr::count_star("c")]);
        let rows = drain(&mut g, &mut ctx).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0], row![n, 2]);
    }

    #[test]
    fn empty_input_groupby_vs_scalar() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        // GROUP BY over empty input: no rows (emptyOnEmpty = true).
        let mut g = HashAggregate::new(values_op2(vec![]), vec![0], vec![AggExpr::count_star("c")]);
        assert!(drain(&mut g, &mut ctx).unwrap().is_empty());
        // Scalar aggregate over empty input: one row (emptyOnEmpty = false).
        let mut s = ScalarAggregate::new(
            values_op2(vec![]),
            vec![AggExpr::count_star("c"), AggExpr::avg(Expr::col(1), "a")],
        );
        let rows = drain(&mut s, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![0, xmlpub_common::Value::Null]]);
    }

    #[test]
    fn scalar_aggregate_reopens() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut s = ScalarAggregate::new(
            values_op2(vec![row![1, 4.0], row![2, 6.0]]),
            vec![AggExpr::avg(Expr::col(1), "a")],
        );
        assert_eq!(drain(&mut s, &mut ctx).unwrap(), vec![row![5.0]]);
        assert_eq!(drain(&mut s, &mut ctx).unwrap(), vec![row![5.0]]);
    }
}
