//! Bag union.

use crate::context::ExecContext;
use crate::ops::{BoxedOp, PhysicalOp};
use xmlpub_common::{Result, Schema, TupleBatch};

/// UNION ALL over n branches, streamed in branch order.
pub struct UnionAll {
    inputs: Vec<BoxedOp>,
    schema: Schema,
    current: usize,
}

impl UnionAll {
    /// Union the given branches. Schemas must be union-compatible; the
    /// output schema unifies the branch types (NULL padding widens to the
    /// sibling's type, as sorted outer unions rely on).
    pub fn new(inputs: Vec<BoxedOp>) -> Self {
        assert!(!inputs.is_empty(), "UnionAll needs at least one branch");
        let mut schema = inputs[0].schema().without_qualifiers();
        for b in inputs.iter().skip(1) {
            if let Ok(u) = schema.union_schema(b.schema()) {
                schema = u;
            }
        }
        UnionAll { inputs, schema, current: 0 }
    }
}

impl PhysicalOp for UnionAll {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.current = 0;
        // Branches are opened lazily, one at a time, so only one branch
        // holds buffers at once (matters when branches contain sorts).
        if let Some(first) = self.inputs.first_mut() {
            first.open(ctx)?;
        }
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        while self.current < self.inputs.len() {
            if let Some(batch) = self.inputs[self.current].next_batch(ctx)? {
                // Re-wrap under the unified schema (the branch's own
                // schema may be narrower-typed).
                return Ok(Some(TupleBatch::new(self.schema.clone(), batch.into_rows())));
            }
            self.inputs[self.current].close(ctx)?;
            self.current += 1;
            if let Some(nxt) = self.inputs.get_mut(self.current) {
                nxt.open(ctx)?;
            }
        }
        Ok(None)
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        if self.current < self.inputs.len() {
            self.inputs[self.current].close(ctx)?;
        }
        self.current = self.inputs.len();
        Ok(())
    }

    fn clone_op(&self) -> BoxedOp {
        Box::new(UnionAll::new(self.inputs.iter().map(|b| b.clone_op()).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::drain;
    use crate::test_support::{ctx_with, values_op2};
    use xmlpub_common::row;

    #[test]
    fn concatenates_branches_in_order() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut u = UnionAll::new(vec![
            values_op2(vec![row![1, "a"]]),
            values_op2(vec![]),
            values_op2(vec![row![2, "b"], row![3, "c"]]),
        ]);
        let rows = drain(&mut u, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![1, "a"], row![2, "b"], row![3, "c"]]);
    }

    #[test]
    fn reopens() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut u =
            UnionAll::new(vec![values_op2(vec![row![1, "a"]]), values_op2(vec![row![2, "b"]])]);
        assert_eq!(drain(&mut u, &mut ctx).unwrap().len(), 2);
        assert_eq!(drain(&mut u, &mut ctx).unwrap().len(), 2);
    }
}
