//! Leaf scans: base tables and the `$group` temporary relation.
//!
//! A [`TableScan`] forces the catalog relation's columnar view at open
//! (built once, cached for the lifetime of the catalog entry) and then
//! emits range-slices of the column vectors — string columns share the
//! table's dictionary, so no per-row clone or transpose happens on the
//! scan path. A [`GroupScan`] reads whatever representation its transient
//! per-group relation already has: `GApply` groups are row-primary, and
//! columnifying a bag that is consumed exactly once would cost more than
//! it saves, so those batches are row chunks.

use crate::context::ExecContext;
use crate::ops::{BoxedOp, PhysicalOp};
use std::sync::Arc;
use xmlpub_common::{Relation, Result, Schema, TupleBatch};

/// Cut the next `batch_size`-row slice out of `data`, advancing `pos`;
/// `None` once exhausted. Preserves the relation's representation:
/// column vectors are range-sliced, row storage is chunk-cloned.
fn slice_batch(
    data: &Relation,
    schema: &Schema,
    pos: &mut usize,
    batch_size: usize,
) -> Option<TupleBatch> {
    let len = data.len();
    if *pos >= len {
        return None;
    }
    let end = (*pos + batch_size.max(1)).min(len);
    let range = *pos..end;
    *pos = end;
    Some(match data.columnar() {
        Some(_) => {
            let rows = range.len();
            TupleBatch::from_columns(schema.clone(), data.slice_columns(range), rows)
        }
        None => TupleBatch::new(schema.clone(), data.rows()[range].to_vec()),
    })
}

/// Full scan of a catalog table.
pub struct TableScan {
    table: String,
    schema: Schema,
    data: Option<Arc<Relation>>,
    pos: usize,
}

impl TableScan {
    /// Scan `table`; `schema` is the binder-qualified schema.
    pub fn new(table: impl Into<String>, schema: Schema) -> Self {
        TableScan { table: table.into(), schema, data: None, pos: 0 }
    }
}

impl PhysicalOp for TableScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        let data = ctx.catalog.data(&self.table)?;
        // Base tables are long-lived: force the columnar view once (it
        // caches inside the catalog entry) so every batch below is a
        // dictionary-sharing column slice.
        let _ = data.columns();
        self.data = Some(data);
        self.pos = 0;
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        let data = self.data.as_ref().expect("TableScan::next_batch before open");
        match slice_batch(data, &self.schema, &mut self.pos, ctx.batch_size) {
            Some(batch) => {
                ctx.stats.rows_scanned += batch.len() as u64;
                Ok(Some(batch))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
        self.data = None;
        self.pos = 0;
        Ok(())
    }

    fn clone_op(&self) -> BoxedOp {
        Box::new(TableScan::new(self.table.clone(), self.schema.clone()))
    }
}

/// Scan of the relation-valued parameter bound by the nearest enclosing
/// `GApply` — the paper's "leaf scan operator [that] understands this to
/// be a temporary relation and reads from it".
pub struct GroupScan {
    schema: Schema,
    data: Option<Arc<Relation>>,
    pos: usize,
}

impl GroupScan {
    /// Scan the bound group; `schema` must match the binding.
    pub fn new(schema: Schema) -> Self {
        GroupScan { schema, data: None, pos: 0 }
    }
}

impl PhysicalOp for GroupScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.data = Some(Arc::clone(ctx.current_group()?));
        self.pos = 0;
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        let data = self.data.as_ref().expect("GroupScan::next_batch before open");
        match slice_batch(data, &self.schema, &mut self.pos, ctx.batch_size) {
            Some(batch) => {
                ctx.stats.group_rows_scanned += batch.len() as u64;
                Ok(Some(batch))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
        self.data = None;
        self.pos = 0;
        Ok(())
    }

    fn clone_op(&self) -> BoxedOp {
        Box::new(GroupScan::new(self.schema.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::drain;
    use xmlpub_algebra::{Catalog, TableDef};
    use xmlpub_common::{row, DataType, Field};

    fn test_catalog() -> Catalog {
        let schema =
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Str)]);
        let def = TableDef::new("t", schema);
        let data = Relation::new(def.schema.clone(), vec![row![1, "a"], row![2, "b"]]).unwrap();
        let mut cat = Catalog::new();
        cat.register(def, data).unwrap();
        cat
    }

    #[test]
    fn table_scan_reads_all_rows_and_counts() {
        let cat = test_catalog();
        let mut ctx = ExecContext::new(&cat);
        let mut scan = TableScan::new("t", cat.table("t").unwrap().schema.clone());
        let rows = drain(&mut scan, &mut ctx).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(ctx.stats.rows_scanned, 2);
        // Re-openable: a second drain yields the same rows.
        let rows2 = drain(&mut scan, &mut ctx).unwrap();
        assert_eq!(rows, rows2);
    }

    #[test]
    fn table_scan_missing_table_errors_at_open() {
        let cat = Catalog::new();
        let mut ctx = ExecContext::new(&cat);
        let mut scan = TableScan::new("ghost", Schema::empty());
        assert!(scan.open(&mut ctx).is_err());
    }

    #[test]
    fn group_scan_reads_binding() {
        let cat = test_catalog();
        let mut ctx = ExecContext::new(&cat);
        let schema = cat.table("t").unwrap().schema.clone();
        let group = Relation::new(schema.clone(), vec![row![7, "x"]]).unwrap();
        ctx.groups.push(Arc::new(group));
        let mut scan = GroupScan::new(schema);
        let rows = drain(&mut scan, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![7, "x"]]);
        assert_eq!(ctx.stats.group_rows_scanned, 1);
    }

    #[test]
    fn scan_batches_are_columnar_slices_sharing_the_table_dictionary() {
        let cat = test_catalog();
        let mut ctx = ExecContext::with_batch_size(&cat, 1);
        let mut scan = TableScan::new("t", cat.table("t").unwrap().schema.clone());
        scan.open(&mut ctx).unwrap();
        let table_dict = match &cat.data("t").unwrap().columns()[1] {
            xmlpub_common::ColumnVec::Str { dict, .. } => std::sync::Arc::clone(dict),
            other => panic!("expected dictionary-encoded strings, got {other:?}"),
        };
        let mut batches = 0;
        while let Some(b) = scan.next_batch(&mut ctx).unwrap() {
            assert_eq!(b.len(), 1);
            match &b.columns()[1] {
                xmlpub_common::ColumnVec::Str { dict, .. } => {
                    assert!(
                        std::sync::Arc::ptr_eq(dict, &table_dict),
                        "scan slices must share, not copy, the table dictionary"
                    );
                }
                other => panic!("expected a dictionary slice, got {other:?}"),
            }
            batches += 1;
        }
        scan.close(&mut ctx).unwrap();
        assert_eq!(batches, 2);
    }

    #[test]
    fn group_scan_without_binding_errors() {
        let cat = test_catalog();
        let mut ctx = ExecContext::new(&cat);
        let mut scan = GroupScan::new(Schema::empty());
        assert!(scan.open(&mut ctx).is_err());
    }
}
