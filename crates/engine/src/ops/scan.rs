//! Leaf scans: base tables and the `$group` temporary relation.

use crate::context::ExecContext;
use crate::ops::{chunk, BoxedOp, PhysicalOp};
use std::sync::Arc;
use xmlpub_common::{Relation, Result, Schema, TupleBatch};

/// Full scan of a catalog table.
pub struct TableScan {
    table: String,
    schema: Schema,
    data: Option<Arc<Relation>>,
    pos: usize,
}

impl TableScan {
    /// Scan `table`; `schema` is the binder-qualified schema.
    pub fn new(table: impl Into<String>, schema: Schema) -> Self {
        TableScan { table: table.into(), schema, data: None, pos: 0 }
    }
}

impl PhysicalOp for TableScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.data = Some(ctx.catalog.data(&self.table)?);
        self.pos = 0;
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        let data = self.data.as_ref().expect("TableScan::next_batch before open");
        match chunk(data.rows(), &mut self.pos, ctx.batch_size) {
            Some(rows) => {
                ctx.stats.rows_scanned += rows.len() as u64;
                Ok(Some(TupleBatch::new(self.schema.clone(), rows)))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
        self.data = None;
        self.pos = 0;
        Ok(())
    }

    fn clone_op(&self) -> BoxedOp {
        Box::new(TableScan::new(self.table.clone(), self.schema.clone()))
    }
}

/// Scan of the relation-valued parameter bound by the nearest enclosing
/// `GApply` — the paper's "leaf scan operator [that] understands this to
/// be a temporary relation and reads from it".
pub struct GroupScan {
    schema: Schema,
    data: Option<Arc<Relation>>,
    pos: usize,
}

impl GroupScan {
    /// Scan the bound group; `schema` must match the binding.
    pub fn new(schema: Schema) -> Self {
        GroupScan { schema, data: None, pos: 0 }
    }
}

impl PhysicalOp for GroupScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.data = Some(Arc::clone(ctx.current_group()?));
        self.pos = 0;
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        let data = self.data.as_ref().expect("GroupScan::next_batch before open");
        match chunk(data.rows(), &mut self.pos, ctx.batch_size) {
            Some(rows) => {
                ctx.stats.group_rows_scanned += rows.len() as u64;
                Ok(Some(TupleBatch::new(self.schema.clone(), rows)))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
        self.data = None;
        self.pos = 0;
        Ok(())
    }

    fn clone_op(&self) -> BoxedOp {
        Box::new(GroupScan::new(self.schema.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::drain;
    use xmlpub_algebra::{Catalog, TableDef};
    use xmlpub_common::{row, DataType, Field};

    fn test_catalog() -> Catalog {
        let schema =
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Str)]);
        let def = TableDef::new("t", schema);
        let data = Relation::new(def.schema.clone(), vec![row![1, "a"], row![2, "b"]]).unwrap();
        let mut cat = Catalog::new();
        cat.register(def, data).unwrap();
        cat
    }

    #[test]
    fn table_scan_reads_all_rows_and_counts() {
        let cat = test_catalog();
        let mut ctx = ExecContext::new(&cat);
        let mut scan = TableScan::new("t", cat.table("t").unwrap().schema.clone());
        let rows = drain(&mut scan, &mut ctx).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(ctx.stats.rows_scanned, 2);
        // Re-openable: a second drain yields the same rows.
        let rows2 = drain(&mut scan, &mut ctx).unwrap();
        assert_eq!(rows, rows2);
    }

    #[test]
    fn table_scan_missing_table_errors_at_open() {
        let cat = Catalog::new();
        let mut ctx = ExecContext::new(&cat);
        let mut scan = TableScan::new("ghost", Schema::empty());
        assert!(scan.open(&mut ctx).is_err());
    }

    #[test]
    fn group_scan_reads_binding() {
        let cat = test_catalog();
        let mut ctx = ExecContext::new(&cat);
        let schema = cat.table("t").unwrap().schema.clone();
        let group = Relation::new(schema.clone(), vec![row![7, "x"]]).unwrap();
        ctx.groups.push(Arc::new(group));
        let mut scan = GroupScan::new(schema);
        let rows = drain(&mut scan, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![7, "x"]]);
        assert_eq!(ctx.stats.group_rows_scanned, 1);
    }

    #[test]
    fn group_scan_without_binding_errors() {
        let cat = test_catalog();
        let mut ctx = ExecContext::new(&cat);
        let mut scan = GroupScan::new(Schema::empty());
        assert!(scan.open(&mut ctx).is_err());
    }
}
