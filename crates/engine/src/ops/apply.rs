//! Correlated apply and existence test — the subquery execution model
//! the paper adopts from Galindo-Legaria & Joshi [12].

use crate::context::ExecContext;
use crate::ops::{BoxedOp, PhysicalOp};
use std::collections::HashMap;
use xmlpub_algebra::ApplyMode;
use xmlpub_common::{Error, Result, Schema, Tuple, TupleBatch, Value};

/// Executes the inner plan once per outer row, binding the outer row as
/// a correlated parameter (`ctx.outers`).
///
/// When the planner proves the inner plan is *uncorrelated* (it never
/// reads the outer row), the inner result is computed once per `open` and
/// reused for every outer row — the common-subexpression spool a real
/// engine would use. Inside a `GApply` per-group query this still
/// re-evaluates once per *group* (GApply re-opens the plan per group),
/// which is exactly the intended semantics of an uncorrelated subquery
/// over `$group`. The cache is what keeps the *with-GApply* plans from
/// being quadratic; the *without-GApply* baseline plans keep their
/// correlated subqueries correlated (they reference the outer key), so
/// they pay the paper's redundant-computation cost.
pub struct ApplyOp {
    outer: BoxedOp,
    inner: BoxedOp,
    mode: ApplyMode,
    /// Outer-row columns the inner plan reads (empty = uncorrelated).
    corr_cols: Vec<usize>,
    /// Enable the uncorrelated-inner cache (ablation knob).
    cache_enabled: bool,
    /// Enable memoization of correlated inners by parameter value.
    memo_enabled: bool,
    schema: Schema,
    cache: Option<Vec<Tuple>>,
    memo: HashMap<Vec<Value>, Vec<Tuple>>,
}

impl ApplyOp {
    /// Create an apply operator. `corr_cols` are the outer columns the
    /// inner plan reads through level-0 correlated references (empty for
    /// an uncorrelated inner).
    pub fn new(
        outer: BoxedOp,
        inner: BoxedOp,
        mode: ApplyMode,
        corr_cols: Vec<usize>,
        cache_enabled: bool,
        memo_enabled: bool,
    ) -> Self {
        let schema = outer.schema().join(inner.schema());
        ApplyOp {
            outer,
            inner,
            mode,
            corr_cols,
            cache_enabled,
            memo_enabled,
            schema,
            cache: None,
            memo: HashMap::new(),
        }
    }

    fn run_inner(&mut self, ctx: &mut ExecContext<'_>, outer_row: &Tuple) -> Result<Vec<Tuple>> {
        let correlated = !self.corr_cols.is_empty();
        if !correlated && self.cache_enabled {
            if let Some(cached) = &self.cache {
                ctx.stats.apply_cache_hits += 1;
                return Ok(cached.clone());
            }
        }
        let memo_key: Option<Vec<Value>> = (correlated && self.memo_enabled)
            .then(|| self.corr_cols.iter().map(|&c| outer_row.value(c).clone()).collect());
        if let Some(key) = &memo_key {
            if let Some(cached) = self.memo.get(key) {
                ctx.stats.apply_cache_hits += 1;
                return Ok(cached.clone());
            }
        }
        ctx.stats.apply_inner_executions += 1;
        ctx.outers.push(outer_row.clone());
        let result = (|| {
            self.inner.open(ctx)?;
            let mut rows = Vec::new();
            while let Some(b) = self.inner.next_batch(ctx)? {
                rows.extend(b.into_rows());
            }
            self.inner.close(ctx)?;
            Ok(rows)
        })();
        ctx.outers.pop();
        let rows = result?;
        if let Some(key) = memo_key {
            self.memo.insert(key, rows.clone());
        } else if !correlated && self.cache_enabled {
            self.cache = Some(rows.clone());
        }
        Ok(rows)
    }
}

impl PhysicalOp for ApplyOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.cache = None;
        self.memo.clear();
        self.outer.open(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        loop {
            let Some(batch) = self.outer.next_batch(ctx)? else {
                return Ok(None);
            };
            // One output batch per outer batch: the expansion factor is
            // unknown, so the batch-size target is deliberately ignored
            // here rather than buffering inner results across calls.
            let mut out = Vec::new();
            for outer_row in batch.rows() {
                let rows = self.run_inner(ctx, outer_row)?;
                let inner_width = self.schema.len() - outer_row.len();
                match self.mode {
                    ApplyMode::Cross => {
                        out.extend(rows.iter().map(|r| outer_row.concat(r)));
                    }
                    ApplyMode::LeftOuter => {
                        if rows.is_empty() {
                            out.push(outer_row.concat(&Tuple::new(vec![Value::Null; inner_width])));
                        } else {
                            out.extend(rows.iter().map(|r| outer_row.concat(r)));
                        }
                    }
                    ApplyMode::Scalar => {
                        if rows.len() > 1 {
                            return Err(Error::exec(format!(
                                "scalar subquery returned {} rows",
                                rows.len()
                            )));
                        }
                        match rows.first() {
                            Some(r) => out.push(outer_row.concat(r)),
                            None => out.push(
                                outer_row.concat(&Tuple::new(vec![Value::Null; inner_width])),
                            ),
                        }
                    }
                }
            }
            if !out.is_empty() {
                return Ok(Some(TupleBatch::new(self.schema.clone(), out)));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.cache = None;
        self.memo.clear();
        self.outer.close(ctx)
    }

    fn clone_op(&self) -> BoxedOp {
        Box::new(ApplyOp::new(
            self.outer.clone_op(),
            self.inner.clone_op(),
            self.mode,
            self.corr_cols.clone(),
            self.cache_enabled,
            self.memo_enabled,
        ))
    }
}

/// The paper's `exists` operator: emits the single tuple over the null
/// schema iff the input is non-empty (flipped when `negated`).
pub struct ExistsOp {
    input: BoxedOp,
    negated: bool,
    schema: Schema,
    emitted: bool,
    holds: bool,
    evaluated: bool,
}

impl ExistsOp {
    /// Existence test over `input`.
    pub fn new(input: BoxedOp, negated: bool) -> Self {
        ExistsOp {
            input,
            negated,
            schema: Schema::empty(),
            emitted: false,
            holds: false,
            evaluated: false,
        }
    }
}

impl PhysicalOp for ExistsOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
        self.emitted = false;
        self.evaluated = false;
        self.holds = false;
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        if !self.evaluated {
            // Short-circuit: stop at the first batch that shows up.
            self.input.open(ctx)?;
            let found = self.input.next_batch(ctx)?.is_some();
            self.input.close(ctx)?;
            self.holds = found != self.negated;
            self.evaluated = true;
        }
        if self.holds && !self.emitted {
            self.emitted = true;
            return Ok(Some(TupleBatch::new(self.schema.clone(), vec![Tuple::unit()])));
        }
        Ok(None)
    }

    fn close(&mut self, _ctx: &mut ExecContext<'_>) -> Result<()> {
        self.emitted = false;
        self.evaluated = false;
        Ok(())
    }

    fn clone_op(&self) -> BoxedOp {
        Box::new(ExistsOp::new(self.input.clone_op(), self.negated))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::drain;
    use crate::ops::filter::Filter;
    use crate::test_support::{ctx_with, values_op, values_op2};
    use xmlpub_common::row;
    use xmlpub_expr::Expr;

    fn correlated_inner() -> BoxedOp {
        // inner: rows (1),(2),(3) filtered by col0 > outer.col0
        Box::new(Filter::new(
            values_op(vec![row![1], row![2], row![3]]),
            Expr::col(0).gt(Expr::Correlated { level: 0, index: 0 }),
        ))
    }

    #[test]
    fn cross_apply_correlated() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let outer = values_op(vec![row![1], row![2], row![3]]);
        let mut ap =
            ApplyOp::new(outer, correlated_inner(), ApplyMode::Cross, vec![0], true, false);
        let rows = drain(&mut ap, &mut ctx).unwrap();
        // outer=1 pairs with 2,3; outer=2 pairs with 3; outer=3 drops.
        assert_eq!(rows, vec![row![1, 2], row![1, 3], row![2, 3]]);
        assert_eq!(ctx.stats.apply_inner_executions, 3);
        assert_eq!(ctx.stats.apply_cache_hits, 0);
    }

    #[test]
    fn left_outer_apply_pads() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let outer = values_op(vec![row![3]]);
        let mut ap =
            ApplyOp::new(outer, correlated_inner(), ApplyMode::LeftOuter, vec![0], true, false);
        let rows = drain(&mut ap, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![3, Value::Null]]);
    }

    #[test]
    fn scalar_apply_enforces_single_row() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let outer = values_op(vec![row![1]]);
        let mut ap = ApplyOp::new(
            outer,
            values_op(vec![row![10], row![20]]),
            ApplyMode::Scalar,
            vec![],
            false,
            false,
        );
        ap.open(&mut ctx).unwrap();
        assert!(ap.next_batch(&mut ctx).is_err());
        ap.close(&mut ctx).unwrap();

        // Empty inner pads with NULL.
        let outer = values_op(vec![row![1]]);
        let mut ap =
            ApplyOp::new(outer, values_op(vec![]), ApplyMode::Scalar, vec![], false, false);
        let rows = drain(&mut ap, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![1, Value::Null]]);
    }

    #[test]
    fn uncorrelated_inner_is_cached() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let outer = values_op(vec![row![1], row![2], row![3]]);
        let inner = values_op(vec![row![9]]);
        let mut ap = ApplyOp::new(outer, inner, ApplyMode::Cross, vec![], true, false);
        let rows = drain(&mut ap, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![1, 9], row![2, 9], row![3, 9]]);
        assert_eq!(ctx.stats.apply_inner_executions, 1);
        assert_eq!(ctx.stats.apply_cache_hits, 2);

        // With the cache disabled, every outer row re-executes.
        ctx.stats.clear();
        let outer = values_op(vec![row![1], row![2], row![3]]);
        let inner = values_op(vec![row![9]]);
        let mut ap = ApplyOp::new(outer, inner, ApplyMode::Cross, vec![], false, false);
        drain(&mut ap, &mut ctx).unwrap();
        assert_eq!(ctx.stats.apply_inner_executions, 3);
    }

    #[test]
    fn cache_resets_on_reopen() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let outer = values_op(vec![row![1], row![2]]);
        let inner = values_op(vec![row![9]]);
        let mut ap = ApplyOp::new(outer, inner, ApplyMode::Cross, vec![], true, false);
        drain(&mut ap, &mut ctx).unwrap();
        drain(&mut ap, &mut ctx).unwrap();
        // Two opens → two real executions (one per open), two cache hits.
        assert_eq!(ctx.stats.apply_inner_executions, 2);
        assert_eq!(ctx.stats.apply_cache_hits, 2);
    }

    #[test]
    fn exists_and_not_exists() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let mut e = ExistsOp::new(values_op2(vec![row![1, "a"]]), false);
        assert_eq!(drain(&mut e, &mut ctx).unwrap(), vec![Tuple::unit()]);
        let mut e = ExistsOp::new(values_op2(vec![]), false);
        assert!(drain(&mut e, &mut ctx).unwrap().is_empty());
        let mut e = ExistsOp::new(values_op2(vec![]), true);
        assert_eq!(drain(&mut e, &mut ctx).unwrap(), vec![Tuple::unit()]);
        let mut e = ExistsOp::new(values_op2(vec![row![1, "a"]]), true);
        assert!(drain(&mut e, &mut ctx).unwrap().is_empty());
    }

    #[test]
    fn apply_with_exists_inner_is_semijoin() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let outer = values_op(vec![row![1], row![5]]);
        // exists(σ col0 > outer)
        let inner = Box::new(ExistsOp::new(correlated_inner(), false));
        let mut ap = ApplyOp::new(outer, inner, ApplyMode::Cross, vec![0], true, false);
        let rows = drain(&mut ap, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![1]]); // 5 has no greater element
    }

    use xmlpub_common::Value;
}
