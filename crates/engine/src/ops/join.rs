//! Joins: hash join for equi-conjuncts, nested loops for the rest.

use crate::context::ExecContext;
use crate::ops::{BoxedOp, PhysicalOp};
use crate::parallel::{run_morsels, run_scoped, split_owned, ParallelConfig};
use std::collections::HashMap;
use xmlpub_common::{Result, Schema, Tuple, TupleBatch, Value};
use xmlpub_expr::Expr;

/// Build-side hash join on `left_keys = right_keys`, with an optional
/// residual predicate over the concatenated row. The *right* input is the
/// build side (in the paper's left-deep trees the right child is a leaf).
///
/// Under `dop > 1` both phases go morsel-parallel with unchanged
/// results: the build drains the right input and hashes contiguous row
/// chunks on worker threads, merging the per-chunk tables *in chunk
/// order* so each key's match list keeps the serial arrival order; the
/// probe splits each left batch into row-range morsels and concatenates
/// the per-morsel outputs in morsel order.
pub struct HashJoin {
    left: BoxedOp,
    right: BoxedOp,
    /// Key column indices into the left schema.
    left_keys: Vec<usize>,
    /// Key column indices into the right schema.
    right_keys: Vec<usize>,
    residual: Option<Expr>,
    /// Left outer join: unmatched left rows survive NULL-padded.
    left_outer: bool,
    right_width: usize,
    schema: Schema,
    table: HashMap<Vec<Value>, Vec<Tuple>>,
    built: bool,
    parallel: ParallelConfig,
}

impl HashJoin {
    /// Create an inner hash join.
    pub fn new(
        left: BoxedOp,
        right: BoxedOp,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        residual: Option<Expr>,
    ) -> Self {
        HashJoin::with_mode(left, right, left_keys, right_keys, residual, false)
    }

    /// Create a hash join, optionally left-outer.
    pub fn with_mode(
        left: BoxedOp,
        right: BoxedOp,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        residual: Option<Expr>,
        left_outer: bool,
    ) -> Self {
        HashJoin::with_parallel(
            left,
            right,
            left_keys,
            right_keys,
            residual,
            left_outer,
            ParallelConfig::default(),
        )
    }

    /// Create a hash join with explicit parallelism knobs.
    #[allow(clippy::too_many_arguments)] // mirrors with_mode plus the knobs
    pub fn with_parallel(
        left: BoxedOp,
        right: BoxedOp,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        residual: Option<Expr>,
        left_outer: bool,
        parallel: ParallelConfig,
    ) -> Self {
        assert_eq!(left_keys.len(), right_keys.len());
        assert!(!left_keys.is_empty(), "hash join needs at least one key pair");
        let right_width = right.schema().len();
        let schema = left.schema().join(right.schema());
        HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            left_outer,
            right_width,
            schema,
            table: HashMap::new(),
            built: false,
            parallel,
        }
    }
}

/// Hash `rows` into a per-chunk build table, keeping each key's rows in
/// arrival order. Returns the table and the number of rows hashed
/// (NULL-keyed rows never match and are skipped at build, as serially).
fn build_chunk(right_keys: &[usize], rows: Vec<Tuple>) -> (HashMap<Vec<Value>, Vec<Tuple>>, u64) {
    let mut table: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
    let mut hashed = 0u64;
    for row in rows {
        let key: Vec<Value> = right_keys.iter().map(|&k| row.value(k).clone()).collect();
        if key.iter().any(Value::is_null) {
            continue;
        }
        hashed += 1;
        table.entry(key).or_default().push(row);
    }
    (table, hashed)
}

/// Probe `rows` against the build table, producing the joined output in
/// left-row order — the shared kernel for the serial pass and each
/// parallel morsel. A free function (not a method) so morsel closures
/// capture only `Sync` state, never the operator's child plans.
#[allow(clippy::too_many_arguments)] // the full probe state, spelled out
fn probe_rows(
    table: &HashMap<Vec<Value>, Vec<Tuple>>,
    left_keys: &[usize],
    residual: Option<&Expr>,
    left_outer: bool,
    right_width: usize,
    rows: &[Tuple],
    outers: &[Tuple],
) -> Result<Vec<Tuple>> {
    // Collect the candidate concatenated rows for every left row (in
    // order, grouped per left row), so the residual runs as one
    // vectorized pass.
    let mut cand: Vec<Tuple> = Vec::new();
    let mut cand_counts: Vec<usize> = Vec::with_capacity(rows.len());
    for left_row in rows {
        let key: Vec<Value> = left_keys.iter().map(|&k| left_row.value(k).clone()).collect();
        let start = cand.len();
        // NULL keys never join; under left-outer they fall through to
        // the pad below.
        if !key.iter().any(Value::is_null) {
            if let Some(matches) = table.get(&key) {
                cand.extend(matches.iter().map(|m| left_row.concat(m)));
            }
        }
        cand_counts.push(cand.len() - start);
    }
    let mask: Vec<bool> = match residual {
        Some(p) => p.eval_batch_predicate(&cand, outers)?,
        None => vec![true; cand.len()],
    };
    let mut out = Vec::new();
    let mut cand_iter = cand.into_iter();
    let mut mi = 0;
    for (left_row, &n) in rows.iter().zip(&cand_counts) {
        let mut emitted = false;
        for _ in 0..n {
            let joined = cand_iter.next().expect("candidate count mismatch");
            if mask[mi] {
                out.push(joined);
                emitted = true;
            }
            mi += 1;
        }
        // Outer join: a left row with no surviving match pads the right
        // side with NULLs.
        if left_outer && !emitted {
            out.push(left_row.concat(&Tuple::new(vec![Value::Null; right_width])));
        }
    }
    Ok(out)
}

impl PhysicalOp for HashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.table.clear();
        self.built = false;
        self.left.open(ctx)?;
        // Build phase over the right input.
        self.right.open(ctx)?;
        if self.parallel.dop > 1 {
            // Drain, then hash contiguous chunks across workers. Merging
            // the per-chunk tables in chunk order preserves each key's
            // serial match order, which is all probe output depends on.
            let mut rows: Vec<Tuple> = Vec::new();
            while let Some(batch) = self.right.next_batch(ctx)? {
                rows.extend(batch.into_rows());
            }
            if self.parallel.parallel_partition(rows.len()) {
                let right_keys = &self.right_keys;
                let workers: Vec<_> = split_owned(rows, self.parallel.dop)
                    .into_iter()
                    .map(|chunk| move || Ok(build_chunk(right_keys, chunk)))
                    .collect();
                for result in run_scoped(workers) {
                    let (local, hashed) = result?;
                    ctx.stats.rows_hashed += hashed;
                    for (key, matches) in local {
                        self.table.entry(key).or_default().extend(matches);
                    }
                }
            } else {
                let (table, hashed) = build_chunk(&self.right_keys, rows);
                ctx.stats.rows_hashed += hashed;
                self.table = table;
            }
        } else {
            while let Some(batch) = self.right.next_batch(ctx)? {
                let (local, hashed) = build_chunk(&self.right_keys, batch.into_rows());
                ctx.stats.rows_hashed += hashed;
                for (key, matches) in local {
                    self.table.entry(key).or_default().extend(matches);
                }
            }
        }
        self.right.close(ctx)?;
        self.built = true;
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        debug_assert!(self.built, "HashJoin::next_batch before open");
        loop {
            let Some(batch) = self.left.next_batch(ctx)? else {
                return Ok(None);
            };
            ctx.stats.join_probes += batch.len() as u64;
            let out = if self.parallel.parallel_morsels(batch.len()) {
                let rows = batch.rows();
                let (table, left_keys) = (&self.table, &self.left_keys);
                let (residual, outers) = (self.residual.as_ref(), &ctx.outers);
                let (left_outer, right_width) = (self.left_outer, self.right_width);
                let per_worker = self.parallel.morsel_rows_per_worker;
                let parts = run_morsels(self.parallel.dop, per_worker, rows.len(), |range| {
                    probe_rows(
                        table,
                        left_keys,
                        residual,
                        left_outer,
                        right_width,
                        &rows[range],
                        outers,
                    )
                })?;
                parts.concat()
            } else {
                probe_rows(
                    &self.table,
                    &self.left_keys,
                    self.residual.as_ref(),
                    self.left_outer,
                    self.right_width,
                    batch.rows(),
                    &ctx.outers,
                )?
            };
            if !out.is_empty() {
                return Ok(Some(TupleBatch::new(self.schema.clone(), out)));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.table.clear();
        self.built = false;
        self.left.close(ctx)
    }

    fn clone_op(&self) -> BoxedOp {
        Box::new(HashJoin::with_parallel(
            self.left.clone_op(),
            self.right.clone_op(),
            self.left_keys.clone(),
            self.right_keys.clone(),
            self.residual.clone(),
            self.left_outer,
            self.parallel,
        ))
    }
}

/// Nested-loops inner join with an arbitrary predicate. The right side is
/// materialised at open.
pub struct NestedLoopJoin {
    left: BoxedOp,
    right: BoxedOp,
    predicate: Expr,
    schema: Schema,
    right_rows: Vec<Tuple>,
}

impl NestedLoopJoin {
    /// Create a nested-loops join.
    pub fn new(left: BoxedOp, right: BoxedOp, predicate: Expr) -> Self {
        let schema = left.schema().join(right.schema());
        NestedLoopJoin { left, right, predicate, schema, right_rows: Vec::new() }
    }
}

impl PhysicalOp for NestedLoopJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.right_rows.clear();
        self.left.open(ctx)?;
        self.right.open(ctx)?;
        while let Some(batch) = self.right.next_batch(ctx)? {
            self.right_rows.extend(batch.into_rows());
        }
        self.right.close(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        loop {
            let Some(batch) = self.left.next_batch(ctx)? else {
                return Ok(None);
            };
            ctx.stats.join_probes += batch.len() as u64;
            let mut out = Vec::new();
            // One candidate set (and one vectorized predicate pass) per
            // left row keeps memory at |right|, not |batch| × |right|.
            for left_row in batch.rows() {
                let cand: Vec<Tuple> = self.right_rows.iter().map(|r| left_row.concat(r)).collect();
                let mask = self.predicate.eval_batch_predicate(&cand, &ctx.outers)?;
                out.extend(
                    cand.into_iter().zip(&mask).filter(|(_, &keep)| keep).map(|(row, _)| row),
                );
            }
            if !out.is_empty() {
                return Ok(Some(TupleBatch::new(self.schema.clone(), out)));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.right_rows.clear();
        self.left.close(ctx)
    }

    fn clone_op(&self) -> BoxedOp {
        Box::new(NestedLoopJoin::new(
            self.left.clone_op(),
            self.right.clone_op(),
            self.predicate.clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::drain;
    use crate::test_support::{ctx_with, values_op2};
    use xmlpub_common::row;

    #[test]
    fn hash_join_matches_keys() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let left = values_op2(vec![row![1, "a"], row![2, "b"], row![3, "c"]]);
        let right = values_op2(vec![row![2, "x"], row![2, "y"], row![4, "z"]]);
        let mut j = HashJoin::new(left, right, vec![0], vec![0], None);
        let rows = drain(&mut j, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![2, "b", 2, "x"], row![2, "b", 2, "y"]]);
        assert_eq!(ctx.stats.rows_hashed, 3);
        assert_eq!(ctx.stats.join_probes, 3);
    }

    #[test]
    fn hash_join_null_keys_never_match() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let left = values_op2(vec![row![xmlpub_common::Value::Null, "l"]]);
        let right = values_op2(vec![row![xmlpub_common::Value::Null, "r"]]);
        let mut j = HashJoin::new(left, right, vec![0], vec![0], None);
        assert!(drain(&mut j, &mut ctx).unwrap().is_empty());
    }

    #[test]
    fn hash_join_residual_filters() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let left = values_op2(vec![row![1, "a"], row![1, "b"]]);
        let right = values_op2(vec![row![1, "b"], row![1, "c"]]);
        // join on col0, residual left.str = right.str
        let mut j =
            HashJoin::new(left, right, vec![0], vec![0], Some(Expr::col(1).eq(Expr::col(3))));
        let rows = drain(&mut j, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![1, "b", 1, "b"]]);
    }

    #[test]
    fn nested_loop_join_arbitrary_predicate() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let left = values_op2(vec![row![1, "a"], row![5, "b"]]);
        let right = values_op2(vec![row![3, "x"], row![4, "y"]]);
        let mut j = NestedLoopJoin::new(left, right, Expr::col(0).lt(Expr::col(2)));
        let rows = drain(&mut j, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![1, "a", 3, "x"], row![1, "a", 4, "y"]]);
    }

    #[test]
    fn left_outer_join_pads_unmatched_rows() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let left = values_op2(vec![row![1, "a"], row![2, "b"], row![3, "c"]]);
        let right = values_op2(vec![row![2, "x"], row![2, "y"]]);
        let mut j = HashJoin::with_mode(left, right, vec![0], vec![0], None, true);
        let rows = drain(&mut j, &mut ctx).unwrap();
        let n = xmlpub_common::Value::Null;
        assert_eq!(
            rows,
            vec![
                row![1, "a", n.clone(), n.clone()],
                row![2, "b", 2, "x"],
                row![2, "b", 2, "y"],
                row![3, "c", n.clone(), n.clone()],
            ]
        );
    }

    #[test]
    fn left_outer_join_null_left_key_survives_padded() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let n = xmlpub_common::Value::Null;
        let left = values_op2(vec![row![n.clone(), "l"]]);
        let right = values_op2(vec![row![n.clone(), "r"], row![1, "x"]]);
        let mut j = HashJoin::with_mode(left, right, vec![0], vec![0], None, true);
        let rows = drain(&mut j, &mut ctx).unwrap();
        // NULL never equals NULL, but the left row survives padded.
        assert_eq!(rows, vec![row![n.clone(), "l", n.clone(), n.clone()]]);
    }

    #[test]
    fn left_outer_join_residual_failure_still_pads() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let left = values_op2(vec![row![1, "a"]]);
        let right = values_op2(vec![row![1, "x"]]);
        // Residual rejects the only match → padded row.
        let mut j =
            HashJoin::with_mode(left, right, vec![0], vec![0], Some(Expr::lit(false)), true);
        let rows = drain(&mut j, &mut ctx).unwrap();
        let n = xmlpub_common::Value::Null;
        assert_eq!(rows, vec![row![1, "a", n.clone(), n.clone()]]);
    }

    #[test]
    fn morsel_parallel_hash_join_matches_serial() {
        // Skewed keys (k % 7) with duplicate matches, a residual, and
        // left-outer padding — the full probe surface.
        let left_rows: Vec<_> = (0..3000).map(|i| row![i % 7, format!("l{i}")]).collect();
        let right_rows: Vec<_> = (0..600).map(|i| row![i % 11, format!("r{i}")]).collect();
        let residual = Some(Expr::col(1).neq(Expr::col(3)));
        for left_outer in [false, true] {
            let (cat, _) = ctx_with();
            let mut ctx = ExecContext::new(&cat);
            let mut serial = HashJoin::with_mode(
                values_op2(left_rows.clone()),
                values_op2(right_rows.clone()),
                vec![0],
                vec![0],
                residual.clone(),
                left_outer,
            );
            let expected = drain(&mut serial, &mut ctx).unwrap();
            let serial_stats = ctx.stats.clone();
            for dop in [2, 4] {
                let mut ctx = ExecContext::new(&cat);
                let mut j = HashJoin::with_parallel(
                    values_op2(left_rows.clone()),
                    values_op2(right_rows.clone()),
                    vec![0],
                    vec![0],
                    residual.clone(),
                    left_outer,
                    // Thresholds shrunk so both the chunked build (600
                    // right rows) and probe morsels (3000 left rows)
                    // genuinely spread across worker threads.
                    crate::parallel::ParallelConfig {
                        partition_min_rows: 256,
                        morsel_min_rows: 256,
                        morsel_rows_per_worker: 256,
                        ..crate::parallel::ParallelConfig::with_dop(dop)
                    },
                );
                let got = drain(&mut j, &mut ctx).unwrap();
                assert_eq!(got, expected, "dop {dop} outer={left_outer} diverged");
                assert_eq!(ctx.stats, serial_stats, "dop {dop} stats diverged");
            }
        }
    }

    #[test]
    fn joins_reopen_cleanly() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let left = values_op2(vec![row![1, "a"]]);
        let right = values_op2(vec![row![1, "x"]]);
        let mut j = HashJoin::new(left, right, vec![0], vec![0], None);
        let a = drain(&mut j, &mut ctx).unwrap();
        let b = drain(&mut j, &mut ctx).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
    }
}
