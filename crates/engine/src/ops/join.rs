//! Joins: hash join for equi-conjuncts, nested loops for the rest.

use crate::context::ExecContext;
use crate::ops::{BoxedOp, PhysicalOp};
use std::collections::HashMap;
use xmlpub_common::{Result, Schema, Tuple, TupleBatch, Value};
use xmlpub_expr::Expr;

/// Build-side hash join on `left_keys = right_keys`, with an optional
/// residual predicate over the concatenated row. The *right* input is the
/// build side (in the paper's left-deep trees the right child is a leaf).
pub struct HashJoin {
    left: BoxedOp,
    right: BoxedOp,
    /// Key column indices into the left schema.
    left_keys: Vec<usize>,
    /// Key column indices into the right schema.
    right_keys: Vec<usize>,
    residual: Option<Expr>,
    /// Left outer join: unmatched left rows survive NULL-padded.
    left_outer: bool,
    right_width: usize,
    schema: Schema,
    table: HashMap<Vec<Value>, Vec<Tuple>>,
    built: bool,
}

impl HashJoin {
    /// Create an inner hash join.
    pub fn new(
        left: BoxedOp,
        right: BoxedOp,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        residual: Option<Expr>,
    ) -> Self {
        HashJoin::with_mode(left, right, left_keys, right_keys, residual, false)
    }

    /// Create a hash join, optionally left-outer.
    pub fn with_mode(
        left: BoxedOp,
        right: BoxedOp,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        residual: Option<Expr>,
        left_outer: bool,
    ) -> Self {
        assert_eq!(left_keys.len(), right_keys.len());
        assert!(!left_keys.is_empty(), "hash join needs at least one key pair");
        let right_width = right.schema().len();
        let schema = left.schema().join(right.schema());
        HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            left_outer,
            right_width,
            schema,
            table: HashMap::new(),
            built: false,
        }
    }
}

impl PhysicalOp for HashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.table.clear();
        self.built = false;
        self.left.open(ctx)?;
        // Build phase over the right input.
        self.right.open(ctx)?;
        while let Some(batch) = self.right.next_batch(ctx)? {
            for row in batch.into_rows() {
                let key: Vec<Value> =
                    self.right_keys.iter().map(|&k| row.value(k).clone()).collect();
                // SQL equality never matches NULL keys; skip them at build.
                if key.iter().any(Value::is_null) {
                    continue;
                }
                ctx.stats.rows_hashed += 1;
                self.table.entry(key).or_default().push(row);
            }
        }
        self.right.close(ctx)?;
        self.built = true;
        Ok(())
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        debug_assert!(self.built, "HashJoin::next_batch before open");
        loop {
            let Some(batch) = self.left.next_batch(ctx)? else {
                return Ok(None);
            };
            ctx.stats.join_probes += batch.len() as u64;
            // Probe the whole batch: collect the candidate concatenated
            // rows for every left row (in order, grouped per left row), so
            // the residual runs as one vectorized pass.
            let mut cand: Vec<Tuple> = Vec::new();
            let mut cand_counts: Vec<usize> = Vec::with_capacity(batch.len());
            for left_row in batch.rows() {
                let key: Vec<Value> =
                    self.left_keys.iter().map(|&k| left_row.value(k).clone()).collect();
                let start = cand.len();
                // NULL keys never join; under left-outer they fall through
                // to the pad below.
                if !key.iter().any(Value::is_null) {
                    if let Some(matches) = self.table.get(&key) {
                        cand.extend(matches.iter().map(|m| left_row.concat(m)));
                    }
                }
                cand_counts.push(cand.len() - start);
            }
            let mask: Vec<bool> = match &self.residual {
                Some(p) => p.eval_batch_predicate(&cand, &ctx.outers)?,
                None => vec![true; cand.len()],
            };
            let mut out = Vec::new();
            let mut cand_iter = cand.into_iter();
            let mut mi = 0;
            for (left_row, &n) in batch.rows().iter().zip(&cand_counts) {
                let mut emitted = false;
                for _ in 0..n {
                    let joined = cand_iter.next().expect("candidate count mismatch");
                    if mask[mi] {
                        out.push(joined);
                        emitted = true;
                    }
                    mi += 1;
                }
                // Outer join: a left row with no surviving match pads the
                // right side with NULLs.
                if self.left_outer && !emitted {
                    out.push(left_row.concat(&Tuple::new(vec![Value::Null; self.right_width])));
                }
            }
            if !out.is_empty() {
                return Ok(Some(TupleBatch::new(self.schema.clone(), out)));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.table.clear();
        self.built = false;
        self.left.close(ctx)
    }

    fn clone_op(&self) -> BoxedOp {
        Box::new(HashJoin::with_mode(
            self.left.clone_op(),
            self.right.clone_op(),
            self.left_keys.clone(),
            self.right_keys.clone(),
            self.residual.clone(),
            self.left_outer,
        ))
    }
}

/// Nested-loops inner join with an arbitrary predicate. The right side is
/// materialised at open.
pub struct NestedLoopJoin {
    left: BoxedOp,
    right: BoxedOp,
    predicate: Expr,
    schema: Schema,
    right_rows: Vec<Tuple>,
}

impl NestedLoopJoin {
    /// Create a nested-loops join.
    pub fn new(left: BoxedOp, right: BoxedOp, predicate: Expr) -> Self {
        let schema = left.schema().join(right.schema());
        NestedLoopJoin { left, right, predicate, schema, right_rows: Vec::new() }
    }
}

impl PhysicalOp for NestedLoopJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.right_rows.clear();
        self.left.open(ctx)?;
        self.right.open(ctx)?;
        while let Some(batch) = self.right.next_batch(ctx)? {
            self.right_rows.extend(batch.into_rows());
        }
        self.right.close(ctx)
    }

    fn next_batch(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<TupleBatch>> {
        loop {
            let Some(batch) = self.left.next_batch(ctx)? else {
                return Ok(None);
            };
            ctx.stats.join_probes += batch.len() as u64;
            let mut out = Vec::new();
            // One candidate set (and one vectorized predicate pass) per
            // left row keeps memory at |right|, not |batch| × |right|.
            for left_row in batch.rows() {
                let cand: Vec<Tuple> = self.right_rows.iter().map(|r| left_row.concat(r)).collect();
                let mask = self.predicate.eval_batch_predicate(&cand, &ctx.outers)?;
                out.extend(
                    cand.into_iter().zip(&mask).filter(|(_, &keep)| keep).map(|(row, _)| row),
                );
            }
            if !out.is_empty() {
                return Ok(Some(TupleBatch::new(self.schema.clone(), out)));
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.right_rows.clear();
        self.left.close(ctx)
    }

    fn clone_op(&self) -> BoxedOp {
        Box::new(NestedLoopJoin::new(
            self.left.clone_op(),
            self.right.clone_op(),
            self.predicate.clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::drain;
    use crate::test_support::{ctx_with, values_op2};
    use xmlpub_common::row;

    #[test]
    fn hash_join_matches_keys() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let left = values_op2(vec![row![1, "a"], row![2, "b"], row![3, "c"]]);
        let right = values_op2(vec![row![2, "x"], row![2, "y"], row![4, "z"]]);
        let mut j = HashJoin::new(left, right, vec![0], vec![0], None);
        let rows = drain(&mut j, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![2, "b", 2, "x"], row![2, "b", 2, "y"]]);
        assert_eq!(ctx.stats.rows_hashed, 3);
        assert_eq!(ctx.stats.join_probes, 3);
    }

    #[test]
    fn hash_join_null_keys_never_match() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let left = values_op2(vec![row![xmlpub_common::Value::Null, "l"]]);
        let right = values_op2(vec![row![xmlpub_common::Value::Null, "r"]]);
        let mut j = HashJoin::new(left, right, vec![0], vec![0], None);
        assert!(drain(&mut j, &mut ctx).unwrap().is_empty());
    }

    #[test]
    fn hash_join_residual_filters() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let left = values_op2(vec![row![1, "a"], row![1, "b"]]);
        let right = values_op2(vec![row![1, "b"], row![1, "c"]]);
        // join on col0, residual left.str = right.str
        let mut j =
            HashJoin::new(left, right, vec![0], vec![0], Some(Expr::col(1).eq(Expr::col(3))));
        let rows = drain(&mut j, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![1, "b", 1, "b"]]);
    }

    #[test]
    fn nested_loop_join_arbitrary_predicate() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let left = values_op2(vec![row![1, "a"], row![5, "b"]]);
        let right = values_op2(vec![row![3, "x"], row![4, "y"]]);
        let mut j = NestedLoopJoin::new(left, right, Expr::col(0).lt(Expr::col(2)));
        let rows = drain(&mut j, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![1, "a", 3, "x"], row![1, "a", 4, "y"]]);
    }

    #[test]
    fn left_outer_join_pads_unmatched_rows() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let left = values_op2(vec![row![1, "a"], row![2, "b"], row![3, "c"]]);
        let right = values_op2(vec![row![2, "x"], row![2, "y"]]);
        let mut j = HashJoin::with_mode(left, right, vec![0], vec![0], None, true);
        let rows = drain(&mut j, &mut ctx).unwrap();
        let n = xmlpub_common::Value::Null;
        assert_eq!(
            rows,
            vec![
                row![1, "a", n.clone(), n.clone()],
                row![2, "b", 2, "x"],
                row![2, "b", 2, "y"],
                row![3, "c", n.clone(), n.clone()],
            ]
        );
    }

    #[test]
    fn left_outer_join_null_left_key_survives_padded() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let n = xmlpub_common::Value::Null;
        let left = values_op2(vec![row![n.clone(), "l"]]);
        let right = values_op2(vec![row![n.clone(), "r"], row![1, "x"]]);
        let mut j = HashJoin::with_mode(left, right, vec![0], vec![0], None, true);
        let rows = drain(&mut j, &mut ctx).unwrap();
        // NULL never equals NULL, but the left row survives padded.
        assert_eq!(rows, vec![row![n.clone(), "l", n.clone(), n.clone()]]);
    }

    #[test]
    fn left_outer_join_residual_failure_still_pads() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let left = values_op2(vec![row![1, "a"]]);
        let right = values_op2(vec![row![1, "x"]]);
        // Residual rejects the only match → padded row.
        let mut j =
            HashJoin::with_mode(left, right, vec![0], vec![0], Some(Expr::lit(false)), true);
        let rows = drain(&mut j, &mut ctx).unwrap();
        let n = xmlpub_common::Value::Null;
        assert_eq!(rows, vec![row![1, "a", n.clone(), n.clone()]]);
    }

    #[test]
    fn joins_reopen_cleanly() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let left = values_op2(vec![row![1, "a"]]);
        let right = values_op2(vec![row![1, "x"]]);
        let mut j = HashJoin::new(left, right, vec![0], vec![0], None);
        let a = drain(&mut j, &mut ctx).unwrap();
        let b = drain(&mut j, &mut ctx).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
    }
}
