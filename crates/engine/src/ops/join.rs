//! Joins: hash join for equi-conjuncts, nested loops for the rest.

use crate::context::ExecContext;
use crate::ops::{BoxedOp, PhysicalOp};
use std::collections::HashMap;
use xmlpub_common::{Result, Schema, Tuple, Value};
use xmlpub_expr::Expr;

/// Build-side hash join on `left_keys = right_keys`, with an optional
/// residual predicate over the concatenated row. The *right* input is the
/// build side (in the paper's left-deep trees the right child is a leaf).
pub struct HashJoin {
    left: BoxedOp,
    right: BoxedOp,
    /// Key column indices into the left schema.
    left_keys: Vec<usize>,
    /// Key column indices into the right schema.
    right_keys: Vec<usize>,
    residual: Option<Expr>,
    /// Left outer join: unmatched left rows survive NULL-padded.
    left_outer: bool,
    right_width: usize,
    schema: Schema,
    table: HashMap<Vec<Value>, Vec<Tuple>>,
    current_left: Option<Tuple>,
    match_idx: usize,
    /// Whether the current left row has produced any output yet (for the
    /// outer-join NULL pad).
    emitted_for_current: bool,
    built: bool,
}

impl HashJoin {
    /// Create an inner hash join.
    pub fn new(
        left: BoxedOp,
        right: BoxedOp,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        residual: Option<Expr>,
    ) -> Self {
        HashJoin::with_mode(left, right, left_keys, right_keys, residual, false)
    }

    /// Create a hash join, optionally left-outer.
    pub fn with_mode(
        left: BoxedOp,
        right: BoxedOp,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        residual: Option<Expr>,
        left_outer: bool,
    ) -> Self {
        assert_eq!(left_keys.len(), right_keys.len());
        assert!(!left_keys.is_empty(), "hash join needs at least one key pair");
        let right_width = right.schema().len();
        let schema = left.schema().join(right.schema());
        HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            left_outer,
            right_width,
            schema,
            table: HashMap::new(),
            current_left: None,
            match_idx: 0,
            emitted_for_current: false,
            built: false,
        }
    }
}

impl PhysicalOp for HashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.table.clear();
        self.current_left = None;
        self.match_idx = 0;
        self.built = false;
        self.left.open(ctx)?;
        // Build phase over the right input.
        self.right.open(ctx)?;
        while let Some(row) = self.right.next(ctx)? {
            let key: Vec<Value> = self.right_keys.iter().map(|&k| row.value(k).clone()).collect();
            // SQL equality never matches NULL keys; skip them at build.
            if key.iter().any(Value::is_null) {
                continue;
            }
            ctx.stats.rows_hashed += 1;
            self.table.entry(key).or_default().push(row);
        }
        self.right.close(ctx)?;
        self.built = true;
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Tuple>> {
        debug_assert!(self.built, "HashJoin::next before open");
        loop {
            if let Some(left_row) = &self.current_left {
                let key: Vec<Value> =
                    self.left_keys.iter().map(|&k| left_row.value(k).clone()).collect();
                let null_key = key.iter().any(Value::is_null);
                if !null_key {
                    if let Some(matches) = self.table.get(&key) {
                        while self.match_idx < matches.len() {
                            let joined = left_row.concat(&matches[self.match_idx]);
                            self.match_idx += 1;
                            let keep = match &self.residual {
                                Some(p) => p.eval_predicate(&joined, &ctx.outers)?,
                                None => true,
                            };
                            if keep {
                                self.emitted_for_current = true;
                                return Ok(Some(joined));
                            }
                        }
                    }
                }
                // Outer join: a left row with no surviving match pads the
                // right side with NULLs.
                if self.left_outer && !self.emitted_for_current {
                    let padded = left_row.concat(&Tuple::new(vec![Value::Null; self.right_width]));
                    self.current_left = None;
                    self.match_idx = 0;
                    return Ok(Some(padded));
                }
                self.current_left = None;
                self.match_idx = 0;
            }
            match self.left.next(ctx)? {
                Some(row) => {
                    ctx.stats.join_probes += 1;
                    if !self.left_outer && self.left_keys.iter().any(|&k| row.value(k).is_null()) {
                        continue; // NULL keys never join (inner)
                    }
                    self.current_left = Some(row);
                    self.emitted_for_current = false;
                }
                None => return Ok(None),
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.table.clear();
        self.current_left = None;
        self.built = false;
        self.left.close(ctx)
    }
}

/// Nested-loops inner join with an arbitrary predicate. The right side is
/// materialised at open.
pub struct NestedLoopJoin {
    left: BoxedOp,
    right: BoxedOp,
    predicate: Expr,
    schema: Schema,
    right_rows: Vec<Tuple>,
    current_left: Option<Tuple>,
    right_idx: usize,
}

impl NestedLoopJoin {
    /// Create a nested-loops join.
    pub fn new(left: BoxedOp, right: BoxedOp, predicate: Expr) -> Self {
        let schema = left.schema().join(right.schema());
        NestedLoopJoin {
            left,
            right,
            predicate,
            schema,
            right_rows: Vec::new(),
            current_left: None,
            right_idx: 0,
        }
    }
}

impl PhysicalOp for NestedLoopJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.right_rows.clear();
        self.current_left = None;
        self.right_idx = 0;
        self.left.open(ctx)?;
        self.right.open(ctx)?;
        while let Some(r) = self.right.next(ctx)? {
            self.right_rows.push(r);
        }
        self.right.close(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Tuple>> {
        loop {
            if let Some(left_row) = &self.current_left {
                while self.right_idx < self.right_rows.len() {
                    let joined = left_row.concat(&self.right_rows[self.right_idx]);
                    self.right_idx += 1;
                    if self.predicate.eval_predicate(&joined, &ctx.outers)? {
                        return Ok(Some(joined));
                    }
                }
                self.current_left = None;
                self.right_idx = 0;
            }
            match self.left.next(ctx)? {
                Some(row) => {
                    ctx.stats.join_probes += 1;
                    self.current_left = Some(row);
                }
                None => return Ok(None),
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) -> Result<()> {
        self.right_rows.clear();
        self.current_left = None;
        self.left.close(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::drain;
    use crate::test_support::{ctx_with, values_op2};
    use xmlpub_common::row;

    #[test]
    fn hash_join_matches_keys() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let left = values_op2(vec![row![1, "a"], row![2, "b"], row![3, "c"]]);
        let right = values_op2(vec![row![2, "x"], row![2, "y"], row![4, "z"]]);
        let mut j = HashJoin::new(left, right, vec![0], vec![0], None);
        let rows = drain(&mut j, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![2, "b", 2, "x"], row![2, "b", 2, "y"]]);
        assert_eq!(ctx.stats.rows_hashed, 3);
        assert_eq!(ctx.stats.join_probes, 3);
    }

    #[test]
    fn hash_join_null_keys_never_match() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let left = values_op2(vec![row![xmlpub_common::Value::Null, "l"]]);
        let right = values_op2(vec![row![xmlpub_common::Value::Null, "r"]]);
        let mut j = HashJoin::new(left, right, vec![0], vec![0], None);
        assert!(drain(&mut j, &mut ctx).unwrap().is_empty());
    }

    #[test]
    fn hash_join_residual_filters() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let left = values_op2(vec![row![1, "a"], row![1, "b"]]);
        let right = values_op2(vec![row![1, "b"], row![1, "c"]]);
        // join on col0, residual left.str = right.str
        let mut j =
            HashJoin::new(left, right, vec![0], vec![0], Some(Expr::col(1).eq(Expr::col(3))));
        let rows = drain(&mut j, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![1, "b", 1, "b"]]);
    }

    #[test]
    fn nested_loop_join_arbitrary_predicate() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let left = values_op2(vec![row![1, "a"], row![5, "b"]]);
        let right = values_op2(vec![row![3, "x"], row![4, "y"]]);
        let mut j = NestedLoopJoin::new(left, right, Expr::col(0).lt(Expr::col(2)));
        let rows = drain(&mut j, &mut ctx).unwrap();
        assert_eq!(rows, vec![row![1, "a", 3, "x"], row![1, "a", 4, "y"]]);
    }

    #[test]
    fn left_outer_join_pads_unmatched_rows() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let left = values_op2(vec![row![1, "a"], row![2, "b"], row![3, "c"]]);
        let right = values_op2(vec![row![2, "x"], row![2, "y"]]);
        let mut j = HashJoin::with_mode(left, right, vec![0], vec![0], None, true);
        let rows = drain(&mut j, &mut ctx).unwrap();
        let n = xmlpub_common::Value::Null;
        assert_eq!(
            rows,
            vec![
                row![1, "a", n.clone(), n.clone()],
                row![2, "b", 2, "x"],
                row![2, "b", 2, "y"],
                row![3, "c", n.clone(), n.clone()],
            ]
        );
    }

    #[test]
    fn left_outer_join_null_left_key_survives_padded() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let n = xmlpub_common::Value::Null;
        let left = values_op2(vec![row![n.clone(), "l"]]);
        let right = values_op2(vec![row![n.clone(), "r"], row![1, "x"]]);
        let mut j = HashJoin::with_mode(left, right, vec![0], vec![0], None, true);
        let rows = drain(&mut j, &mut ctx).unwrap();
        // NULL never equals NULL, but the left row survives padded.
        assert_eq!(rows, vec![row![n.clone(), "l", n.clone(), n.clone()]]);
    }

    #[test]
    fn left_outer_join_residual_failure_still_pads() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let left = values_op2(vec![row![1, "a"]]);
        let right = values_op2(vec![row![1, "x"]]);
        // Residual rejects the only match → padded row.
        let mut j =
            HashJoin::with_mode(left, right, vec![0], vec![0], Some(Expr::lit(false)), true);
        let rows = drain(&mut j, &mut ctx).unwrap();
        let n = xmlpub_common::Value::Null;
        assert_eq!(rows, vec![row![1, "a", n.clone(), n.clone()]]);
    }

    #[test]
    fn joins_reopen_cleanly() {
        let (cat, _) = ctx_with();
        let mut ctx = ExecContext::new(&cat);
        let left = values_op2(vec![row![1, "a"]]);
        let right = values_op2(vec![row![1, "x"]]);
        let mut j = HashJoin::new(left, right, vec![0], vec![0], None);
        let a = drain(&mut j, &mut ctx).unwrap();
        let b = drain(&mut j, &mut ctx).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
    }
}
