//! Shared helpers for the engine's unit tests.

use crate::ops::{BoxedOp, ValuesOp};
use xmlpub_algebra::Catalog;
use xmlpub_common::{DataType, Field, Schema, Tuple};

/// An empty catalog (tests that do not scan base tables).
pub fn ctx_with() -> (Catalog, ()) {
    (Catalog::new(), ())
}

/// Schema of [`values_op`]: a single int column `x`.
pub fn values_op_schema() -> Schema {
    Schema::new(vec![Field::new("x", DataType::Int)])
}

/// One-column literal source.
pub fn values_op(rows: Vec<Tuple>) -> BoxedOp {
    Box::new(ValuesOp::new(values_op_schema(), rows))
}

/// Schema of [`values_op2`]: `(k: int, v: float)`. The `v` column is
/// dynamically typed at runtime, so tests also put strings in it.
pub fn values_op2_schema() -> Schema {
    Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Float)])
}

/// Two-column literal source.
pub fn values_op2(rows: Vec<Tuple>) -> BoxedOp {
    Box::new(ValuesOp::new(values_op2_schema(), rows))
}
