//! Intra-query parallelism: scoped-worker infrastructure for the
//! parallel execution modes (GApply groups and operator morsels).
//!
//! The paper's §3 definition of GApply — `⋃_c {c} × PGQ(σ_{C=c} RE1)` —
//! is a union of *independent* per-group computations, which makes the
//! execution phase embarrassingly parallel. The same observation holds
//! one level down: a columnar batch flowing through a stateless pipeline
//! segment (filter, project, join probe) decomposes into independent
//! row-range *morsels*. This module provides the pieces
//! [`GApplyOp`](crate::ops::GApplyOp) and the morsel-parallel operators
//! use to exploit both:
//!
//! * [`ParallelConfig`] — the engine-level knobs: degree of parallelism,
//!   the group-count threshold below which execution stays serial, the
//!   minimum input size before the partition phase itself runs chunked,
//!   the minimum batch size before morsel parallelism engages, and the
//!   minimum per-worker row share that caps how many workers a batch
//!   can keep busy;
//! * [`TaskCursor`] — a lock-free work-stealing chunk dispenser: workers
//!   claim contiguous ranges of task indices with a single atomic
//!   fetch-add, so skewed tasks self-balance without a scheduler;
//! * [`run_scoped`] — runs a set of worker closures on scoped threads
//!   (`std::thread::scope`, so no `'static` bound and no external
//!   dependencies), executing the first worker inline on the calling
//!   thread, converting worker panics into `Err` via `catch_unwind`, and
//!   returning per-worker results in worker order so error selection
//!   stays deterministic;
//! * [`run_morsels`] — splits `0..len` into row-range morsels, runs a
//!   shared closure over them on `dop` workers through a [`TaskCursor`],
//!   and returns the per-morsel results *in morsel order* — so
//!   concatenating them reproduces the serial output exactly.
//!
//! Determinism contract: parallelism never changes *what* is computed or
//! the order results are merged in. Workers buffer per-group output and
//! the merge step reassembles it in the exact group order the serial
//! path produces (first-seen for hash partitioning, key order for sort),
//! so result rows — and the XML documents tagged from them — are
//! byte-identical at any degree of parallelism. Only wall-clock time and
//! batch boundaries may differ.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use xmlpub_common::{Error, Result};

/// Knobs governing intra-query parallelism. Carried by
/// [`GApplyOp`](crate::ops::GApplyOp); the planner builds one from
/// [`EngineConfig::dop`](crate::planner::EngineConfig::dop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Degree of parallelism: worker threads used for the GApply
    /// execution phase (and the partition phase, when the input is large
    /// enough). 1 means fully serial.
    pub dop: usize,
    /// Minimum number of groups before the execution phase goes
    /// parallel; below this, thread startup would dominate.
    pub group_threshold: usize,
    /// Minimum number of input rows before the partition phase (hash
    /// build / sort) runs chunked across workers.
    pub partition_min_rows: usize,
    /// Minimum number of rows in a batch before an operator splits it
    /// into morsels; below this, thread startup would dominate the
    /// per-row work.
    pub morsel_min_rows: usize,
    /// Minimum rows of work per morsel *worker*: [`run_morsels`] caps
    /// its worker count at `len / morsel_rows_per_worker`, so adding
    /// workers never drops any of them below a worthwhile share.
    pub morsel_rows_per_worker: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            dop: 1,
            group_threshold: 2,
            partition_min_rows: 8192,
            morsel_min_rows: 2 * MORSEL_ROWS_PER_WORKER,
            morsel_rows_per_worker: MORSEL_ROWS_PER_WORKER,
        }
    }
}

impl ParallelConfig {
    /// A config with the given degree of parallelism (clamped ≥ 1) and
    /// default thresholds.
    pub fn with_dop(dop: usize) -> Self {
        ParallelConfig { dop: dop.max(1), ..Default::default() }
    }

    /// Should the execution phase over `group_count` groups go parallel?
    pub(crate) fn parallel_groups(&self, group_count: usize) -> bool {
        self.dop > 1 && group_count >= self.group_threshold
    }

    /// Should the partition phase over `row_count` rows go parallel?
    pub(crate) fn parallel_partition(&self, row_count: usize) -> bool {
        self.dop > 1 && row_count >= self.partition_min_rows
    }

    /// Should an operator split a `row_count`-row batch into morsels?
    pub(crate) fn parallel_morsels(&self, row_count: usize) -> bool {
        self.dop > 1 && row_count >= self.morsel_min_rows
    }
}

/// Smallest morsel worth dispatching to a worker: below this the claim
/// traffic costs more than the row work it buys back.
pub(crate) const MIN_MORSEL_ROWS: usize = 64;

/// Default rows of work per morsel *worker*
/// ([`ParallelConfig::morsel_rows_per_worker`]). Unlike the
/// once-per-query partition phases, morsel evaluation re-engages on
/// *every* batch, and a scoped spawn costs on the order of 100µs — about
/// the per-row work of several thousand filter/project rows — so a
/// worker only pays for itself once it has several batches' worth of
/// rows to chew through. 8K rows/worker keeps the break-even at roughly
/// 10–20% spawn overhead in the worst case and is still an order of
/// magnitude finer than the ~100K-row morsels production vectorised
/// engines dispatch.
pub(crate) const MORSEL_ROWS_PER_WORKER: usize = 8192;

/// A work-stealing chunk dispenser over task indices `0..count`.
///
/// Every worker loops on [`claim`](Self::claim) until it returns `None`;
/// a worker hitting an error calls [`abort`](Self::abort) so its
/// siblings stop claiming new work instead of running to completion.
///
/// # Memory ordering
///
/// Two atomics with two distinct jobs:
///
/// * `next` — the dispensing counter. Exactly-once dispensing needs
///   only the *atomicity* of the `fetch_add`: RMWs on one location form
///   a single modification order, so two claims can never observe the
///   same start index, at any ordering. The `AcqRel` on the RMW is
///   about the surrounding protocol, not uniqueness: it keeps each
///   claim from being reordered with the claiming worker's subsequent
///   writes to its per-task output slots, so "claimed range r" reliably
///   happens-before "filled r's results" on every worker.
/// * `aborted` — a message-passing flag. [`abort`](Self::abort) stores
///   with `Release` *after* the aborting worker has recorded its error;
///   [`claim`](Self::claim) loads with `Acquire` *before* deciding to
///   hand out more work. A sibling that observes `true` therefore also
///   observes everything the aborting worker wrote first. The flag is
///   best-effort by design: a claim that raced ahead of the store still
///   completes its chunk — cancellation here trims wasted work, it is
///   not a correctness boundary.
///
/// The protocol invariants (no index dispensed twice, no claim after an
/// observed abort, every range within `0..count`) are checked under
/// every possible 2-thread schedule in `exhaustive_two_thread_interleavings`.
pub(crate) struct TaskCursor {
    next: AtomicUsize,
    count: usize,
    chunk: usize,
    aborted: AtomicBool,
}

impl TaskCursor {
    /// A cursor over `count` tasks handed out `chunk` at a time.
    pub fn new(count: usize, chunk: usize) -> Self {
        TaskCursor {
            next: AtomicUsize::new(0),
            count,
            chunk: chunk.max(1),
            aborted: AtomicBool::new(false),
        }
    }

    /// The chunk size that balances steal traffic against skew for
    /// `count` tasks on `workers` threads: ~4 claims per worker.
    pub fn balanced_chunk(count: usize, workers: usize) -> usize {
        (count / (workers.max(1) * 4)).max(1)
    }

    /// Claim the next chunk of task indices, or `None` when the tasks
    /// are exhausted or a sibling aborted.
    pub fn claim(&self) -> Option<Range<usize>> {
        if self.aborted.load(Ordering::Acquire) {
            return None;
        }
        let start = self.next.fetch_add(self.chunk, Ordering::AcqRel);
        if start >= self.count {
            return None;
        }
        Some(start..(start + self.chunk).min(self.count))
    }

    /// Stop siblings from claiming further chunks (best-effort: a chunk
    /// already claimed still finishes or errors on its own).
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
    }
}

/// Run worker closures on scoped threads and collect their results in
/// worker order.
///
/// The first worker runs inline on the calling thread (a `dop`-worker
/// plan spawns `dop - 1` threads). A panicking worker is converted to an
/// `Err` carrying the panic message — the panic is contained by
/// `catch_unwind` inside the worker thread itself, so no thread dies
/// unjoined and `std::thread::scope` never re-raises. `AssertUnwindSafe`
/// is sound here because a worker that panics has its entire output
/// discarded: nothing outside the closure observes torn state.
pub(crate) fn run_scoped<R, F>(workers: Vec<F>) -> Vec<Result<R>>
where
    R: Send,
    F: FnOnce() -> Result<R> + Send,
{
    let n = workers.len();
    let mut results: Vec<Option<Result<R>>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    std::thread::scope(|s| {
        let mut workers = workers.into_iter();
        let first = workers.next();
        let handles: Vec<_> = workers.map(|w| s.spawn(move || contain_panic(w))).collect();
        if let Some(w) = first {
            results[0] = Some(contain_panic(w));
        }
        for (slot, handle) in results.iter_mut().skip(1).zip(handles) {
            *slot = Some(handle.join().unwrap_or_else(|_| {
                Err(Error::exec("parallel worker died before reporting a result"))
            }));
        }
    });
    results.into_iter().map(|r| r.expect("every worker slot filled")).collect()
}

fn contain_panic<R>(work: impl FnOnce() -> Result<R>) -> Result<R> {
    match catch_unwind(AssertUnwindSafe(work)) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_string());
            Err(Error::exec(format!("parallel worker panicked: {msg}")))
        }
    }
}

/// Run `work` over row-range morsels covering `0..len` on up to `dop`
/// workers, returning the per-morsel results in **morsel order** — so a
/// caller that concatenates them reproduces the serial row order exactly,
/// whatever interleaving the workers actually executed.
///
/// The worker count is `dop` capped so every worker has at least
/// `rows_per_worker` rows (capping to 1 runs the whole range inline —
/// no threads for ordinary-sized batches). Morsels are sized for ~4
/// claims per worker but never below [`MIN_MORSEL_ROWS`]; workers
/// steal morsel indices through a [`TaskCursor`] (chunk 1 — ranges are
/// already coarse). A worker hitting
/// an error aborts the cursor so its siblings stop claiming; the error
/// reported is the first in *worker order*, which keeps error selection
/// deterministic across runs (though, as with `eval_batch` vs per-row
/// evaluation, a multi-error batch may surface a different member of the
/// error set than the serial pass would).
pub(crate) fn run_morsels<T, F>(
    dop: usize,
    rows_per_worker: usize,
    len: usize,
    work: F,
) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(Range<usize>) -> Result<T> + Sync,
{
    let dop = dop.max(1).min(len / rows_per_worker.max(1)).max(1);
    let morsel_rows = len.div_ceil(dop * 4).max(MIN_MORSEL_ROWS);
    let count = len.div_ceil(morsel_rows).max(1);
    if dop == 1 || count <= 1 {
        return Ok(vec![work(0..len)?]);
    }
    let cursor = TaskCursor::new(count, 1);
    let workers: Vec<_> = (0..dop.min(count))
        .map(|_| {
            let cursor = &cursor;
            let work = &work;
            move || {
                let mut done: Vec<(usize, T)> = Vec::new();
                while let Some(claimed) = cursor.claim() {
                    for m in claimed {
                        let lo = m * morsel_rows;
                        let hi = (lo + morsel_rows).min(len);
                        match work(lo..hi) {
                            Ok(t) => done.push((m, t)),
                            Err(e) => {
                                cursor.abort();
                                return Err(e);
                            }
                        }
                    }
                }
                Ok(done)
            }
        })
        .collect();
    let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    let mut first_err = None;
    for result in run_scoped(workers) {
        match result {
            Ok(pairs) => {
                for (m, t) in pairs {
                    slots[m] = Some(t);
                }
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    slots
        .into_iter()
        .map(|s| s.ok_or_else(|| Error::exec("morsel completed without reporting a result")))
        .collect()
}

/// Split a vector into at most `parts` contiguous, roughly equal owned
/// chunks (at least one; order preserved).
pub(crate) fn split_owned<T>(mut v: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let parts = parts.clamp(1, v.len().max(1));
    let per = v.len().div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    while v.len() > per {
        let rest = v.split_off(per);
        out.push(std::mem::replace(&mut v, rest));
    }
    out.push(v);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn cursor_hands_out_every_task_exactly_once() {
        let cursor = TaskCursor::new(103, 7);
        let seen = Mutex::new(HashSet::new());
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let cursor = &cursor;
                let seen = &seen;
                move || {
                    while let Some(range) = cursor.claim() {
                        let mut seen = seen.lock().unwrap();
                        for i in range {
                            assert!(seen.insert(i), "task {i} dispensed twice");
                        }
                    }
                    Ok(())
                }
            })
            .collect();
        for r in run_scoped(workers) {
            r.unwrap();
        }
        assert_eq!(seen.lock().unwrap().len(), 103);
    }

    #[test]
    fn abort_stops_further_claims() {
        let cursor = TaskCursor::new(100, 1);
        assert!(cursor.claim().is_some());
        cursor.abort();
        assert!(cursor.claim().is_none());
    }

    /// One step of a worker's program against the cursor.
    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Step {
        Claim,
        Abort,
    }

    /// Enumerate every interleaving of two straight-line programs (each
    /// a sequence of [`Step`]s) and run each schedule against a fresh
    /// cursor, checking the dispenser's protocol invariants after every
    /// step. The steps execute sequentially — the enumeration covers
    /// every *schedule* two threads could take through the protocol,
    /// which is exactly the state space of this lock-free algorithm:
    /// each step is a single atomic op, so a real 2-thread execution is
    /// always equivalent to one of these sequentialisations.
    fn check_all_interleavings(count: usize, chunk: usize, a: &[Step], b: &[Step]) {
        // A schedule is a bitmask over a.len()+b.len() slots choosing
        // which program supplies each next step.
        let (na, nb) = (a.len(), b.len());
        let total = na + nb;
        let mut schedules = 0u32;
        for mask in 0..(1u32 << total) {
            if (mask.count_ones() as usize) != na {
                continue;
            }
            schedules += 1;
            let cursor = TaskCursor::new(count, chunk);
            let mut dispensed = HashSet::new();
            let mut abort_seen = false;
            let (mut ia, mut ib) = (0, 0);
            for slot in 0..total {
                let step = if mask & (1 << slot) != 0 {
                    let s = a[ia];
                    ia += 1;
                    s
                } else {
                    let s = b[ib];
                    ib += 1;
                    s
                };
                match step {
                    Step::Abort => {
                        cursor.abort();
                        abort_seen = true;
                    }
                    Step::Claim => match cursor.claim() {
                        None => {}
                        Some(range) => {
                            assert!(
                                !abort_seen,
                                "claim succeeded after abort (schedule {mask:#b})"
                            );
                            assert!(
                                range.start < range.end && range.end <= count,
                                "range {range:?} escapes 0..{count} (schedule {mask:#b})"
                            );
                            for i in range {
                                assert!(
                                    dispensed.insert(i),
                                    "task {i} dispensed twice (schedule {mask:#b})"
                                );
                            }
                        }
                    },
                }
            }
            assert_eq!(ia, na);
            assert_eq!(ib, nb);
            if !abort_seen {
                // Enough claims to drain the cursor must cover everything.
                let claims = a.iter().chain(b).filter(|s| **s == Step::Claim).count();
                if claims * chunk >= count {
                    assert_eq!(dispensed.len(), count, "schedule {mask:#b} lost tasks");
                }
            }
        }
        // C(na+nb, na) schedules — make sure the enumeration really ran.
        assert!(schedules > 1, "degenerate enumeration");
    }

    #[test]
    fn exhaustive_two_thread_interleavings() {
        use Step::{Abort, Claim};
        // Two workers draining 5 tasks 2 at a time: C(7,4) = 35 schedules.
        check_all_interleavings(5, 2, &[Claim, Claim, Claim, Claim], &[Claim, Claim, Claim]);
        // One worker aborts mid-stream: C(7,3) = 35 schedules; claims
        // scheduled after the abort must observe it.
        check_all_interleavings(8, 1, &[Claim, Abort, Claim], &[Claim, Claim, Claim, Claim]);
        // Both workers abort: no schedule may dispense after either.
        check_all_interleavings(4, 1, &[Claim, Abort], &[Claim, Abort, Claim]);
        // Chunk larger than the task count: single claim drains it.
        check_all_interleavings(3, 8, &[Claim, Claim], &[Claim]);
    }

    #[test]
    fn panicking_worker_becomes_an_error_in_its_slot() {
        let results = run_scoped(vec![
            Box::new(|| Ok(1)) as Box<dyn FnOnce() -> Result<i32> + Send>,
            Box::new(|| panic!("kaboom")),
        ]);
        assert_eq!(results.len(), 2);
        assert_eq!(*results[0].as_ref().unwrap(), 1);
        let err = results[1].as_ref().unwrap_err().to_string();
        assert!(err.contains("panicked") && err.contains("kaboom"), "{err}");
    }

    #[test]
    fn split_owned_preserves_order_and_covers_all() {
        let v: Vec<i32> = (0..10).collect();
        let chunks = split_owned(v, 3);
        assert_eq!(chunks.len(), 3);
        let flat: Vec<i32> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
        // More parts than elements degrades gracefully.
        assert_eq!(split_owned(vec![1], 8).len(), 1);
        assert_eq!(split_owned(Vec::<i32>::new(), 4), vec![Vec::<i32>::new()]);
    }

    #[test]
    fn run_morsels_preserves_row_order_at_every_dop() {
        let len = 10_000;
        let serial: Vec<usize> = (0..len).collect();
        for dop in [1, 2, 3, 8] {
            let parts = run_morsels(dop, 256, len, |r| Ok(r.collect::<Vec<usize>>())).unwrap();
            let flat: Vec<usize> = parts.into_iter().flatten().collect();
            assert_eq!(flat, serial, "dop {dop} reordered rows");
        }
    }

    #[test]
    fn run_morsels_small_input_stays_serial() {
        // Fewer rows than a minimum morsel: exactly one closure call.
        let parts = run_morsels(8, MORSEL_ROWS_PER_WORKER, 10, |r| Ok(r.len())).unwrap();
        assert_eq!(parts, vec![10]);
        // Zero-length input still yields one (empty) morsel result.
        let parts = run_morsels(4, MORSEL_ROWS_PER_WORKER, 0, |r| Ok(r.len())).unwrap();
        assert_eq!(parts, vec![0]);
        // A single worker-share of rows: the whole range runs inline.
        let n = MORSEL_ROWS_PER_WORKER;
        let parts = run_morsels(8, MORSEL_ROWS_PER_WORKER, n, |r| Ok(r.len())).unwrap();
        assert_eq!(parts, vec![n]);
        // Twice that unlocks exactly two workers (morsels stay coarse).
        let parts = run_morsels(8, MORSEL_ROWS_PER_WORKER, 2 * n, |r| Ok(r.len())).unwrap();
        assert!(parts.len() > 1);
        assert_eq!(parts.iter().sum::<usize>(), 2 * n);
    }

    #[test]
    fn run_morsels_propagates_errors() {
        let err = run_morsels(4, 256, 100_000, |r| {
            if r.start >= 64 {
                Err(Error::exec("boom"))
            } else {
                Ok(r.len())
            }
        })
        .unwrap_err();
        assert!(err.to_string().contains("boom"), "{err}");
    }

    #[test]
    fn morsel_threshold_gates_parallelism() {
        let cfg = ParallelConfig::with_dop(4);
        assert!(!cfg.parallel_morsels(cfg.morsel_min_rows - 1));
        assert!(cfg.parallel_morsels(cfg.morsel_min_rows));
        assert!(!ParallelConfig::with_dop(1).parallel_morsels(1 << 20));
    }

    #[test]
    fn balanced_chunk_never_zero() {
        assert_eq!(TaskCursor::balanced_chunk(0, 4), 1);
        assert_eq!(TaskCursor::balanced_chunk(3, 4), 1);
        assert!(TaskCursor::balanced_chunk(1000, 4) >= 1);
    }
}
