//! Top-level execution entry points.
//!
//! Two consumption styles share one pipeline:
//!
//! * the `execute*` family materialises the whole result into a
//!   [`Relation`] (tests, the CLI table printer, benches);
//! * [`execute_stream`] hands back a [`ResultStream`] that yields
//!   [`TupleBatch`]es as the root operator produces them — the publishing
//!   service and the streaming tagger consume results this way so a
//!   document is emitted incrementally instead of being buffered whole.
//!
//! Both styles, plus the §5.1 client simulator, funnel through the same
//! open → `next_batch`* → close loop ([`crate::ops::drain`] /
//! [`ResultStream::next_batch`]); there is deliberately no second
//! materialisation helper anywhere in the workspace.

use crate::context::{ExecContext, ExecStats, OpProfile};
use crate::ops::BoxedOp;
use crate::planner::{EngineConfig, PhysicalPlanner};
use crate::prop_check::PropChecker;
use xmlpub_algebra::{validate, Catalog, LogicalPlan};
use xmlpub_analysis::CatalogProperties;
use xmlpub_common::{Relation, Result, Schema, TupleBatch};
use xmlpub_obs::ObsContext;

/// Validate, lower and execute a logical plan with the default
/// configuration, materialising the result.
pub fn execute(plan: &LogicalPlan, catalog: &Catalog) -> Result<Relation> {
    execute_with_config(plan, catalog, &EngineConfig::default())
}

/// Execute with an explicit configuration.
pub fn execute_with_config(
    plan: &LogicalPlan,
    catalog: &Catalog,
    config: &EngineConfig,
) -> Result<Relation> {
    Ok(execute_with_stats(plan, catalog, config)?.0)
}

/// Execute and also return the engine counters (scan/join/apply work),
/// which the tests and benches use to demonstrate where the classic
/// plans do redundant work.
pub fn execute_with_stats(
    plan: &LogicalPlan,
    catalog: &Catalog,
    config: &EngineConfig,
) -> Result<(Relation, ExecStats)> {
    let (result, stats, _) = execute_inner(plan, catalog, config)?;
    Ok((result, stats))
}

/// Execute with per-operator profiling forced on, returning the result,
/// the global counters and one [`OpProfile`] per plan operator (pre-order)
/// — the engine half of `\explain --analyze`.
pub fn execute_analyzed(
    plan: &LogicalPlan,
    catalog: &Catalog,
    config: &EngineConfig,
) -> Result<(Relation, ExecStats, Vec<OpProfile>)> {
    let mut cfg = *config;
    cfg.profile_ops = true;
    execute_inner(plan, catalog, &cfg)
}

fn execute_inner(
    plan: &LogicalPlan,
    catalog: &Catalog,
    config: &EngineConfig,
) -> Result<(Relation, ExecStats, Vec<OpProfile>)> {
    execute_stream(plan, catalog, config)?.materialize()
}

/// Validate and lower a logical plan, returning a [`ResultStream`] that
/// produces batches on demand. Nothing runs until the first
/// [`ResultStream::next_batch`] call.
pub fn execute_stream<'a>(
    plan: &LogicalPlan,
    catalog: &'a Catalog,
    config: &EngineConfig,
) -> Result<ResultStream<'a>> {
    execute_stream_with_obs(plan, catalog, config, ObsContext::disabled())
}

/// [`execute_stream`] with an explicit observability context. The
/// stream's [`ExecContext`] carries the handles, so `Profiled` operators
/// report into the metrics registry and parallel GApply workers emit
/// `gapply.worker` spans parented under `obs.parent_span`. A disabled
/// context (the default everywhere else) costs nothing.
pub fn execute_stream_with_obs<'a>(
    plan: &LogicalPlan,
    catalog: &'a Catalog,
    config: &EngineConfig,
    obs: ObsContext,
) -> Result<ResultStream<'a>> {
    validate(plan)?;
    let planner = PhysicalPlanner::new(*config);
    let op = planner.plan(plan)?;
    let mut ctx = ExecContext::with_batch_size(catalog, config.batch_size);
    ctx.obs = obs;
    let checker = config.check_props.then(|| {
        let facts = CatalogProperties::from_catalog(catalog);
        PropChecker::new(xmlpub_analysis::derive(plan, &facts))
    });
    Ok(ResultStream { op, ctx, opened: false, done: false, checker })
}

/// A lazily-executed query result: batches come out as the root operator
/// produces them, so a consumer (the streaming tagger, a network writer)
/// can process rows without the executor ever holding the full result.
///
/// The operator is opened on the first [`next_batch`](Self::next_batch)
/// call and closed when it reports exhaustion (or when the stream is
/// dropped early, via [`Drop`]).
pub struct ResultStream<'a> {
    op: BoxedOp,
    ctx: ExecContext<'a>,
    opened: bool,
    done: bool,
    /// Present under [`EngineConfig::check_props`]: asserts derived
    /// plan properties against every batch this stream yields.
    checker: Option<PropChecker>,
}

impl<'a> ResultStream<'a> {
    /// The output schema.
    pub fn schema(&self) -> &Schema {
        self.op.schema()
    }

    /// Produce the next non-empty batch, or `None` once exhausted. The
    /// underlying operator tree is closed on exhaustion, after which the
    /// engine counters ([`stats`](Self::stats)) are final.
    pub fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        if self.done {
            return Ok(None);
        }
        if !self.opened {
            self.op.open(&mut self.ctx)?;
            self.opened = true;
        }
        match self.op.next_batch(&mut self.ctx)? {
            Some(batch) => {
                // Operator-boundary invariant: batches flowing between
                // operators are non-empty; exhaustion is `None` only.
                debug_assert!(!batch.is_empty(), "root operator produced an empty batch");
                if let Some(checker) = &mut self.checker {
                    checker.observe(&batch)?;
                }
                Ok(Some(batch))
            }
            None => {
                self.op.close(&mut self.ctx)?;
                self.done = true;
                if let Some(checker) = &self.checker {
                    checker.finish()?;
                }
                Ok(None)
            }
        }
    }

    /// Engine counters accumulated so far (final once the stream is
    /// exhausted).
    pub fn stats(&self) -> &ExecStats {
        &self.ctx.stats
    }

    /// Per-operator profiles (populated only under `profile_ops`).
    pub fn profiles(&self) -> &[OpProfile] {
        &self.ctx.profiles
    }

    /// Drain the remaining batches into a materialised [`Relation`],
    /// returning it with the final counters and profiles.
    pub fn materialize(mut self) -> Result<(Relation, ExecStats, Vec<OpProfile>)> {
        let schema = self.op.schema().clone();
        // Drain through `next_batch` so property checking (and any
        // other per-batch instrumentation) sees materialised results
        // exactly as it sees streamed ones.
        let mut rows = Vec::new();
        while let Some(batch) = self.next_batch()? {
            rows.extend(batch.into_rows());
        }
        let stats = std::mem::take(&mut self.ctx.stats);
        let profiles = std::mem::take(&mut self.ctx.profiles);
        Ok((Relation::from_rows_unchecked(schema, rows), stats, profiles))
    }
}

impl Drop for ResultStream<'_> {
    fn drop(&mut self) {
        // A consumer that stops early (e.g. a client disconnect in the
        // publishing service) must still release operator buffers.
        if self.opened && !self.done {
            let _ = self.op.close(&mut self.ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{drain, PartitionStrategy};
    use xmlpub_algebra::{plan::null_item, ApplyMode, ProjectItem, TableDef};
    use xmlpub_common::{row, DataType, Field, Schema, Value};
    use xmlpub_expr::{AggExpr, Expr};

    /// A small parts-per-supplier fixture:
    ///   supplier 1 → prices 10, 20, 30
    ///   supplier 2 → prices 5, 100
    fn fixture() -> Catalog {
        let schema = Schema::new(vec![
            Field::new("ps_suppkey", DataType::Int),
            Field::new("p_name", DataType::Str),
            Field::new("p_retailprice", DataType::Float),
        ]);
        let def = TableDef::new("sp", schema);
        let data = Relation::new(
            def.schema.clone(),
            vec![
                row![1, "bolt", 10.0],
                row![1, "nut", 20.0],
                row![1, "cam", 30.0],
                row![2, "gear", 5.0],
                row![2, "axle", 100.0],
            ],
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.register(def, data).unwrap();
        cat
    }

    fn scan(cat: &Catalog) -> LogicalPlan {
        LogicalPlan::scan("sp", cat.table("sp").unwrap().schema.clone())
    }

    #[test]
    fn executes_select_project() {
        let cat = fixture();
        let plan = scan(&cat).select(Expr::col(2).gt(Expr::lit(15.0))).project_cols(&[1, 2]);
        let result = execute(&plan, &cat).unwrap();
        let expected = Relation::new(
            result.schema().clone(),
            vec![row!["nut", 20.0], row!["cam", 30.0], row!["axle", 100.0]],
        )
        .unwrap();
        assert!(result.bag_eq(&expected), "{}", result.bag_diff(&expected));
    }

    #[test]
    fn executes_q1_shaped_gapply() {
        // Q1: per supplier, all (name, price) plus the overall average.
        let cat = fixture();
        let outer = scan(&cat);
        let gschema = outer.schema();
        let branch1 = LogicalPlan::group_scan(gschema.clone()).project(vec![
            ProjectItem::col(1),
            ProjectItem::col(2),
            null_item("avgprice"),
        ]);
        let branch2 = LogicalPlan::group_scan(gschema.clone())
            .scalar_agg(vec![AggExpr::avg(Expr::col(2), "avg")])
            .project(vec![null_item("p_name"), null_item("p_retailprice"), ProjectItem::col(0)]);
        let pgq = LogicalPlan::union_all(vec![branch1, branch2]);
        let plan = outer.gapply(vec![0], pgq);
        let (result, stats) = execute_with_stats(
            &plan,
            &cat,
            &EngineConfig { partition_strategy: PartitionStrategy::Sort, ..Default::default() },
        )
        .unwrap();
        let n = Value::Null;
        let expected = Relation::new(
            result.schema().clone(),
            vec![
                row![1, "bolt", 10.0, n.clone()],
                row![1, "nut", 20.0, n.clone()],
                row![1, "cam", 30.0, n.clone()],
                row![1, n.clone(), n.clone(), 20.0],
                row![2, "gear", 5.0, n.clone()],
                row![2, "axle", 100.0, n.clone()],
                row![2, n.clone(), n.clone(), 52.5],
            ],
        )
        .unwrap();
        assert!(result.bag_eq(&expected), "{}", result.bag_diff(&expected));
        // One partition pass over 5 rows, 2 groups, and crucially only
        // ONE scan of the base table.
        assert_eq!(stats.groups_processed, 2);
        assert_eq!(stats.rows_scanned, 5);
    }

    #[test]
    fn executes_q2_shaped_gapply() {
        // Q2: per supplier, count parts priced ≥ avg and < avg.
        let cat = fixture();
        let outer = scan(&cat);
        let gschema = outer.schema();
        let gs = || LogicalPlan::group_scan(gschema.clone());
        let avg = || gs().scalar_agg(vec![AggExpr::avg(Expr::col(2), "avg")]);
        let above = gs()
            .apply(avg(), ApplyMode::Scalar)
            .select(Expr::col(2).gt_eq(Expr::col(3)))
            .scalar_agg(vec![AggExpr::count_star("above")])
            .project(vec![ProjectItem::col(0), null_item("below")]);
        let below = gs()
            .apply(avg(), ApplyMode::Scalar)
            .select(Expr::col(2).lt(Expr::col(3)))
            .scalar_agg(vec![AggExpr::count_star("below")])
            .project(vec![null_item("above"), ProjectItem::col(0)]);
        let plan = outer.gapply(vec![0], LogicalPlan::union_all(vec![above, below]));
        let result = execute(&plan, &cat).unwrap();
        let n = Value::Null;
        // supplier 1: avg 20 → above (>=): 20,30 → 2; below: 10 → 1
        // supplier 2: avg 52.5 → above: 100 → 1; below: 5 → 1
        let expected = Relation::new(
            result.schema().clone(),
            vec![
                row![1, 2, n.clone()],
                row![1, n.clone(), 1],
                row![2, 1, n.clone()],
                row![2, n.clone(), 1],
            ],
        )
        .unwrap();
        assert!(result.bag_eq(&expected), "{}", result.bag_diff(&expected));
    }

    #[test]
    fn hash_and_sort_partitioning_agree() {
        let cat = fixture();
        let outer = scan(&cat);
        let pgq = LogicalPlan::group_scan(outer.schema())
            .scalar_agg(vec![AggExpr::max(Expr::col(2), "maxp")]);
        let plan = outer.gapply(vec![0], pgq);
        let hash = execute_with_config(
            &plan,
            &cat,
            &EngineConfig { partition_strategy: PartitionStrategy::Hash, ..Default::default() },
        )
        .unwrap();
        let sort = execute_with_config(
            &plan,
            &cat,
            &EngineConfig { partition_strategy: PartitionStrategy::Sort, ..Default::default() },
        )
        .unwrap();
        assert!(hash.bag_eq(&sort), "{}", hash.bag_diff(&sort));
    }

    #[test]
    fn streaming_matches_materialized_execution() {
        let cat = fixture();
        let plan = scan(&cat).select(Expr::col(2).gt(Expr::lit(7.0)));
        let config = EngineConfig { batch_size: 2, ..Default::default() };
        let mut stream = execute_stream(&plan, &cat, &config).unwrap();
        assert_eq!(stream.schema().len(), 3);
        let mut rows = Vec::new();
        while let Some(batch) = stream.next_batch().unwrap() {
            assert!(!batch.is_empty(), "streams never yield empty batches");
            rows.extend(batch.into_rows());
        }
        // Exhaustion is sticky and the counters are final.
        assert!(stream.next_batch().unwrap().is_none());
        assert_eq!(stream.stats().rows_scanned, 5);
        let direct = execute(&plan, &cat).unwrap();
        assert_eq!(rows, direct.rows());
    }

    #[test]
    fn partially_consumed_stream_materializes_the_rest() {
        let cat = fixture();
        let plan = scan(&cat);
        let config = EngineConfig { batch_size: 2, ..Default::default() };
        let mut stream = execute_stream(&plan, &cat, &config).unwrap();
        let first = stream.next_batch().unwrap().unwrap();
        assert_eq!(first.len(), 2);
        let (rest, stats, _) = stream.materialize().unwrap();
        assert_eq!(rest.len(), 3);
        assert_eq!(stats.rows_scanned, 5);
    }

    #[test]
    fn dropping_a_stream_early_is_clean() {
        let cat = fixture();
        let plan = scan(&cat);
        let mut stream =
            execute_stream(&plan, &cat, &EngineConfig { batch_size: 1, ..Default::default() })
                .unwrap();
        assert!(stream.next_batch().unwrap().is_some());
        drop(stream); // must close the operator tree without panicking
    }

    #[test]
    fn invalid_plans_are_rejected_before_execution() {
        let cat = fixture();
        let bad = LogicalPlan::group_scan(Schema::empty());
        assert!(execute(&bad, &cat).is_err());
    }

    #[test]
    fn formal_definition_cross_check() {
        // GApply(C, PGQ) must equal ⋃_{c} {c} × PGQ(σ_{C=c}(input)).
        let cat = fixture();
        let outer = scan(&cat);
        let gschema = outer.schema();
        let pgq = LogicalPlan::group_scan(gschema.clone())
            .select(Expr::col(2).gt(Expr::lit(9.0)))
            .scalar_agg(vec![AggExpr::count_star("n"), AggExpr::min(Expr::col(2), "cheapest")]);
        let plan = outer.clone().gapply(vec![0], pgq.clone());
        let via_operator = execute(&plan, &cat).unwrap();

        // Naive evaluation of the formal definition.
        let input = execute(&outer, &cat).unwrap();
        let mut rows = Vec::new();
        for key in input.distinct_values(0) {
            let group_rows: Vec<_> =
                input.rows().iter().filter(|r| r.value(0) == &key).cloned().collect();
            let group = Relation::from_rows_unchecked(input.schema().clone(), group_rows);
            // Execute the PGQ against the bound group.
            let planner = PhysicalPlanner::default();
            let mut op = planner.plan(&pgq).unwrap();
            let mut ctx = ExecContext::new(&cat);
            ctx.groups.push(std::sync::Arc::new(group));
            for r in drain(op.as_mut(), &mut ctx).unwrap() {
                rows.push(Tuple::new(
                    std::iter::once(key.clone()).chain(r.into_values()).collect(),
                ));
            }
        }
        let naive = Relation::from_rows_unchecked(via_operator.schema().clone(), rows);
        assert!(via_operator.bag_eq(&naive), "{}", via_operator.bag_diff(&naive));
    }

    use xmlpub_common::Tuple;
}
