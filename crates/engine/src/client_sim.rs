//! Client-side simulation of GApply (paper §5.1).
//!
//! The paper could not instrument SQL Server's internal GApply, so it
//! *simulated* the operator from the client: materialise the outer query
//! into a temp table, emulate the partition phase with a
//! `count(distinct miscCols)` group-by (hashing) or an `order by`
//! (sorting), then extract each group into another temp table and run the
//! per-group query on it, paying per-query overhead each time. The paper
//! argues this over-estimates the true cost, and calibrates the
//! overestimate on Q4 (the one query whose server plan used the real
//! operator) at about +20 %.
//!
//! We have the real operator, so we invert the experiment: this module
//! re-implements the *simulation procedure* — including its deliberate
//! inefficiencies (full materialisation, the miscCols concatenation and
//! distinct-count bookkeeping, a second copy of the outer result, a fresh
//! per-group temp relation, and per-group plan construction) — and the
//! calibration bench compares it against the native [`GApplyOp`]
//! execution of the same query.
//!
//! [`GApplyOp`]: crate::ops::GApplyOp

use crate::context::ExecContext;
use crate::executor::execute_with_config;
use crate::ops::{drain, PartitionStrategy};
use crate::planner::{EngineConfig, PhysicalPlanner};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use xmlpub_algebra::{Catalog, LogicalPlan};
use xmlpub_common::{Relation, Result, Schema, Tuple, Value};

/// Result of a client-side simulation run, with the phase bookkeeping the
/// paper's §5.1.1 accounting needs.
#[derive(Debug)]
pub struct SimulationOutcome {
    /// The query result (bag-equal to the native operator's).
    pub result: Relation,
    /// Rows materialised from the outer query ("tmpTable").
    pub outer_rows: usize,
    /// Number of groups processed in the execution phase.
    pub groups: usize,
    /// Total bytes of miscCols strings built during the partition
    /// emulation (the work `Q_overestimate` would subtract).
    pub misc_bytes: usize,
}

/// Run the §5.1 client-side simulation of
/// `GApply(group_cols, pgq)(outer)`.
pub fn simulate_gapply(
    catalog: &Catalog,
    outer: &LogicalPlan,
    group_cols: &[usize],
    pgq: &LogicalPlan,
    strategy: PartitionStrategy,
) -> Result<SimulationOutcome> {
    let config = EngineConfig { partition_strategy: strategy, ..Default::default() };

    // ---- Materialise the outer query into tmpTable (client round trip:
    // every row is copied out of the "server" result).
    let outer_rel = execute_with_config(outer, catalog, &config)?;
    let outer_schema = outer_rel.schema().clone();
    let tmp_table: Vec<Tuple> = outer_rel.rows().to_vec();
    let outer_rows = tmp_table.len();

    // ---- Partition phase.
    let mut misc_bytes = 0usize;
    let group_keys: Vec<Tuple> = match strategy {
        PartitionStrategy::Hash => {
            // Emulate Q_partition: group by the grouping columns while
            // counting distinct miscCols values. Building and retaining
            // the concatenated misc string per row is precisely the
            // "manage all the values on the server" effect the paper
            // engineers with the bit-xor counter.
            let mut buckets: HashMap<Vec<Value>, HashSet<String>> = HashMap::new();
            let mut order: Vec<Vec<Value>> = Vec::new();
            for (counter, row) in tmp_table.iter().enumerate() {
                let key: Vec<Value> = group_cols.iter().map(|&c| row.value(c).clone()).collect();
                let mut misc = String::new();
                for (i, v) in row.values().iter().enumerate() {
                    if !group_cols.contains(&i) {
                        misc.push_str(&v.render());
                        misc.push('|');
                    }
                }
                // The paper xors a counter into miscCols to force all
                // values distinct; appending it has the same effect.
                misc.push_str(&counter.to_string());
                misc_bytes += misc.len();
                match buckets.entry(key.clone()) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        order.push(key);
                        e.insert(HashSet::from([misc]));
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        e.get_mut().insert(misc);
                    }
                }
            }
            // The distinct counts are computed (and discarded) just as
            // Q_partition's `count(distinct miscCols)` output would be.
            for key in &order {
                let _ = buckets[key.as_slice()].len();
            }
            order.into_iter().map(Tuple::new).collect()
        }
        PartitionStrategy::Sort => {
            // Emulate the `order by <grouping cols>` alternative.
            let mut sorted = tmp_table.clone();
            sorted.sort_by(|a, b| {
                for &c in group_cols {
                    let ord = a.value(c).total_cmp(b.value(c));
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            let mut keys: Vec<Tuple> = Vec::new();
            for row in &sorted {
                let key = Tuple::new(group_cols.iter().map(|&c| row.value(c).clone()).collect());
                if keys.last() != Some(&key) {
                    keys.push(key);
                }
            }
            keys
        }
    };

    // ---- Execution phase: a SECOND full copy of the outer result ("we
    // store the result of the outer query in another table without
    // disturbing the columns this time"), indexed once so that each
    // group's rows can be fetched as "an appropriate range of this
    // temporary table" (§5.1) — the sorted/hashed temp table gives
    // per-group extraction proportional to the group size, not to the
    // whole table. The per-group inefficiencies that remain (and that
    // make the simulation conservative) are the copy into a fresh
    // temporary relation and the per-query planning overhead.
    let second_copy: Vec<Tuple> = tmp_table.clone();
    let mut ranges: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (i, row) in second_copy.iter().enumerate() {
        let key: Vec<Value> = group_cols.iter().map(|&c| row.value(c).clone()).collect();
        ranges.entry(key).or_default().push(i);
    }
    let mut out_rows: Vec<Tuple> = Vec::new();
    let key_schema =
        Schema::new(group_cols.iter().map(|&c| outer_schema.field(c).clone()).collect());
    // The per-group query is prepared once (as the paper's client
    // prepared one parameterised statement); per-group overhead is the
    // copy into a fresh temporary relation plus the open/run/close cycle
    // and fresh execution context per invocation.
    let planner = PhysicalPlanner::new(config);
    let mut op = planner.plan(pgq)?;
    let out_schema = key_schema.join(op.schema());
    for key in &group_keys {
        let group_rows: Vec<Tuple> = ranges
            .get(key.values())
            .map(|idxs| idxs.iter().map(|&i| second_copy[i].clone()).collect())
            .unwrap_or_default();
        let group = Relation::from_rows_unchecked(outer_schema.clone(), group_rows);
        let mut ctx = ExecContext::with_batch_size(catalog, config.batch_size);
        ctx.groups.push(Arc::new(group));
        let rows = drain(op.as_mut(), &mut ctx)?;
        for r in rows {
            out_rows.push(key.concat(&r));
        }
    }
    Ok(SimulationOutcome {
        result: Relation::from_rows_unchecked(out_schema, out_rows),
        outer_rows,
        groups: group_keys.len(),
        misc_bytes,
    })
}

/// The §5.1 `Q_overestimate` workload: the extra work the hash-partition
/// emulation does beyond a real partition phase — building the
/// concatenated miscCols value per row and counting distinct values
/// globally (`select count(distinct(miscCols)) from tmpTable`). §5.1.1
/// subtracts the CPU time of this query from the simulation total; the
/// calibration experiment does the same.
pub fn overestimate_work(
    catalog: &Catalog,
    outer: &LogicalPlan,
    group_cols: &[usize],
) -> Result<usize> {
    let outer_rel = execute_with_config(outer, catalog, &EngineConfig::default())?;
    let mut distinct: HashSet<String> = HashSet::new();
    for (counter, row) in outer_rel.rows().iter().enumerate() {
        let mut misc = String::new();
        for (i, v) in row.values().iter().enumerate() {
            if !group_cols.contains(&i) {
                misc.push_str(&v.render());
                misc.push('|');
            }
        }
        misc.push_str(&counter.to_string());
        distinct.insert(misc);
    }
    Ok(distinct.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute;
    use xmlpub_algebra::TableDef;
    use xmlpub_common::{row, DataType, Field};
    use xmlpub_expr::{AggExpr, Expr};

    fn fixture() -> Catalog {
        let schema =
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Float)]);
        let def = TableDef::new("t", schema);
        let data = Relation::new(
            def.schema.clone(),
            vec![row![1, 10.0], row![2, 5.0], row![1, 30.0], row![2, 7.0], row![1, 20.0]],
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.register(def, data).unwrap();
        cat
    }

    fn q(cat: &Catalog) -> (LogicalPlan, LogicalPlan) {
        let outer = LogicalPlan::scan("t", cat.table("t").unwrap().schema.clone());
        let pgq = LogicalPlan::group_scan(outer.schema())
            .scalar_agg(vec![AggExpr::avg(Expr::col(1), "avg"), AggExpr::count_star("n")]);
        (outer, pgq)
    }

    #[test]
    fn simulation_matches_native_operator_hash() {
        let cat = fixture();
        let (outer, pgq) = q(&cat);
        let native = execute(&outer.clone().gapply(vec![0], pgq.clone()), &cat).unwrap();
        let sim = simulate_gapply(&cat, &outer, &[0], &pgq, PartitionStrategy::Hash).unwrap();
        assert!(sim.result.bag_eq(&native), "{}", sim.result.bag_diff(&native));
        assert_eq!(sim.outer_rows, 5);
        assert_eq!(sim.groups, 2);
        assert!(sim.misc_bytes > 0);
    }

    #[test]
    fn simulation_matches_native_operator_sort() {
        let cat = fixture();
        let (outer, pgq) = q(&cat);
        let native = execute(&outer.clone().gapply(vec![0], pgq.clone()), &cat).unwrap();
        let sim = simulate_gapply(&cat, &outer, &[0], &pgq, PartitionStrategy::Sort).unwrap();
        assert!(sim.result.bag_eq(&native), "{}", sim.result.bag_diff(&native));
        // Sort emulation does not build misc strings.
        assert_eq!(sim.misc_bytes, 0);
        // Sorted keys come out in key order.
        assert_eq!(sim.result.rows()[0].value(0), &Value::Int(1));
    }

    #[test]
    fn empty_outer_produces_empty_result() {
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]);
        let def = TableDef::new("e", schema);
        let data = Relation::empty(def.schema.clone());
        let mut cat = Catalog::new();
        cat.register(def, data).unwrap();
        let outer = LogicalPlan::scan("e", cat.table("e").unwrap().schema.clone());
        let pgq =
            LogicalPlan::group_scan(outer.schema()).scalar_agg(vec![AggExpr::count_star("n")]);
        let sim = simulate_gapply(&cat, &outer, &[0], &pgq, PartitionStrategy::Hash).unwrap();
        assert!(sim.result.is_empty());
        assert_eq!(sim.result.schema().len(), 2);
    }
}
