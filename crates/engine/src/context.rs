//! Execution context: runtime parameter bindings and counters.

use std::fmt::Write as _;
use std::sync::Arc;
use xmlpub_algebra::Catalog;
use xmlpub_common::{Error, Relation, Result, Tuple, DEFAULT_BATCH_SIZE};
use xmlpub_obs::ObsContext;

/// Counters the engine maintains while executing. They make the paper's
/// redundancy argument *measurable*: the classic sorted-outer-union plan
/// for Q1 scans `partsupp ⋈ part` twice and the Q2 plan re-evaluates the
/// average subquery per outer row, all of which shows up in
/// `rows_scanned`, `join_probes` and `apply_inner_executions`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows produced by base-table scans.
    pub rows_scanned: u64,
    /// Rows produced by group (temporary relation) scans.
    pub group_rows_scanned: u64,
    /// Probe-side rows processed by joins.
    pub join_probes: u64,
    /// Number of groups the GApply execution phase processed.
    pub groups_processed: u64,
    /// Per-group query executions (one per group per GApply).
    pub pgq_executions: u64,
    /// Inner-plan executions performed by Apply operators.
    pub apply_inner_executions: u64,
    /// Inner-plan executions Apply answered from its uncorrelated cache.
    pub apply_cache_hits: u64,
    /// Tuples written into sort buffers.
    pub rows_sorted: u64,
    /// Tuples inserted into hash tables (joins, aggregates, distinct,
    /// hash partitioning).
    pub rows_hashed: u64,
    /// Plan-cache hits for this request. The engine itself never sets
    /// this: the serving layer (`xmlpub-server`) stamps it so cache
    /// behaviour surfaces through the same `ExecStats` plumbing as the
    /// engine counters (`\stats`, `\explain --analyze`).
    pub plan_cache_hits: u64,
    /// Plan-cache misses for this request (see `plan_cache_hits`).
    pub plan_cache_misses: u64,
}

impl ExecStats {
    /// Reset all counters.
    pub fn clear(&mut self) {
        *self = ExecStats::default();
    }

    /// Fold another counter set into this one (field-wise sum) — how a
    /// parallel GApply reconciles per-worker counters into the root
    /// context, so a parallel run reports the same totals as a serial
    /// one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.group_rows_scanned += other.group_rows_scanned;
        self.join_probes += other.join_probes;
        self.groups_processed += other.groups_processed;
        self.pgq_executions += other.pgq_executions;
        self.apply_inner_executions += other.apply_inner_executions;
        self.apply_cache_hits += other.apply_cache_hits;
        self.rows_sorted += other.rows_sorted;
        self.rows_hashed += other.rows_hashed;
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_cache_misses += other.plan_cache_misses;
    }

    /// Render the counters that are invariant across engine knobs —
    /// everything except the plan-cache pair, which records how *this*
    /// request was planned (cold vs. warm cache) rather than what the
    /// engine did. Snapshot tests pin this line byte-for-byte across
    /// the whole batch × dop × cache × trace matrix.
    pub fn snapshot_line(&self) -> String {
        format!(
            "rows_scanned={} group_rows_scanned={} join_probes={} groups_processed={} \
             pgq_executions={} apply_inner_executions={} apply_cache_hits={} rows_sorted={} \
             rows_hashed={}",
            self.rows_scanned,
            self.group_rows_scanned,
            self.join_probes,
            self.groups_processed,
            self.pgq_executions,
            self.apply_inner_executions,
            self.apply_cache_hits,
            self.rows_sorted,
            self.rows_hashed
        )
    }
}

/// Per-operator runtime counters, collected when the planner wraps each
/// operator in a [`Profiled`](crate::ops::Profiled) decorator
/// (`EngineConfig::profile_ops`). Indexed by the operator's pre-order
/// position in the physical plan, so the vector renders back into the
/// plan tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpProfile {
    /// Display label (operator name + salient argument).
    pub label: String,
    /// Depth in the plan tree (root = 0); used for rendering and for
    /// attributing child output as parent input.
    pub depth: usize,
    /// `open` calls (GApply re-opens its per-group plan once per group).
    pub opens: u64,
    /// `next_batch` calls, including the final `None`.
    pub next_calls: u64,
    /// `close` calls.
    pub closes: u64,
    /// Non-empty batches produced.
    pub batches: u64,
    /// Total rows produced.
    pub rows_out: u64,
    /// Wall time spent inside this operator's `open`/`next_batch`/
    /// `close` calls, **including** time spent in child operators
    /// (saturating; clock anomalies clamp to 0 per call).
    pub total_ns: u64,
    /// The portion of `total_ns` spent inside *direct child* operator
    /// calls. Each child call's elapsed time is added both to the
    /// child's `total_ns` and to this field of its parent, so the two
    /// sides of the subtraction in [`self_ns`](Self::self_ns) are the
    /// same measured values — exclusive time never double-counts a
    /// nested plan (the per-group subtree under GApply included).
    pub child_ns: u64,
}

impl OpProfile {
    /// Exclusive time: wall time in this operator minus time attributed
    /// to its direct children. Saturating, so measurement jitter can
    /// never produce an underflowed garbage value.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }
}

/// Runtime state threaded through every operator call.
pub struct ExecContext<'a> {
    /// The catalog backing base-table scans.
    pub catalog: &'a Catalog,
    /// Stack of bound relation-valued parameters (`$group`); the
    /// innermost enclosing GApply's group is last.
    pub groups: Vec<Arc<Relation>>,
    /// Stack of Apply outer rows (innermost last) read by
    /// `Expr::Correlated` references.
    pub outers: Vec<Tuple>,
    /// Execution counters.
    pub stats: ExecStats,
    /// Target rows per batch (≥ 1); 1 degenerates to tuple-at-a-time.
    pub batch_size: usize,
    /// Per-operator profiles, indexed by plan pre-order id; empty unless
    /// the plan was built with `profile_ops`.
    pub profiles: Vec<OpProfile>,
    /// Observability handles (metrics + tracing) plus the span to parent
    /// engine spans under. `Default` is fully disabled.
    pub obs: ObsContext,
    /// Plan ids of the `Profiled` frames currently on the call stack
    /// (innermost last); lets a child operator's elapsed time be
    /// attributed to its parent's `child_ns` for exclusive-time
    /// accounting.
    pub op_stack: Vec<usize>,
}

impl<'a> ExecContext<'a> {
    /// A fresh context over a catalog with the default batch size.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self::with_batch_size(catalog, DEFAULT_BATCH_SIZE)
    }

    /// A fresh context with an explicit batch-size target (clamped ≥ 1).
    pub fn with_batch_size(catalog: &'a Catalog, batch_size: usize) -> Self {
        ExecContext {
            catalog,
            groups: Vec::new(),
            outers: Vec::new(),
            stats: ExecStats::default(),
            batch_size: batch_size.max(1),
            profiles: Vec::new(),
            obs: ObsContext::disabled(),
            op_stack: Vec::new(),
        }
    }

    /// The currently bound group relation (innermost GApply).
    pub fn current_group(&self) -> Result<&Arc<Relation>> {
        self.groups.last().ok_or_else(|| {
            Error::exec("no relation-valued parameter bound (GroupScan outside GApply?)")
        })
    }

    /// The profile slot for operator `id`, growing the vector and fixing
    /// the label/depth on first touch.
    pub fn profile_mut(&mut self, id: usize, label: &str, depth: usize) -> &mut OpProfile {
        if id >= self.profiles.len() {
            self.profiles.resize_with(id + 1, OpProfile::default);
        }
        let p = &mut self.profiles[id];
        if p.label.is_empty() {
            p.label = label.to_string();
            p.depth = depth;
        }
        p
    }

    /// Fold per-operator profiles collected by a worker context into
    /// this one. Worker plans are [`clone_op`](crate::ops::PhysicalOp::
    /// clone_op) copies that keep their original plan ids, so counters
    /// land in the same slots `\explain --analyze` renders.
    pub fn merge_profiles(&mut self, other: &[OpProfile]) {
        for (id, p) in other.iter().enumerate() {
            // Untouched slots (ids outside the worker's subplan) carry
            // no label and no counts; skip them so labels/depths of
            // operators the worker never ran stay authoritative.
            if p.label.is_empty() {
                continue;
            }
            let label = p.label.clone();
            let slot = self.profile_mut(id, &label, p.depth);
            slot.opens += p.opens;
            slot.next_calls += p.next_calls;
            slot.closes += p.closes;
            slot.batches += p.batches;
            slot.rows_out += p.rows_out;
            slot.total_ns = slot.total_ns.saturating_add(p.total_ns);
            slot.child_ns = slot.child_ns.saturating_add(p.child_ns);
        }
    }
}

/// Synthesize one trace span per profiled operator under `parent`,
/// reconstructing the plan tree from the profiles' pre-order ids and
/// depths. Operator times are measured by [`Profiled`](crate::ops::
/// Profiled) during execution and emitted here after the fact, so the
/// hot path never touches the tracer. `start_us` is the emission time
/// for every span (only durations are meaningful); `rows_out` is
/// deterministic across DOP, timings are not — consumers normalizing
/// span trees should compare `rows_out` and ignore `*_us`.
pub fn emit_operator_spans(
    tracer: &xmlpub_obs::TraceHandle,
    parent: xmlpub_obs::SpanId,
    profiles: &[OpProfile],
) {
    if !tracer.enabled() {
        return;
    }
    let base = tracer.now_us();
    let mut stack: Vec<(usize, xmlpub_obs::SpanId)> = Vec::new();
    for p in profiles {
        if p.label.is_empty() {
            continue;
        }
        while stack.last().is_some_and(|&(d, _)| d >= p.depth) {
            stack.pop();
        }
        let span_parent = stack.last().map_or(parent, |&(_, id)| id);
        let id = tracer.emit_span(
            &format!("op:{}", p.label),
            span_parent,
            base,
            p.total_ns / 1_000,
            &[
                ("rows_out", &p.rows_out.to_string()),
                ("self_us", &(p.self_ns() / 1_000).to_string()),
            ],
        );
        stack.push((p.depth, id));
    }
}

/// Render collected per-operator profiles as an indented plan tree with
/// `rows_in` computed from each operator's immediate children.
pub fn render_profiles(profiles: &[OpProfile]) -> String {
    let mut out = String::new();
    for (i, p) in profiles.iter().enumerate() {
        // Immediate children: the ops that follow in pre-order at
        // depth + 1, up to the next op at our depth or shallower.
        let mut rows_in = 0u64;
        for c in &profiles[i + 1..] {
            if c.depth <= p.depth {
                break;
            }
            if c.depth == p.depth + 1 {
                rows_in += c.rows_out;
            }
        }
        let _ = writeln!(
            out,
            "{:indent$}{}  rows_in={} rows_out={} batches={} open={} next={} close={} \
             time_us={} self_us={}",
            "",
            p.label,
            rows_in,
            p.rows_out,
            p.batches,
            p.opens,
            p.next_calls,
            p.closes,
            p.total_ns / 1_000,
            p.self_ns() / 1_000,
            indent = 2 * p.depth,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_common::{row, DataType, Field, Schema};

    #[test]
    fn current_group_requires_binding() {
        let cat = Catalog::new();
        let mut ctx = ExecContext::new(&cat);
        assert!(ctx.current_group().is_err());
        let rel = Relation::new(Schema::new(vec![Field::new("x", DataType::Int)]), vec![row![1]])
            .unwrap();
        ctx.groups.push(Arc::new(rel));
        assert_eq!(ctx.current_group().unwrap().len(), 1);
    }

    #[test]
    fn stats_clear() {
        let mut s = ExecStats { rows_scanned: 5, ..Default::default() };
        s.clear();
        assert_eq!(s, ExecStats::default());
    }

    #[test]
    fn batch_size_defaults_and_clamps() {
        let cat = Catalog::new();
        assert_eq!(ExecContext::new(&cat).batch_size, DEFAULT_BATCH_SIZE);
        assert_eq!(ExecContext::with_batch_size(&cat, 0).batch_size, 1);
        assert_eq!(ExecContext::with_batch_size(&cat, 7).batch_size, 7);
    }

    #[test]
    fn profiles_grow_and_render() {
        let cat = Catalog::new();
        let mut ctx = ExecContext::new(&cat);
        ctx.profile_mut(1, "TableScan(t)", 1).rows_out = 10;
        ctx.profile_mut(0, "Filter", 0).rows_out = 4;
        let text = render_profiles(&ctx.profiles);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("Filter"), "{text}");
        assert!(lines[0].contains("rows_in=10"), "{text}");
        assert!(lines[1].starts_with("  TableScan(t)"), "{text}");
        assert!(lines[1].contains("rows_in=0"), "{text}");
    }
}
