//! Execution context: runtime parameter bindings and counters.

use std::sync::Arc;
use xmlpub_algebra::Catalog;
use xmlpub_common::{Error, Relation, Result, Tuple};

/// Counters the engine maintains while executing. They make the paper's
/// redundancy argument *measurable*: the classic sorted-outer-union plan
/// for Q1 scans `partsupp ⋈ part` twice and the Q2 plan re-evaluates the
/// average subquery per outer row, all of which shows up in
/// `rows_scanned`, `join_probes` and `apply_inner_executions`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows produced by base-table scans.
    pub rows_scanned: u64,
    /// Rows produced by group (temporary relation) scans.
    pub group_rows_scanned: u64,
    /// Probe-side rows processed by joins.
    pub join_probes: u64,
    /// Number of groups the GApply execution phase processed.
    pub groups_processed: u64,
    /// Per-group query executions (one per group per GApply).
    pub pgq_executions: u64,
    /// Inner-plan executions performed by Apply operators.
    pub apply_inner_executions: u64,
    /// Inner-plan executions Apply answered from its uncorrelated cache.
    pub apply_cache_hits: u64,
    /// Tuples written into sort buffers.
    pub rows_sorted: u64,
    /// Tuples inserted into hash tables (joins, aggregates, distinct,
    /// hash partitioning).
    pub rows_hashed: u64,
}

impl ExecStats {
    /// Reset all counters.
    pub fn clear(&mut self) {
        *self = ExecStats::default();
    }
}

/// Runtime state threaded through every operator call.
pub struct ExecContext<'a> {
    /// The catalog backing base-table scans.
    pub catalog: &'a Catalog,
    /// Stack of bound relation-valued parameters (`$group`); the
    /// innermost enclosing GApply's group is last.
    pub groups: Vec<Arc<Relation>>,
    /// Stack of Apply outer rows (innermost last) read by
    /// `Expr::Correlated` references.
    pub outers: Vec<Tuple>,
    /// Execution counters.
    pub stats: ExecStats,
}

impl<'a> ExecContext<'a> {
    /// A fresh context over a catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        ExecContext { catalog, groups: Vec::new(), outers: Vec::new(), stats: ExecStats::default() }
    }

    /// The currently bound group relation (innermost GApply).
    pub fn current_group(&self) -> Result<&Arc<Relation>> {
        self.groups.last().ok_or_else(|| {
            Error::exec("no relation-valued parameter bound (GroupScan outside GApply?)")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_common::{row, DataType, Field, Schema};

    #[test]
    fn current_group_requires_binding() {
        let cat = Catalog::new();
        let mut ctx = ExecContext::new(&cat);
        assert!(ctx.current_group().is_err());
        let rel = Relation::new(Schema::new(vec![Field::new("x", DataType::Int)]), vec![row![1]])
            .unwrap();
        ctx.groups.push(Arc::new(rel));
        assert_eq!(ctx.current_group().unwrap().len(), 1);
    }

    #[test]
    fn stats_clear() {
        let mut s = ExecStats { rows_scanned: 5, ..Default::default() };
        s.clear();
        assert_eq!(s, ExecStats::default());
    }
}
