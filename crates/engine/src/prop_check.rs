//! Debug-mode runtime validation of statically inferred plan properties.
//!
//! When [`EngineConfig::check_props`](crate::EngineConfig::check_props)
//! is on (`XMLPUB_CHECK_PROPS=1`), the executor derives
//! [`PlanProperties`] for the plan it is about to run and asserts every
//! inferred fact against the actual result stream: candidate keys stay
//! duplicate-free, the derived sort order holds across batch boundaries,
//! non-nullable columns never produce NULL, and the final row count
//! lands inside the derived cardinality interval. A violation means a
//! transfer function (or an operator) is wrong and surfaces as an
//! execution error naming the broken property — the runtime half of the
//! differential oracle, complementing the lint pass's re-derivations.

use std::cmp::Ordering;
use std::collections::HashSet;
use xmlpub_analysis::PlanProperties;
use xmlpub_common::{ColumnVec, Error, Result, Tuple, TupleBatch, Value};

/// Stop tracking key uniqueness once this many rows have been
/// remembered, so the checker cannot hold a large result in memory
/// twice. Order, nullability and cardinality checks are O(1) per row
/// and stay active regardless.
const KEY_TRACK_LIMIT: usize = 1 << 20;

/// Asserts a stream of batches against statically derived properties.
pub struct PropChecker {
    props: PlanProperties,
    rows_seen: u64,
    last_row: Option<Tuple>,
    /// One seen-set per derived candidate key (same index as
    /// `props.keys`), or `None` once the tracking limit is hit.
    key_seen: Option<Vec<HashSet<Vec<Value>>>>,
}

impl PropChecker {
    /// A checker for a stream claimed to satisfy `props`.
    pub fn new(props: PlanProperties) -> Self {
        let key_seen = Some(props.keys.iter().map(|_| HashSet::new()).collect());
        PropChecker { props, rows_seen: 0, last_row: None, key_seen }
    }

    /// Validate one batch (call in stream order).
    pub fn observe(&mut self, batch: &TupleBatch) -> Result<()> {
        // Columnar fast paths: when the batch already carries column
        // vectors, arity is a batch property and a non-nullable column
        // whose null bitmap is clean needs no per-row NULL probing at
        // all — only when some derived non-nullable column actually
        // carries a null does the per-row check run (to name the
        // offending row in order). Row-primary batches keep the per-row
        // checks; the checker never forces a columnification just to
        // validate.
        let (check_arity, check_nulls) = match batch.columnar() {
            Some(cols) => {
                if !batch.is_empty() && cols.len() != self.props.arity {
                    return Err(self.violation(format!(
                        "row has {} columns, derived arity is {}",
                        cols.len(),
                        self.props.arity
                    )));
                }
                let nulls =
                    self.props.nullable.iter().enumerate().any(|(c, nullable)| {
                        !nullable && cols.get(c).is_some_and(ColumnVec::any_null)
                    });
                (false, nulls)
            }
            None => (true, true),
        };
        for row in batch.rows() {
            self.observe_row(row, check_arity, check_nulls)?;
        }
        self.rows_seen += batch.len() as u64;
        if let Some(hi) = self.props.cardinality.hi {
            if self.rows_seen > hi {
                return Err(self.violation(format!(
                    "produced {} rows, exceeding the derived cardinality {}",
                    self.rows_seen, self.props.cardinality
                )));
            }
        }
        if self
            .key_seen
            .as_ref()
            .is_some_and(|s| s.iter().map(HashSet::len).sum::<usize>() > KEY_TRACK_LIMIT)
        {
            self.key_seen = None;
        }
        Ok(())
    }

    /// Validate clean exhaustion of the stream (the lower cardinality
    /// bound can only be judged once every row has been produced).
    pub fn finish(&self) -> Result<()> {
        if self.rows_seen < self.props.cardinality.lo {
            return Err(self.violation(format!(
                "produced {} rows, below the derived cardinality {}",
                self.rows_seen, self.props.cardinality
            )));
        }
        Ok(())
    }

    fn observe_row(&mut self, row: &Tuple, check_arity: bool, check_nulls: bool) -> Result<()> {
        if check_arity && row.len() != self.props.arity {
            return Err(self.violation(format!(
                "row has {} columns, derived arity is {}",
                row.len(),
                self.props.arity
            )));
        }
        if check_nulls {
            for (col, nullable) in self.props.nullable.iter().enumerate() {
                if !nullable && matches!(row.value(col), Value::Null) {
                    return Err(self.violation(format!(
                        "column #{col} was derived non-nullable but produced NULL"
                    )));
                }
            }
        }
        if let Some(prev) = &self.last_row {
            for key in &self.props.order {
                match prev.value(key.col).total_cmp(row.value(key.col)) {
                    Ordering::Equal => continue,
                    Ordering::Less if key.asc => break,
                    Ordering::Greater if !key.asc => break,
                    _ => {
                        return Err(self.violation(format!(
                            "rows out of the derived sort order at column {key}"
                        )))
                    }
                }
            }
        }
        if let Some(seen) = &mut self.key_seen {
            for (key, set) in self.props.keys.iter().zip(seen.iter_mut()) {
                let projected: Vec<Value> = key.iter().map(|c| row.value(c).clone()).collect();
                if !set.insert(projected) {
                    let shown = key.to_string();
                    return Err(self.violation(format!(
                        "two rows agree on the derived candidate key {shown}"
                    )));
                }
            }
        }
        self.last_row = Some(row.clone());
        Ok(())
    }

    fn violation(&self, msg: String) -> Error {
        Error::exec(format!("property check failed: {msg} (derived: {})", self.props.summary()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_analysis::{CardRange, OrderKey};
    use xmlpub_common::{row, DataType, Field, Schema};

    fn props2() -> PlanProperties {
        let mut p = PlanProperties::bottom(2);
        p.add_key(std::iter::once(0).collect());
        p.order = vec![OrderKey::asc(0)];
        p.nullable = vec![false, true];
        p.cardinality = CardRange::between(1, 3);
        p
    }

    fn batch(rows: Vec<Tuple>) -> TupleBatch {
        let schema =
            Schema::new(vec![Field::new("a", DataType::Int), Field::new("b", DataType::Int)]);
        TupleBatch::new(schema, rows)
    }

    #[test]
    fn clean_stream_passes() {
        let mut c = PropChecker::new(props2());
        c.observe(&batch(vec![row![1, Value::Null], row![2, 5]])).unwrap();
        c.observe(&batch(vec![row![3, 5]])).unwrap();
        c.finish().unwrap();
    }

    #[test]
    fn duplicate_key_is_caught() {
        let mut c = PropChecker::new(props2());
        let err = c.observe(&batch(vec![row![1, 1], row![1, 2]])).unwrap_err();
        assert!(err.to_string().contains("candidate key"), "{err}");
    }

    #[test]
    fn order_violation_is_caught_across_batches() {
        let mut c = PropChecker::new(props2());
        c.observe(&batch(vec![row![2, 1]])).unwrap();
        let err = c.observe(&batch(vec![row![1, 1]])).unwrap_err();
        assert!(err.to_string().contains("sort order"), "{err}");
    }

    #[test]
    fn null_in_nonnull_column_is_caught() {
        let mut c = PropChecker::new(props2());
        let err = c.observe(&batch(vec![row![Value::Null, 1]])).unwrap_err();
        assert!(err.to_string().contains("non-nullable"), "{err}");
        // Same violation through the columnar bitmap fast path.
        let b = batch(vec![row![Value::Null, 1]]);
        let cb = TupleBatch::from_columns(b.schema().clone(), b.columns().to_vec(), b.len());
        let err = PropChecker::new(props2()).observe(&cb).unwrap_err();
        assert!(err.to_string().contains("non-nullable"), "{err}");
    }

    #[test]
    fn arity_mismatch_is_caught_for_both_representations() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
            Field::new("c", DataType::Int),
        ]);
        // Row-primary: caught by the per-row check.
        let wide = TupleBatch::new(schema.clone(), vec![row![1, 2, 3]]);
        let err = PropChecker::new(props2()).observe(&wide).unwrap_err();
        assert!(err.to_string().contains("derived arity"), "{err}");
        // Column-primary: caught once at the batch level.
        let cols = TupleBatch::from_columns(schema, wide.columns().to_vec(), wide.len());
        let err = PropChecker::new(props2()).observe(&cols).unwrap_err();
        assert!(err.to_string().contains("derived arity"), "{err}");
    }

    #[test]
    fn cardinality_bounds_are_enforced() {
        let mut c = PropChecker::new(props2());
        let err =
            c.observe(&batch(vec![row![1, 1], row![2, 1], row![3, 1], row![4, 1]])).unwrap_err();
        assert!(err.to_string().contains("exceeding"), "{err}");

        let c = PropChecker::new(props2());
        let err = c.finish().unwrap_err();
        assert!(err.to_string().contains("below"), "{err}");
    }
}
