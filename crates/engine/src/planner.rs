//! Logical → physical lowering.
//!
//! The lowering is deliberately mechanical — plan *shape* decisions
//! belong to the optimizer crate. The only physical choices made here
//! are (a) hash join vs nested loops, picked by whether the join
//! predicate contains clean equi-conjuncts, and (b) the GApply partition
//! strategy and the Apply uncorrelated-inner cache, both taken from
//! [`EngineConfig`] so benches can ablate them.

use crate::ops::{
    ApplyOp, BoxedOp, ExistsOp, Filter, GApplyOp, GroupScan, HashAggregate, HashDistinct, HashJoin,
    NestedLoopJoin, PartitionStrategy, Profiled, Project, ScalarAggregate, Sort, TableScan,
    UnionAll,
};
use crate::parallel::ParallelConfig;
use xmlpub_algebra::LogicalPlan;
use xmlpub_common::{Result, DEFAULT_BATCH_SIZE};
use xmlpub_expr::{conjunction, conjuncts, BinOp, Expr};

/// Engine-level configuration (physical knobs only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// How GApply partitions its input (§3: "either through sorting or
    /// through hashing").
    pub partition_strategy: PartitionStrategy,
    /// Cache the result of uncorrelated Apply inners across outer rows.
    pub cache_uncorrelated_apply: bool,
    /// Memoize correlated Apply inners keyed on the outer-row columns
    /// they actually read — the common-subexpression spool a
    /// decorrelating optimizer (e.g. SQL Server 2000's) effectively
    /// gives correlated subqueries. Without it the §2 classic plans
    /// degenerate to per-row re-execution, which would wildly overstate
    /// the paper's Figure 8 speedups.
    pub memoize_correlated_apply: bool,
    /// Target rows per batch; 1 degenerates to tuple-at-a-time (the A/B
    /// baseline for the vectorization refactor).
    pub batch_size: usize,
    /// Wrap every operator in a profiling decorator collecting
    /// per-operator counters (`\explain --analyze`).
    pub profile_ops: bool,
    /// Degree of intra-query parallelism for GApply: worker threads the
    /// execution (and large-input partition) phase may use. 1 = serial.
    /// The default honours the `XMLPUB_DOP` environment variable so CI
    /// can force the whole suite through the parallel path.
    pub dop: usize,
    /// Derive `xmlpub-analysis` plan properties before execution and
    /// assert them against every produced batch (keys, order,
    /// nullability, cardinality). A debugging oracle for the analyzer's
    /// transfer functions; the default honours `XMLPUB_CHECK_PROPS` so
    /// CI can force the whole suite through the checked path.
    pub check_props: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            partition_strategy: PartitionStrategy::Hash,
            cache_uncorrelated_apply: true,
            memoize_correlated_apply: true,
            batch_size: DEFAULT_BATCH_SIZE,
            profile_ops: false,
            dop: default_dop(),
            check_props: default_check_props(),
        }
    }
}

/// The default property-checking mode: on iff `XMLPUB_CHECK_PROPS` is
/// set to something other than `0` or the empty string. Read once per
/// process.
fn default_check_props() -> bool {
    static CHECK: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *CHECK.get_or_init(|| {
        std::env::var("XMLPUB_CHECK_PROPS").is_ok_and(|v| !v.is_empty() && v != "0")
    })
}

/// The default degree of parallelism: `XMLPUB_DOP` when set to a
/// positive integer, else 1 (serial). Read once per process.
fn default_dop() -> usize {
    static DOP: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DOP.get_or_init(|| {
        std::env::var("XMLPUB_DOP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

/// Translates validated logical plans to physical operator trees.
#[derive(Debug, Default, Clone, Copy)]
pub struct PhysicalPlanner {
    /// The configuration applied to every operator this planner builds.
    pub config: EngineConfig,
}

impl PhysicalPlanner {
    /// A planner with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        PhysicalPlanner { config }
    }

    /// Lower a logical plan. The plan should already be validated.
    pub fn plan(&self, plan: &LogicalPlan) -> Result<BoxedOp> {
        let mut next_id = 0;
        self.lower(plan, 0, &mut next_id)
    }

    /// Recursive lowering. `depth` and the pre-order `next_id` counter
    /// only matter when `profile_ops` wraps the built operators — the ids
    /// key the per-operator counter slots in the execution context.
    fn lower(&self, plan: &LogicalPlan, depth: usize, next_id: &mut usize) -> Result<BoxedOp> {
        let id = *next_id;
        *next_id += 1;
        let child_depth = depth + 1;
        let op: BoxedOp = match plan {
            LogicalPlan::Scan { table, schema } => {
                Box::new(TableScan::new(table.clone(), schema.clone()))
            }
            LogicalPlan::GroupScan { schema } => Box::new(GroupScan::new(schema.clone())),
            LogicalPlan::Select { input, predicate } => Box::new(Filter::with_parallel(
                self.lower(input, child_depth, next_id)?,
                predicate.clone(),
                ParallelConfig::with_dop(self.config.dop),
            )),
            LogicalPlan::Project { input, items } => Box::new(Project::with_parallel(
                self.lower(input, child_depth, next_id)?,
                items.clone(),
                ParallelConfig::with_dop(self.config.dop),
            )),
            LogicalPlan::Join { left, right, predicate, .. } => {
                let left_len = left.schema().len();
                let l = self.lower(left, child_depth, next_id)?;
                let r = self.lower(right, child_depth, next_id)?;
                match split_equi_join(predicate, left_len) {
                    Some((lk, rk, residual)) => Box::new(HashJoin::with_parallel(
                        l,
                        r,
                        lk,
                        rk,
                        residual,
                        false,
                        ParallelConfig::with_dop(self.config.dop),
                    )),
                    None => Box::new(NestedLoopJoin::new(l, r, predicate.clone())),
                }
            }
            LogicalPlan::LeftOuterJoin { left, right, predicate } => {
                let left_len = left.schema().len();
                let l = self.lower(left, child_depth, next_id)?;
                let r = self.lower(right, child_depth, next_id)?;
                match split_equi_join(predicate, left_len) {
                    Some((lk, rk, residual)) => Box::new(HashJoin::with_parallel(
                        l,
                        r,
                        lk,
                        rk,
                        residual,
                        true,
                        ParallelConfig::with_dop(self.config.dop),
                    )),
                    None => {
                        return Err(xmlpub_common::Error::plan(
                            "left outer join requires an equi-join predicate",
                        ))
                    }
                }
            }
            LogicalPlan::GApply { input, group_cols, pgq } => Box::new(GApplyOp::with_parallel(
                self.lower(input, child_depth, next_id)?,
                group_cols.clone(),
                self.lower(pgq, child_depth, next_id)?,
                self.config.partition_strategy,
                ParallelConfig::with_dop(self.config.dop),
            )),
            LogicalPlan::GroupBy { input, keys, aggs } => Box::new(HashAggregate::with_parallel(
                self.lower(input, child_depth, next_id)?,
                keys.clone(),
                aggs.clone(),
                ParallelConfig::with_dop(self.config.dop),
            )),
            LogicalPlan::ScalarAgg { input, aggs } => Box::new(ScalarAggregate::new(
                self.lower(input, child_depth, next_id)?,
                aggs.clone(),
            )),
            LogicalPlan::UnionAll { inputs } => {
                let branches = inputs
                    .iter()
                    .map(|i| self.lower(i, child_depth, next_id))
                    .collect::<Result<Vec<_>>>()?;
                Box::new(UnionAll::new(branches))
            }
            LogicalPlan::Distinct { input } => {
                Box::new(HashDistinct::new(self.lower(input, child_depth, next_id)?))
            }
            LogicalPlan::OrderBy { input, keys } => {
                Box::new(Sort::new(self.lower(input, child_depth, next_id)?, keys.clone()))
            }
            LogicalPlan::Apply { outer, inner, mode } => {
                let mut corr_cols = Vec::new();
                collect_outer_columns(inner, 0, &mut corr_cols);
                corr_cols.sort_unstable();
                corr_cols.dedup();
                Box::new(ApplyOp::new(
                    self.lower(outer, child_depth, next_id)?,
                    self.lower(inner, child_depth, next_id)?,
                    *mode,
                    corr_cols,
                    self.config.cache_uncorrelated_apply,
                    self.config.memoize_correlated_apply,
                ))
            }
            LogicalPlan::Exists { input, negated } => {
                Box::new(ExistsOp::new(self.lower(input, child_depth, next_id)?, *negated))
            }
        };
        Ok(if self.config.profile_ops {
            Box::new(Profiled::new(op, id, op_label(plan, &self.config), depth))
        } else {
            op
        })
    }
}

/// The display label for the physical operator a logical node lowers to.
fn op_label(plan: &LogicalPlan, config: &EngineConfig) -> String {
    match plan {
        LogicalPlan::Scan { table, .. } => format!("TableScan({table})"),
        LogicalPlan::GroupScan { .. } => "GroupScan".into(),
        LogicalPlan::Select { .. } => "Filter".into(),
        LogicalPlan::Project { .. } => "Project".into(),
        LogicalPlan::Join { left, predicate, .. } => {
            match split_equi_join(predicate, left.schema().len()) {
                Some(_) => "HashJoin".into(),
                None => "NestedLoopJoin".into(),
            }
        }
        LogicalPlan::LeftOuterJoin { .. } => "HashJoin[left-outer]".into(),
        LogicalPlan::GApply { .. } => match config.partition_strategy {
            PartitionStrategy::Hash => "GApply[hash]".into(),
            PartitionStrategy::Sort => "GApply[sort]".into(),
        },
        LogicalPlan::GroupBy { .. } => "HashAggregate".into(),
        LogicalPlan::ScalarAgg { .. } => "ScalarAggregate".into(),
        LogicalPlan::UnionAll { .. } => "UnionAll".into(),
        LogicalPlan::Distinct { .. } => "HashDistinct".into(),
        LogicalPlan::OrderBy { .. } => "Sort".into(),
        LogicalPlan::Apply { mode, .. } => format!("Apply[{mode:?}]"),
        LogicalPlan::Exists { negated: false, .. } => "Exists".into(),
        LogicalPlan::Exists { negated: true, .. } => "NotExists".into(),
    }
}

/// Split a join predicate into hash keys and a residual. Returns `None`
/// when no equi-conjunct of the form `left.col = right.col` exists.
fn split_equi_join(
    predicate: &Expr,
    left_len: usize,
) -> Option<(Vec<usize>, Vec<usize>, Option<Expr>)> {
    let mut left_keys = Vec::new();
    let mut right_keys = Vec::new();
    let mut residual = Vec::new();
    for c in conjuncts(predicate) {
        match &c {
            Expr::Binary { op: BinOp::Eq, left, right } => {
                match (&**left, &**right) {
                    (Expr::Column(a), Expr::Column(b)) if *a < left_len && *b >= left_len => {
                        left_keys.push(*a);
                        right_keys.push(*b - left_len);
                        continue;
                    }
                    (Expr::Column(a), Expr::Column(b)) if *b < left_len && *a >= left_len => {
                        left_keys.push(*b);
                        right_keys.push(*a - left_len);
                        continue;
                    }
                    _ => {}
                }
                residual.push(c);
            }
            _ => residual.push(c),
        }
    }
    if left_keys.is_empty() {
        return None;
    }
    let residual = if residual.is_empty() { None } else { Some(conjunction(residual)) };
    Some((left_keys, right_keys, residual))
}

/// Collect the outer-row columns that `plan` reads through correlated
/// references escaping to the apply `level` levels above it.
fn collect_outer_columns(plan: &LogicalPlan, level: usize, out: &mut Vec<usize>) {
    let mut exprs: Vec<&Expr> = Vec::new();
    match plan {
        LogicalPlan::Select { predicate, .. } => exprs.push(predicate),
        LogicalPlan::Project { items, .. } => exprs.extend(items.iter().map(|i| &i.expr)),
        LogicalPlan::Join { predicate, .. } => exprs.push(predicate),
        LogicalPlan::GroupBy { aggs, .. } | LogicalPlan::ScalarAgg { aggs, .. } => {
            exprs.extend(aggs.iter().filter_map(|a| a.arg.as_ref()))
        }
        LogicalPlan::OrderBy { keys, .. } => exprs.extend(keys.iter().map(|k| &k.expr)),
        _ => {}
    }
    for e in exprs {
        e.visit(&mut |node| {
            if let Expr::Correlated { level: l, index } = node {
                if *l == level {
                    out.push(*index);
                }
            }
        });
    }
    match plan {
        // An Apply inside this subtree adds one level of nesting for
        // *its* inner child.
        LogicalPlan::Apply { outer, inner, .. } => {
            collect_outer_columns(outer, level, out);
            collect_outer_columns(inner, level + 1, out);
        }
        other => {
            for c in other.children() {
                collect_outer_columns(c, level, out);
            }
        }
    }
}

/// Does `plan` contain a correlated reference that escapes to the apply
/// `level` levels above it?
#[cfg_attr(not(test), allow(dead_code))]
fn references_outer_level(plan: &LogicalPlan, level: usize) -> bool {
    let mut cols = Vec::new();
    collect_outer_columns(plan, level, &mut cols);
    !cols.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_algebra::ApplyMode;
    use xmlpub_common::{DataType, Field, Schema};
    use xmlpub_expr::AggExpr;

    fn schema2() -> Schema {
        Schema::new(vec![Field::new("a", DataType::Int), Field::new("b", DataType::Int)])
    }

    #[test]
    fn equi_join_split() {
        // a0 = b0 (i.e. col0 = col2 with left_len 2) and residual a1 > b1.
        let pred = Expr::col(0).eq(Expr::col(2)).and(Expr::col(1).gt(Expr::col(3)));
        let (lk, rk, residual) = split_equi_join(&pred, 2).unwrap();
        assert_eq!(lk, vec![0]);
        assert_eq!(rk, vec![0]);
        assert!(residual.is_some());

        // Reversed operand order still splits.
        let pred = Expr::col(3).eq(Expr::col(1));
        let (lk, rk, residual) = split_equi_join(&pred, 2).unwrap();
        assert_eq!(lk, vec![1]);
        assert_eq!(rk, vec![1]);
        assert!(residual.is_none());

        // Pure inequality does not.
        assert!(split_equi_join(&Expr::col(0).lt(Expr::col(2)), 2).is_none());
        // Same-side equality is residual, not a key.
        assert!(split_equi_join(&Expr::col(0).eq(Expr::col(1)), 2).is_none());
    }

    #[test]
    fn correlation_detection() {
        let uncorrelated =
            LogicalPlan::group_scan(schema2()).scalar_agg(vec![AggExpr::avg(Expr::col(1), "a")]);
        assert!(!references_outer_level(&uncorrelated, 0));

        let correlated = LogicalPlan::group_scan(schema2())
            .select(Expr::col(0).eq(Expr::Correlated { level: 0, index: 0 }));
        assert!(references_outer_level(&correlated, 0));

        // A nested apply shifts the level: the inner's level-1 reference
        // escapes to our level 0.
        let nested_inner = LogicalPlan::group_scan(schema2())
            .select(Expr::col(0).eq(Expr::Correlated { level: 1, index: 0 }));
        let nested = LogicalPlan::group_scan(schema2()).apply(nested_inner, ApplyMode::Cross);
        assert!(references_outer_level(&nested, 0));

        // While a level-0 reference inside the nested apply's inner binds
        // to the *nested* apply, not ours.
        let local_inner = LogicalPlan::group_scan(schema2())
            .select(Expr::col(0).eq(Expr::Correlated { level: 0, index: 0 }));
        let nested = LogicalPlan::group_scan(schema2()).apply(local_inner, ApplyMode::Cross);
        assert!(!references_outer_level(&nested, 0));
    }
}
