//! Engine integration tests: deep operator pipelines, empty inputs,
//! error propagation, and GApply in unusual (but legal) positions.

use xmlpub_algebra::{
    plan::null_item, ApplyMode, Catalog, LogicalPlan, ProjectItem, SortKey, TableDef,
};
use xmlpub_common::{row, DataType, Field, Relation, Schema, Value};
use xmlpub_engine::{execute, execute_with_config, EngineConfig, PartitionStrategy};
use xmlpub_expr::{AggExpr, Expr};

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    let def = TableDef::new(
        "sales",
        Schema::new(vec![
            Field::new("region", DataType::Str),
            Field::new("store", DataType::Int),
            Field::new("amount", DataType::Float),
        ]),
    );
    let data = Relation::new(
        def.schema.clone(),
        vec![
            row!["east", 1, 100.0],
            row!["east", 1, 50.0],
            row!["east", 2, 75.0],
            row!["west", 3, 300.0],
            row!["west", 3, 25.0],
        ],
    )
    .unwrap();
    cat.register(def, data).unwrap();

    let def = TableDef::new("empty", Schema::new(vec![Field::new("x", DataType::Int)]));
    cat.register(def.clone(), Relation::empty(def.schema.clone())).unwrap();
    cat
}

fn sales(cat: &Catalog) -> LogicalPlan {
    LogicalPlan::scan("sales", cat.table("sales").unwrap().schema.clone())
}

#[test]
fn deep_pipeline_through_every_operator() {
    let cat = catalog();
    // GApply per region: per store subtotals above the region average,
    // sorted, deduplicated, unioned with a count row, projected.
    let gschema = sales(&cat).schema();
    let gs = || LogicalPlan::group_scan(gschema.clone());
    let per_store = gs()
        .group_by(vec![1], vec![AggExpr::sum(Expr::col(2), "total")])
        .order_by(vec![SortKey::desc(1)])
        .project(vec![ProjectItem::col(0), ProjectItem::col(1)])
        .distinct();
    let count_row = gs()
        .scalar_agg(vec![AggExpr::count_star("n")])
        .project(vec![ProjectItem::col(0), null_item("total")]);
    let pgq = LogicalPlan::union_all(vec![per_store, count_row]);
    let plan = sales(&cat).gapply(vec![0], pgq);
    let result = execute(&plan, &cat).unwrap();
    let n = Value::Null;
    let expected = Relation::new(
        result.schema().clone(),
        vec![
            row!["east", 1, 150.0],
            row!["east", 2, 75.0],
            row!["east", 3, n.clone()],
            row!["west", 3, 325.0],
            row!["west", 2, n.clone()],
        ],
    )
    .unwrap();
    assert!(result.bag_eq(&expected), "{}", result.bag_diff(&expected));
}

#[test]
fn gapply_over_empty_table_is_empty() {
    let cat = catalog();
    let schema = cat.table("empty").unwrap().schema.clone();
    let pgq = LogicalPlan::group_scan(schema.clone()).scalar_agg(vec![AggExpr::count_star("n")]);
    let plan = LogicalPlan::scan("empty", schema).gapply(vec![0], pgq);
    for strategy in [PartitionStrategy::Hash, PartitionStrategy::Sort] {
        let config = EngineConfig { partition_strategy: strategy, ..Default::default() };
        let r = execute_with_config(&plan, &cat, &config).unwrap();
        assert!(r.is_empty());
    }
}

#[test]
fn gapply_inside_apply_inner_is_legal_and_correct() {
    // An Apply whose inner runs a GApply over a base table — legal as
    // long as the GApply is not inside a per-group query.
    let cat = catalog();
    let gschema = sales(&cat).schema();
    let inner_gapply = sales(&cat)
        .select(Expr::col(0).eq(Expr::Correlated { level: 0, index: 0 }))
        .gapply(
            vec![1],
            LogicalPlan::group_scan(gschema.clone())
                .scalar_agg(vec![AggExpr::sum(Expr::col(2), "t")]),
        )
        .scalar_agg(vec![AggExpr::max(Expr::col(1), "best_store_total")]);
    let outer = sales(&cat).project_cols(&[0]).distinct();
    let plan = outer.apply(inner_gapply, ApplyMode::Scalar);
    let result = execute(&plan, &cat).unwrap();
    let expected =
        Relation::new(result.schema().clone(), vec![row!["east", 150.0], row!["west", 325.0]])
            .unwrap();
    assert!(result.bag_eq(&expected), "{}", result.bag_diff(&expected));
}

#[test]
fn type_errors_propagate_from_deep_in_the_tree() {
    let cat = catalog();
    // LIKE over a float column fails at execution, inside a PGQ, inside
    // a union branch.
    let gschema = sales(&cat).schema();
    let bad = LogicalPlan::group_scan(gschema.clone()).select(Expr::Like {
        expr: Box::new(Expr::col(2)),
        pattern: "x%".into(),
        negated: false,
    });
    let ok = LogicalPlan::group_scan(gschema.clone());
    let plan = sales(&cat).gapply(vec![0], LogicalPlan::union_all(vec![ok, bad]));
    let err = execute(&plan, &cat).unwrap_err();
    assert!(err.to_string().contains("LIKE"), "{err}");
}

#[test]
fn nested_applies_two_levels_deep() {
    let cat = catalog();
    // For each region row, count rows in the same region with amount
    // above the store's own total... exercised via two nested applies
    // with level-0 and level-1 correlated references.
    let inner_most = sales(&cat).select(
        Expr::col(0)
            .eq(Expr::Correlated { level: 1, index: 0 }) // outermost region
            .and(Expr::col(2).gt(Expr::Correlated { level: 0, index: 2 })), // middle amount
    );
    let middle = sales(&cat)
        .select(Expr::col(0).eq(Expr::Correlated { level: 0, index: 0 }))
        .apply(inner_most.scalar_agg(vec![AggExpr::count_star("above")]), ApplyMode::Scalar)
        .scalar_agg(vec![AggExpr::max(Expr::col(3), "max_above")]);
    let plan = sales(&cat).project_cols(&[0]).distinct().apply(middle, ApplyMode::Scalar);
    let result = execute(&plan, &cat).unwrap();
    // east: amounts 100,50,75 → counts above each: 0,2,1 → max 2
    // west: amounts 300,25 → counts above each: 0,1 → max 1
    let expected =
        Relation::new(result.schema().clone(), vec![row!["east", 2], row!["west", 1]]).unwrap();
    assert!(result.bag_eq(&expected), "{}", result.bag_diff(&expected));
}

#[test]
fn order_by_inside_pgq_orders_within_each_group() {
    let cat = catalog();
    let gschema = sales(&cat).schema();
    let pgq = LogicalPlan::group_scan(gschema.clone())
        .order_by(vec![SortKey::desc(2)])
        .project_cols(&[2]);
    let config = EngineConfig { partition_strategy: PartitionStrategy::Sort, ..Default::default() };
    let plan = sales(&cat).gapply(vec![0], pgq);
    let r = execute_with_config(&plan, &cat, &config).unwrap();
    // Sort partitioning → regions in key order; within each region the
    // PGQ's ORDER BY holds.
    let amounts: Vec<f64> = r.rows().iter().map(|t| t.value(1).as_f64().unwrap()).collect();
    assert_eq!(amounts, vec![100.0, 75.0, 50.0, 300.0, 25.0]);
}

#[test]
fn multi_key_gapply_with_string_and_int_keys() {
    let cat = catalog();
    let gschema = sales(&cat).schema();
    let pgq = LogicalPlan::group_scan(gschema.clone()).scalar_agg(vec![AggExpr::count_star("n")]);
    let plan = sales(&cat).gapply(vec![0, 1], pgq);
    let r = execute(&plan, &cat).unwrap();
    let expected = Relation::new(
        r.schema().clone(),
        vec![row!["east", 1, 2], row!["east", 2, 1], row!["west", 3, 2]],
    )
    .unwrap();
    assert!(r.bag_eq(&expected), "{}", r.bag_diff(&expected));
}
