//! Cost-model sanity: §4.4's estimates should track actual cardinalities
//! on the TPC-H subset within reasonable factors — close enough to rank
//! alternatives, which is all a rule gate needs.

use xmlpub_algebra::LogicalPlan;
use xmlpub_engine::execute;
use xmlpub_expr::{AggExpr, Expr};
use xmlpub_optimizer::{CostModel, Statistics};
use xmlpub_tpch::TpchGenerator;

fn within_factor(est: f64, actual: f64, factor: f64) -> bool {
    if actual == 0.0 {
        return est <= factor;
    }
    est / actual <= factor && actual / est <= factor
}

#[test]
fn scan_select_join_estimates_track_actuals() {
    let cat = TpchGenerator::with_scale(0.002).core_catalog().unwrap();
    let stats = Statistics::from_catalog(&cat);
    let cm = CostModel::new(&stats);
    let ps = LogicalPlan::scan("partsupp", cat.table("partsupp").unwrap().schema.clone());
    let part = LogicalPlan::scan("part", cat.table("part").unwrap().schema.clone());

    // Scan: exact.
    assert_eq!(cm.estimate(&ps).rows as usize, cat.data("partsupp").unwrap().len());

    // Join on the FK: estimate within 1.5× of actual.
    let join = ps.clone().join(part.clone(), Expr::col(1).eq(Expr::col(4)));
    let actual = execute(&join, &cat).unwrap().len() as f64;
    assert!(
        within_factor(cm.estimate(&join).rows, actual, 1.5),
        "join est {} vs actual {actual}",
        cm.estimate(&join).rows
    );

    // Range selection on retail price: within 2×. (At SF 0.002 part
    // keys stop at 400, so retail prices span roughly 900–1340.)
    let joined_schema = join.schema();
    let price = joined_schema.resolve(None, "p_retailprice").unwrap();
    for threshold in [950.0, 1100.0, 1250.0] {
        let sel = join.clone().select(Expr::col(price).gt(Expr::lit(threshold)));
        let actual = execute(&sel, &cat).unwrap().len() as f64;
        let est = cm.estimate(&sel).rows;
        assert!(
            within_factor(est, actual.max(1.0), 2.0),
            "σ(price > {threshold}): est {est} vs actual {actual}"
        );
    }
}

#[test]
fn gapply_group_count_estimate_is_exact_on_uniform_data() {
    let cat = TpchGenerator::with_scale(0.002).core_catalog().unwrap();
    let stats = Statistics::from_catalog(&cat);
    let cm = CostModel::new(&stats);
    let ps = LogicalPlan::scan("partsupp", cat.table("partsupp").unwrap().schema.clone());
    let pgq =
        LogicalPlan::group_scan(ps.schema()).scalar_agg(vec![AggExpr::avg(Expr::col(3), "a")]);
    let plan = ps.gapply(vec![0], pgq);
    let actual = execute(&plan, &cat).unwrap().len() as f64;
    let est = cm.estimate(&plan).rows;
    assert!(within_factor(est, actual, 1.2), "est {est} vs actual {actual}");
}

#[test]
fn cost_ranks_redundant_plans_above_shared_ones() {
    // The cost model must rank the classic double-join Q1 shape above
    // the single-partition GApply shape — the §4.4 requirement for the
    // optimizer to prefer GApply plans.
    let cat = TpchGenerator::with_scale(0.002).core_catalog().unwrap();
    let stats = Statistics::from_catalog(&cat);
    let cm = CostModel::new(&stats);
    let ps = || LogicalPlan::scan("partsupp", cat.table("partsupp").unwrap().schema.clone());
    let part = || LogicalPlan::scan("part", cat.table("part").unwrap().schema.clone());
    let join = || ps().join(part(), Expr::col(1).eq(Expr::col(4)));

    let joined_schema = join().schema();
    let name = joined_schema.resolve(None, "p_name").unwrap();
    let price = joined_schema.resolve(None, "p_retailprice").unwrap();

    // Classic Q1: two joins.
    let classic = LogicalPlan::union_all(vec![
        join().project_cols(&[0, name, price]),
        join()
            .group_by(vec![0], vec![AggExpr::avg(Expr::col(price), "a")])
            .project_cols(&[0, 1, 1]),
    ]);
    // GApply Q1: one join + partition.
    let gs = || LogicalPlan::group_scan(join().schema());
    let pgq = LogicalPlan::union_all(vec![
        gs().project_cols(&[name, price]),
        gs().scalar_agg(vec![AggExpr::avg(Expr::col(price), "a")]).project_cols(&[0, 0]),
    ]);
    let gapply = join().gapply(vec![0], pgq);

    let c_classic = cm.cost(&classic);
    let c_gapply = cm.cost(&gapply);
    assert!(c_classic > c_gapply, "classic {c_classic} should cost more than gapply {c_gapply}");
}

#[test]
fn statistics_refresh_sees_new_rows() {
    let cat = TpchGenerator::with_scale(0.001).core_catalog().unwrap();
    let stats = Statistics::from_catalog(&cat);
    assert_eq!(stats.rows("supplier"), 10);
    assert_eq!(stats.rows("partsupp"), 800);
    let t = stats.table("part").unwrap();
    // Retail price spec range.
    assert!(t.columns[6].min.unwrap() >= 900.0);
    assert!(t.columns[6].max.unwrap() <= 2099.0);
}
