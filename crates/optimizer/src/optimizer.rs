//! The pass-ordered rule driver.
//!
//! §4.4 observes that the rules "either push GApply down in the join
//! tree, or altogether eliminate GApply, or add new selections and
//! projections in the outer subtree, none of which can be reversed by
//! any of the other rules — hence successive firing of rules will
//! terminate". The driver encodes that argument structurally: monotone
//! normalisation rules run to fixpoint, while the rules that *insert*
//! outer-side operators (whose output other rules then move further, and
//! which must therefore not see their own output again) run exactly once
//! per plan.

use crate::rules::{
    AggregateSelection, ClaimProbe, ConvertToGroupBy, DecorrelateScalarAgg, ExistsGroupSelection,
    InvariantGrouping, ProjectBeforeGApply, ProjectIntoPgq, RemoveIdentityProject, Rule,
    RuleContext, SelectBeforeGApply, SelectIntoPgq, SelectPushdown, VetoProbe,
};
use crate::stats::Statistics;
use xmlpub_algebra::LogicalPlan;
use xmlpub_analysis::Claim;
use xmlpub_lint::{Ambient, Diagnostic, LintRegistry, PlanPath};
use xmlpub_obs::ObsContext;

/// Per-rule enable flags. Default: everything on, group/aggregate
/// selection cost-gated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerConfig {
    /// `σ(R GA R₂) = R GA σ(R₂)`.
    pub select_into_pgq: bool,
    /// `π_{C∪B}(R GA R₂) = R GA π_B(R₂)`.
    pub project_into_pgq: bool,
    /// Placing selections before GApply (§4.1).
    pub select_before_gapply: bool,
    /// Placing projections before GApply (§4.1).
    pub project_before_gapply: bool,
    /// Converting GApply to groupby (§4.1).
    pub convert_to_groupby: bool,
    /// Group selection via exists (§4.2).
    pub group_selection: bool,
    /// Group selection via aggregate condition (§4.2).
    pub aggregate_selection: bool,
    /// Invariant grouping (§4.3).
    pub invariant_grouping: bool,
    /// Classical selection pushdown through joins.
    pub select_pushdown: bool,
    /// Decorrelate correlated scalar-aggregate subqueries into
    /// group-by + left outer join (the [12]-style rewrite SQL Server
    /// applied to the paper's baselines).
    pub decorrelate_subqueries: bool,
    /// Pull GApply above foreign-key joins on its grouping columns (the
    /// [12] companion of invariant grouping). Off by default — it is the
    /// inverse of invariant grouping and the two would thrash.
    pub pull_gapply_above_join: bool,
    /// Gate group/aggregate selection on the §4.4 cost model.
    pub cost_gate: bool,
    /// Run the plan linter after every rule firing, attaching its
    /// diagnostics to the firing log entry (and panicking under
    /// `debug_assertions` if any rewrite breaks an invariant). Defaults
    /// to on in debug builds, off in release builds.
    pub verify_rewrites: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            select_into_pgq: true,
            project_into_pgq: true,
            select_before_gapply: true,
            project_before_gapply: true,
            convert_to_groupby: true,
            group_selection: true,
            aggregate_selection: true,
            invariant_grouping: true,
            select_pushdown: true,
            decorrelate_subqueries: true,
            pull_gapply_above_join: false,
            cost_gate: true,
            verify_rewrites: cfg!(debug_assertions),
        }
    }
}

impl OptimizerConfig {
    /// Everything disabled — the identity optimizer.
    pub fn none() -> Self {
        OptimizerConfig {
            select_into_pgq: false,
            project_into_pgq: false,
            select_before_gapply: false,
            project_before_gapply: false,
            convert_to_groupby: false,
            group_selection: false,
            aggregate_selection: false,
            invariant_grouping: false,
            select_pushdown: false,
            decorrelate_subqueries: false,
            pull_gapply_above_join: false,
            cost_gate: false,
            verify_rewrites: cfg!(debug_assertions),
        }
    }

    /// Enable a single rule by name (plus selection pushdown when the
    /// rule relies on it), for the Table 1 isolation experiments.
    pub fn only(rule: &str) -> Self {
        let mut c = OptimizerConfig::none();
        match rule {
            "select-into-pgq" => c.select_into_pgq = true,
            "project-into-pgq" => c.project_into_pgq = true,
            "select-before-gapply" => {
                c.select_before_gapply = true;
                c.select_pushdown = true;
            }
            "project-before-gapply" => c.project_before_gapply = true,
            "gapply-to-groupby" => c.convert_to_groupby = true,
            "group-selection-exists" => c.group_selection = true,
            "group-selection-aggregate" => c.aggregate_selection = true,
            "invariant-grouping" => c.invariant_grouping = true,
            "select-pushdown" => c.select_pushdown = true,
            "decorrelate-scalar-agg" => c.decorrelate_subqueries = true,
            "pull-gapply-above-join" => c.pull_gapply_above_join = true,
            other => panic!("unknown rule '{other}'"),
        }
        c
    }
}

/// A record of one rule firing (for EXPLAIN output and the experiment
/// logs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleFiring {
    /// The rule that fired.
    pub rule: &'static str,
    /// Where in the plan the rule fired (path at firing time).
    pub path: PlanPath,
    /// Lint diagnostics attributed to this firing (populated only when
    /// `verify_rewrites` is on; empty means the rewrite checked out).
    pub diagnostics: Vec<Diagnostic>,
    /// The derived-property side conditions the rule consumed while
    /// deciding to fire (paths are relative to the firing site; see
    /// [`Claim`]). `\explain --verify` lists these, and the lint
    /// `properties` pass re-derives each one.
    pub properties: Vec<Claim>,
}

impl RuleFiring {
    /// A clean firing record.
    pub fn new(rule: &'static str, path: PlanPath) -> Self {
        RuleFiring { rule, path, diagnostics: Vec::new(), properties: Vec::new() }
    }
}

/// The optimizer.
pub struct Optimizer<'a> {
    config: OptimizerConfig,
    stats: &'a Statistics,
}

impl<'a> Optimizer<'a> {
    /// An optimizer over gathered statistics.
    pub fn new(config: OptimizerConfig, stats: &'a Statistics) -> Self {
        Optimizer { config, stats }
    }

    /// Optimize a plan, returning the rewritten plan and the firing log.
    pub fn optimize(&self, plan: LogicalPlan) -> (LogicalPlan, Vec<RuleFiring>) {
        self.optimize_inner(plan, None)
    }

    /// [`optimize`](Self::optimize) under an observability context: the
    /// whole run is wrapped in an `optimize` span with one child span
    /// per rule firing (reusing the [`RuleFiring`] path/diagnostics the
    /// driver already records), and per-rule fire/veto counters land in
    /// the metrics registry. With a disabled context this is exactly
    /// `optimize`.
    pub fn optimize_observed(
        &self,
        plan: LogicalPlan,
        obs: &ObsContext,
    ) -> (LogicalPlan, Vec<RuleFiring>) {
        if !obs.enabled() {
            return self.optimize(plan);
        }
        let mut span = obs.tracer.span("optimize", obs.parent_span, &[]);
        let probe = VetoProbe::default();
        let (plan, log) = self.optimize_inner(plan, Some(&probe));
        for firing in &log {
            obs.metrics.add(&format!("optimizer.rule_fired.{}", firing.rule), 1);
            obs.tracer.emit_span(
                &format!("rule:{}", firing.rule),
                span.id(),
                obs.tracer.now_us(),
                0,
                &[
                    ("path", &firing.path.to_string()),
                    ("diagnostics", &firing.diagnostics.len().to_string()),
                ],
            );
        }
        for rule in probe.take() {
            obs.metrics.add(&format!("optimizer.rule_vetoed.{rule}"), 1);
        }
        span.annotate("firings", &log.len().to_string());
        (plan, log)
    }

    fn optimize_inner(
        &self,
        plan: LogicalPlan,
        vetoes: Option<&VetoProbe>,
    ) -> (LogicalPlan, Vec<RuleFiring>) {
        let claim_probe = ClaimProbe::default();
        let ctx = RuleContext {
            stats: self.stats,
            cost_gate: self.config.cost_gate,
            vetoes,
            claims: Some(&claim_probe),
        };
        let verifier = self.config.verify_rewrites.then(|| {
            LintRegistry::default_with_properties(self.stats.catalog_properties().clone())
        });
        let driver = Driver { ctx, verifier };
        let mut log = Vec::new();
        let mut plan = plan;

        // Pass 1 (fixpoint): normalisation. Identity projections (the
        // binder's SELECT-list wrappers) are stripped; pull-through rules
        // strictly move selections/projections into the per-group query.
        let mut norm: Vec<Box<dyn Rule>> = vec![Box::new(RemoveIdentityProject)];
        if self.config.decorrelate_subqueries {
            norm.push(Box::new(DecorrelateScalarAgg));
        }
        if self.config.select_into_pgq {
            norm.push(Box::new(SelectIntoPgq));
        }
        if self.config.project_into_pgq {
            norm.push(Box::new(ProjectIntoPgq));
        }
        plan = driver.fixpoint(plan, &norm, &mut log);

        // Pass 2 (once): selection before GApply. Runs once because the
        // selection it inserts is subsequently pushed away from the spot
        // the idempotence check looks at.
        if self.config.select_before_gapply {
            plan = driver.apply_everywhere_root(plan, &SelectBeforeGApply, &mut log);
        }

        // Pass 3 (once): the GApply-eliminating rules. Group/aggregate
        // selection run before the groupby conversion since their pattern
        // is strictly more specific.
        if self.config.group_selection {
            plan = driver.apply_everywhere_root(plan, &ExistsGroupSelection, &mut log);
        }
        if self.config.aggregate_selection {
            plan = driver.apply_everywhere_root(plan, &AggregateSelection, &mut log);
        }
        if self.config.convert_to_groupby {
            plan = driver.apply_everywhere_root(plan, &ConvertToGroupBy, &mut log);
        }

        // Pass 3.5 (once, opt-in): pull GApply above FK joins.
        if self.config.pull_gapply_above_join {
            plan = driver.apply_everywhere_root(plan, &crate::rules::PullGApplyAboveJoin, &mut log);
        }

        // Pass 4 (once): push surviving GApplys below FK joins.
        if self.config.invariant_grouping {
            plan = driver.apply_everywhere_root(plan, &InvariantGrouping, &mut log);
        }

        // Pass 5 (once): prune outer columns feeding each GApply.
        if self.config.project_before_gapply {
            plan = driver.apply_everywhere_root(plan, &ProjectBeforeGApply, &mut log);
        }

        // Pass 6 (fixpoint): sink all selections (including the ones the
        // GApply rules introduced) through the join trees.
        if self.config.select_pushdown {
            plan = driver.fixpoint(plan, &[Box::new(SelectPushdown) as Box<dyn Rule>], &mut log);
        }

        debug_assert!(xmlpub_algebra::validate(&plan).is_ok(), "{}", plan.explain());
        if let Some(reg) = &driver.verifier {
            let diags = reg.lint_plan(&plan);
            debug_assert!(
                diags.is_empty(),
                "optimized plan fails lint:\n{}\n{}",
                diags.iter().map(|d| format!("  {d}")).collect::<Vec<_>>().join("\n"),
                plan.explain()
            );
        }
        (plan, log)
    }
}

/// The rule-application engine: rule context plus the optional
/// per-firing lint verifier.
struct Driver<'a> {
    ctx: RuleContext<'a>,
    verifier: Option<LintRegistry>,
}

impl Driver<'_> {
    /// Apply a rule top-down from the plan root, at most once per node.
    fn apply_everywhere_root(
        &self,
        plan: LogicalPlan,
        rule: &dyn Rule,
        log: &mut Vec<RuleFiring>,
    ) -> LogicalPlan {
        self.apply_everywhere(plan, rule, &Ambient::root(), &PlanPath::root(), log)
    }

    /// Apply a rule top-down across a subtree sitting in `ambient` at
    /// `path`, at most once per node. When verification is on, every
    /// firing is linted in place: the rewritten subtree is re-checked
    /// against the §3 structural rules and the before/after pair against
    /// schema preservation, column provenance and the firing rule's §4
    /// side conditions; diagnostics are attributed to the firing.
    fn apply_everywhere(
        &self,
        plan: LogicalPlan,
        rule: &dyn Rule,
        ambient: &Ambient,
        path: &PlanPath,
        log: &mut Vec<RuleFiring>,
    ) -> LogicalPlan {
        // Drop claims left behind by rules that matched but declined to
        // fire, so each firing records only its own side conditions.
        if let Some(probe) = self.ctx.claims {
            let _ = probe.take();
        }
        let plan = match rule.apply(&plan, &self.ctx) {
            Some(p) => {
                let mut firing = RuleFiring::new(rule.name(), path.clone());
                if let Some(probe) = self.ctx.claims {
                    firing.properties = probe.take();
                }
                if let Some(reg) = &self.verifier {
                    let diags = reg.lint_rewrite_claimed(
                        rule.name(),
                        &plan,
                        &p,
                        ambient,
                        &firing.properties,
                    );
                    debug_assert!(
                        diags.is_empty(),
                        "rule `{}` fired at {path} with lint diagnostics:\n{}\n\
                         -- before --\n{}\n-- after --\n{}",
                        rule.name(),
                        diags.iter().map(|d| format!("  {d}")).collect::<Vec<_>>().join("\n"),
                        plan.explain(),
                        p.explain()
                    );
                    firing.diagnostics = diags.into_iter().map(|d| d.prefixed(path)).collect();
                }
                log.push(firing);
                p
            }
            None => plan,
        };
        let child_ambients = ambient.children_for(&plan);
        let mut idx = 0;
        plan.map_children(&mut |c| {
            let child_path = path.child(idx);
            let child_ambient = child_ambients[idx].clone();
            idx += 1;
            self.apply_everywhere(c, rule, &child_ambient, &child_path, log)
        })
    }

    /// Apply a set of rules everywhere until none fires (bounded).
    fn fixpoint(
        &self,
        mut plan: LogicalPlan,
        rules: &[Box<dyn Rule>],
        log: &mut Vec<RuleFiring>,
    ) -> LogicalPlan {
        const MAX_ITERS: usize = 64;
        for _ in 0..MAX_ITERS {
            let before = log.len();
            for r in rules {
                plan = self.apply_everywhere_root(plan, r.as_ref(), log);
            }
            if log.len() == before {
                break;
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_algebra::{plan::null_item, Catalog, ProjectItem, TableDef};
    use xmlpub_common::{row, DataType, Field, Relation, Schema};
    use xmlpub_expr::{AggExpr, Expr};

    fn catalog() -> Catalog {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("brand", DataType::Str),
            Field::new("price", DataType::Float),
            Field::new("junk", DataType::Str),
        ]);
        let def = TableDef::new("t", schema);
        let data = Relation::new(
            def.schema.clone(),
            vec![
                row![1, "A", 10.0, "x"],
                row![1, "B", 20.0, "x"],
                row![2, "A", 5.0, "x"],
                row![2, "C", 50.0, "x"],
            ],
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.register(def, data).unwrap();
        cat
    }

    fn scan(cat: &Catalog) -> LogicalPlan {
        LogicalPlan::scan("t", cat.table("t").unwrap().schema.clone())
    }

    #[test]
    fn composed_rules_preserve_semantics() {
        let cat = catalog();
        let stats = Statistics::from_catalog(&cat);
        let gschema = scan(&cat).schema();
        // σ over GApply whose PGQ filters brand A — exercises pull-
        // through, select-before, projection-before together.
        let pgq = LogicalPlan::group_scan(gschema)
            .select(Expr::col(1).eq(Expr::lit("A")))
            .project(vec![ProjectItem::col(2), null_item("pad")]);
        let plan = scan(&cat).gapply(vec![0], pgq).select(Expr::col(1).gt(Expr::lit(1.0)));
        let opt = Optimizer::new(OptimizerConfig::default(), &stats);
        let (optimized, log) = opt.optimize(plan.clone());
        assert!(!log.is_empty());
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&optimized, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
    }

    #[test]
    fn select_before_then_convert_to_groupby_chain() {
        // §4.1: "The above rules when applied in conjunction with the rule
        // involving selections can lead to many transformations." PGQ =
        // avg over σ_brand=A: pushing the selection out leaves a pure
        // aggregate, which then converts to a plain group-by.
        let cat = catalog();
        let stats = Statistics::from_catalog(&cat);
        let gschema = scan(&cat).schema();
        let pgq = LogicalPlan::group_scan(gschema)
            .select(Expr::col(1).eq(Expr::lit("A")))
            .scalar_agg(vec![AggExpr::avg(Expr::col(2), "avg")]);
        // (avg over a filtered group is NOT emptyOnEmpty, so use min —
        // also NULL-on-empty... and also not emptyOnEmpty. The chain
        // needs a projection-returning PGQ instead:)
        let pgq_rows = LogicalPlan::group_scan(scan(&cat).schema())
            .select(Expr::col(1).eq(Expr::lit("A")))
            .project_cols(&[2]);
        let plan_rows = scan(&cat).gapply(vec![0], pgq_rows);
        let opt = Optimizer::new(OptimizerConfig::default(), &stats);
        let (optimized, log) = opt.optimize(plan_rows.clone());
        assert!(log.iter().any(|f| f.rule == "select-before-gapply"), "{log:?}");
        let a = xmlpub_engine::execute(&plan_rows, &cat).unwrap();
        let b = xmlpub_engine::execute(&optimized, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));

        // The aggregate variant still converts to groupby on its own.
        let plan_agg = scan(&cat).gapply(
            vec![0],
            LogicalPlan::group_scan(scan(&cat).schema())
                .scalar_agg(vec![AggExpr::avg(Expr::col(2), "avg")]),
        );
        let (optimized, log) = opt.optimize(plan_agg.clone());
        assert!(log.iter().any(|f| f.rule == "gapply-to-groupby"), "{log:?}");
        assert!(!optimized.any_node(&|p| matches!(p, LogicalPlan::GApply { .. })));
        let a = xmlpub_engine::execute(&plan_agg, &cat).unwrap();
        let b = xmlpub_engine::execute(&optimized, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
        let _ = pgq;
    }

    #[test]
    fn disabled_optimizer_is_identity() {
        let cat = catalog();
        let stats = Statistics::from_catalog(&cat);
        let pgq =
            LogicalPlan::group_scan(scan(&cat).schema()).scalar_agg(vec![AggExpr::count_star("n")]);
        let plan = scan(&cat).gapply(vec![0], pgq);
        let opt = Optimizer::new(OptimizerConfig::none(), &stats);
        let (optimized, log) = opt.optimize(plan.clone());
        assert!(log.is_empty());
        assert_eq!(optimized, plan);
    }

    #[test]
    fn only_config_selects_single_rule() {
        let c = OptimizerConfig::only("gapply-to-groupby");
        assert!(c.convert_to_groupby);
        assert!(!c.select_before_gapply);
        let c = OptimizerConfig::only("select-before-gapply");
        assert!(c.select_before_gapply);
        assert!(c.select_pushdown);
    }

    #[test]
    #[should_panic(expected = "unknown rule")]
    fn only_config_rejects_unknown() {
        let _ = OptimizerConfig::only("no-such-rule");
    }

    #[test]
    fn observed_optimize_emits_rule_spans_and_counters() {
        use xmlpub_obs::{BufferSink, Observability, SpanRecord, TraceHandle};
        let cat = catalog();
        let stats = Statistics::from_catalog(&cat);
        let plan = scan(&cat).gapply(
            vec![0],
            LogicalPlan::group_scan(scan(&cat).schema())
                .scalar_agg(vec![AggExpr::avg(Expr::col(2), "avg")]),
        );
        let sink = BufferSink::new();
        let mut obs = Observability::with_metrics();
        obs.tracer = TraceHandle::new(Box::new(sink.clone()));
        let opt = Optimizer::new(OptimizerConfig::default(), &stats);
        let (observed_plan, log) = opt.optimize_observed(plan.clone(), &obs.context(0));
        assert!(log.iter().any(|f| f.rule == "gapply-to-groupby"));

        // Identical rewrite to the unobserved path.
        let (plain_plan, plain_log) = opt.optimize(plan);
        assert_eq!(observed_plan, plain_plan);
        assert_eq!(log, plain_log);

        // One fired counter per firing, keyed by rule name.
        let snap = obs.metrics.snapshot().unwrap();
        assert_eq!(snap.counter("optimizer.rule_fired.gapply-to-groupby"), Some(1));

        // The span tree has an `optimize` root with one rule child per
        // firing, carrying the firing path.
        let records = SpanRecord::parse_all(&sink.contents()).unwrap();
        let root = records.iter().find(|r| r.name == "optimize").unwrap();
        let children: Vec<_> = records.iter().filter(|r| r.parent == root.id).collect();
        assert_eq!(children.len(), log.len());
        assert!(children.iter().any(|c| c.name == "rule:gapply-to-groupby"));
        assert!(children.iter().all(|c| c.attrs.iter().any(|(k, _)| k == "path")));
    }

    #[test]
    fn cost_gate_vetoes_are_recorded() {
        use crate::rules::VetoProbe;
        // An unselective exists-style group selection: every group
        // qualifies, so the §4.4 cost model rejects the duplicate-T
        // rewrite and the veto probe sees it.
        let cat = catalog();
        let stats = Statistics::from_catalog(&cat);
        let gschema = scan(&cat).schema();
        let qualifies = LogicalPlan::group_scan(gschema.clone())
            .select(Expr::col(2).gt(Expr::lit(-1.0)))
            .exists();
        let pgq =
            LogicalPlan::group_scan(gschema).apply(qualifies, xmlpub_algebra::ApplyMode::Cross);
        let plan = scan(&cat).gapply(vec![0], pgq);
        let probe = VetoProbe::default();
        let opt = Optimizer::new(OptimizerConfig::default(), &stats);
        let (_, log) = opt.optimize_inner(plan, Some(&probe));
        let vetoes = probe.take();
        if log.iter().any(|f| f.rule == "group-selection-exists") {
            assert!(vetoes.is_empty(), "fired AND vetoed? {vetoes:?}");
        } else {
            assert_eq!(vetoes, vec!["group-selection-exists"], "{log:?}");
        }
    }

    #[test]
    fn optimizer_terminates_on_pathological_nesting() {
        let cat = catalog();
        let stats = Statistics::from_catalog(&cat);
        let gschema = scan(&cat).schema();
        // Stack several selects and projects over a GApply.
        let pgq = LogicalPlan::group_scan(gschema).project_cols(&[1, 2]);
        let mut plan = scan(&cat).gapply(vec![0], pgq);
        for i in 0..5 {
            plan = plan.select(Expr::col(1).neq(Expr::lit(format!("no{i}"))));
        }
        let opt = Optimizer::new(OptimizerConfig::default(), &stats);
        let (optimized, _) = opt.optimize(plan.clone());
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&optimized, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
    }
}
