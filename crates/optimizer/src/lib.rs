//! Rule-based optimizer for plans containing `GApply` (paper §4).
//!
//! The crate provides:
//!
//! * [`stats`] — table/column statistics gathered from the catalog and
//!   the selectivity estimation they support;
//! * [`cost`] — cardinality and cost estimation, including the §4.4
//!   GApply costing: *cost of evaluating the per-group query on one
//!   (average) group × number of groups*, under the uniformity
//!   assumption;
//! * [`rules`] — the transformation rules:
//!   - the pull-through identities `σ(R GA R₂) = R GA σ(R₂)` and
//!     `π_{C∪B}(R GA R₂) = R GA π_B(R₂)`;
//!   - *Placing Projections Before GApply*;
//!   - *Placing Selections Before GApply* (covering range +
//!     emptyOnEmpty, Theorem 1), with elimination of per-group
//!     selections logically equivalent to the pushed range;
//!   - *Converting GApply to groupby* (both variants);
//!   - *Group Selection* (exists) and *Aggregate Selection*, cost-gated
//!     because the paper observes they can hurt;
//!   - *Invariant Grouping* (pushing GApply below foreign-key joins,
//!     Theorem 2) with the adapted per-group query;
//!   - classical selection pushdown through joins, used to sink the
//!     selections the GApply rules introduce on the outer query.
//! * [`Optimizer`] — a pass-ordered driver with per-rule enable flags (so
//!   the Table 1 experiments can measure each rule in isolation) and a
//!   firing log for EXPLAIN-style reporting.

pub mod cost;
pub mod optimizer;
pub mod rules;
pub mod stats;

pub use cost::CostModel;
pub use optimizer::{Optimizer, OptimizerConfig, RuleFiring};
pub use rules::VetoProbe;
pub use stats::Statistics;
