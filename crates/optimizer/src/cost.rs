//! Cardinality and cost estimation.
//!
//! §4.4 sketches how a Volcano-style optimizer costs `GApply`: assume the
//! groups are uniform; then
//!
//! > the cost of GApply is the cost of evaluating the per-group query on
//! > one group multiplied by the number of groups. The number of groups
//! > is the number of distinct values in the grouping columns [and] the
//! > average size of a group is the result size of the outer query
//! > divided by the number of groups.
//!
//! [`CostModel::estimate`] propagates `(row count, per-column stats)`
//! bottom-up; per-group queries are estimated against a synthetic
//! "average group" whose statistics are the outer statistics shrunk to
//! one group. [`CostModel::cost`] turns the same traversal into an
//! abstract work measure (rows touched, with hash/sort factors) that the
//! cost-gated rules (group selection, aggregate selection) compare
//! alternatives with.

use crate::stats::{ColumnStats, Statistics};
use xmlpub_algebra::{ApplyMode, LogicalPlan};
use xmlpub_expr::{conjuncts, BinOp, Expr};

/// Default row count for tables without statistics.
const DEFAULT_ROWS: f64 = 1000.0;
/// Default predicate selectivity when nothing better is known.
const DEFAULT_SELECTIVITY: f64 = 0.33;
/// Default equality selectivity.
const DEFAULT_EQ_SELECTIVITY: f64 = 0.1;

/// Estimated properties of a plan's output.
#[derive(Debug, Clone)]
pub struct PlanEstimate {
    /// Estimated row count.
    pub rows: f64,
    /// Estimated per-column statistics.
    pub cols: Vec<ColumnStats>,
}

impl PlanEstimate {
    fn scaled(&self, factor: f64) -> PlanEstimate {
        let rows = (self.rows * factor).max(0.0);
        PlanEstimate {
            rows,
            cols: self
                .cols
                .iter()
                .map(|c| ColumnStats {
                    distinct: (c.distinct as f64 * factor.clamp(0.0, 1.0)).ceil() as u64,
                    ..c.clone()
                })
                .collect(),
        }
    }
}

/// The cost model. Cheap to construct; borrows the statistics.
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    stats: &'a Statistics,
    /// Degree of parallelism assumed for execution (≥ 1): per-group
    /// GApply workers *and* the engine's intra-operator morsel workers
    /// (filter/project/hash-join/hash-aggregate). The rule-gating paths
    /// cost serially (`new` fixes this at 1) so plan choice — and with
    /// it the server's plan cache key — never depends on an engine knob;
    /// `with_dop` is for costing a plan *as the engine will run it*
    /// (`\explain`, what-if analysis).
    dop: usize,
}

impl<'a> CostModel<'a> {
    /// A model over gathered statistics, costing serial execution.
    pub fn new(stats: &'a Statistics) -> Self {
        CostModel { stats, dop: 1 }
    }

    /// The same model assuming the engine runs `dop` workers (clamped
    /// ≥ 1) — both for GApply's per-group execution phase and for the
    /// morsel-parallel pipeline segments inside filter, project,
    /// hash-join probe/build and hash-aggregate.
    pub fn with_dop(self, dop: usize) -> Self {
        CostModel { dop: dop.max(1), ..self }
    }

    /// Estimate output cardinality and column stats.
    pub fn estimate(&self, plan: &LogicalPlan) -> PlanEstimate {
        self.est(plan, None)
    }

    /// Estimate the abstract execution cost (unit: rows touched).
    pub fn cost(&self, plan: &LogicalPlan) -> f64 {
        self.cost_inner(plan, None).0
    }

    fn est(&self, plan: &LogicalPlan, group: Option<&PlanEstimate>) -> PlanEstimate {
        match plan {
            LogicalPlan::Scan { table, schema } => match self.stats.table(table) {
                Some(t) => PlanEstimate { rows: t.rows as f64, cols: t.columns.clone() },
                None => PlanEstimate {
                    rows: DEFAULT_ROWS,
                    cols: vec![ColumnStats::unknown(); schema.len()],
                },
            },
            LogicalPlan::GroupScan { schema } => match group {
                Some(g) => g.clone(),
                None => PlanEstimate {
                    rows: DEFAULT_ROWS,
                    cols: vec![ColumnStats::unknown(); schema.len()],
                },
            },
            LogicalPlan::Select { input, predicate } => {
                let child = self.est(input, group);
                let sel = self.selectivity(predicate, &child);
                child.scaled(sel)
            }
            LogicalPlan::Project { input, items } => {
                let child = self.est(input, group);
                let cols = items
                    .iter()
                    .map(|it| match &it.expr {
                        Expr::Column(i) => {
                            child.cols.get(*i).cloned().unwrap_or_else(ColumnStats::unknown)
                        }
                        _ => ColumnStats::unknown(),
                    })
                    .collect();
                PlanEstimate { rows: child.rows, cols }
            }
            LogicalPlan::Join { left, right, predicate, fk_left_to_right } => {
                let l = self.est(left, group);
                let r = self.est(right, group);
                let mut cols = l.cols.clone();
                cols.extend(r.cols.clone());
                let rows = if *fk_left_to_right {
                    // Every left row matches exactly one right row.
                    l.rows
                } else {
                    let combined = PlanEstimate { rows: l.rows * r.rows, cols: cols.clone() };
                    let sel = self.selectivity(predicate, &combined);
                    (l.rows * r.rows * sel).max(0.0)
                };
                PlanEstimate { rows, cols }
            }
            LogicalPlan::LeftOuterJoin { left, right, predicate } => {
                let l = self.est(left, group);
                let r = self.est(right, group);
                let mut cols = l.cols.clone();
                cols.extend(r.cols.clone());
                let combined = PlanEstimate { rows: l.rows * r.rows, cols: cols.clone() };
                let sel = self.selectivity(predicate, &combined);
                // Every left row survives at least once.
                let rows = (l.rows * r.rows * sel).max(l.rows);
                PlanEstimate { rows, cols }
            }
            LogicalPlan::GApply { input, group_cols, pgq } => {
                let outer = self.est(input, group);
                let groups = self.group_count(&outer, group_cols);
                let avg_group =
                    outer.scaled(if outer.rows > 0.0 { 1.0 / groups.max(1.0) } else { 0.0 });
                let per_group = self.est(pgq, Some(&avg_group));
                let mut cols: Vec<ColumnStats> = group_cols
                    .iter()
                    .map(|&c| outer.cols.get(c).cloned().unwrap_or_else(ColumnStats::unknown))
                    .collect();
                cols.extend(per_group.cols);
                PlanEstimate { rows: groups * per_group.rows, cols }
            }
            LogicalPlan::GroupBy { input, keys, aggs } => {
                let child = self.est(input, group);
                let groups = self.group_count(&child, keys);
                let mut cols: Vec<ColumnStats> = keys
                    .iter()
                    .map(|&k| child.cols.get(k).cloned().unwrap_or_else(ColumnStats::unknown))
                    .collect();
                cols.extend(std::iter::repeat_n(ColumnStats::unknown(), aggs.len()));
                PlanEstimate { rows: groups, cols }
            }
            LogicalPlan::ScalarAgg { aggs, .. } => {
                PlanEstimate { rows: 1.0, cols: vec![ColumnStats::unknown(); aggs.len()] }
            }
            LogicalPlan::UnionAll { inputs } => {
                let ests: Vec<PlanEstimate> = inputs.iter().map(|i| self.est(i, group)).collect();
                let rows = ests.iter().map(|e| e.rows).sum();
                let cols = ests.first().map(|e| e.cols.clone()).unwrap_or_default();
                PlanEstimate { rows, cols }
            }
            LogicalPlan::Distinct { input } => {
                let child = self.est(input, group);
                let all: Vec<usize> = (0..child.cols.len()).collect();
                let distinct = self.group_count(&child, &all);
                PlanEstimate { rows: distinct, cols: child.cols }
            }
            LogicalPlan::OrderBy { input, .. } => self.est(input, group),
            LogicalPlan::Apply { outer, inner, mode } => {
                let o = self.est(outer, group);
                let i = self.est(inner, group);
                let inner_rows = match mode {
                    ApplyMode::Cross => i.rows,
                    // Outer/scalar modes pad empties back in.
                    ApplyMode::LeftOuter | ApplyMode::Scalar => i.rows.max(1.0),
                };
                let mut cols = o.cols.clone();
                cols.extend(i.cols);
                PlanEstimate { rows: o.rows * inner_rows, cols }
            }
            LogicalPlan::Exists { input, negated } => {
                let child = self.est(input, group);
                // P(child non-empty) ≈ min(1, E[child rows]).
                let p = child.rows.min(1.0);
                let rows = if *negated { 1.0 - p } else { p };
                PlanEstimate { rows, cols: vec![] }
            }
        }
    }

    /// Number of groups when grouping `est` by `cols`: the product of the
    /// per-column distinct counts, capped by the row count (§4.4: "the
    /// number of distinct values in the grouping columns").
    fn group_count(&self, est: &PlanEstimate, cols: &[usize]) -> f64 {
        if est.rows <= 0.0 {
            return 0.0;
        }
        let mut product = 1.0f64;
        for &c in cols {
            let d = est.cols.get(c).map(|s| s.distinct).unwrap_or(0);
            let d = if d == 0 { (est.rows * DEFAULT_EQ_SELECTIVITY).max(1.0) } else { d as f64 };
            product = (product * d).min(1e15);
        }
        product.min(est.rows).max(1.0)
    }

    /// Predicate selectivity against column stats.
    pub fn selectivity(&self, predicate: &Expr, input: &PlanEstimate) -> f64 {
        conjuncts(predicate)
            .iter()
            .map(|c| self.conjunct_selectivity(c, input))
            .product::<f64>()
            .clamp(0.0, 1.0)
    }

    fn conjunct_selectivity(&self, pred: &Expr, input: &PlanEstimate) -> f64 {
        match pred {
            Expr::Literal(v) => match v.as_bool() {
                Some(true) => 1.0,
                Some(false) => 0.0,
                None => DEFAULT_SELECTIVITY,
            },
            Expr::Binary { op: BinOp::Or, left, right } => {
                let a = self.conjunct_selectivity(left, input);
                let b = self.conjunct_selectivity(right, input);
                (a + b - a * b).clamp(0.0, 1.0)
            }
            Expr::Binary { op, left, right } if op.is_comparison() => {
                // Column-to-column equality (join predicates): the
                // classical 1/max(distinct) estimate.
                if let (BinOp::Eq, Expr::Column(a), Expr::Column(b)) = (*op, &**left, &**right) {
                    let da = input.cols.get(*a).map(|s| s.distinct).unwrap_or(0);
                    let db = input.cols.get(*b).map(|s| s.distinct).unwrap_or(0);
                    let d = da.max(db);
                    return if d > 0 { 1.0 / d as f64 } else { DEFAULT_EQ_SELECTIVITY };
                }
                // Normalise to column-vs-literal when possible.
                let (col, lit, op) = match (&**left, &**right) {
                    (Expr::Column(c), Expr::Literal(v)) => (Some(*c), Some(v.clone()), *op),
                    (Expr::Literal(v), Expr::Column(c)) => (Some(*c), Some(v.clone()), op.flip()),
                    _ => (None, None, *op),
                };
                match (col, lit) {
                    (Some(c), Some(v)) => {
                        let cs = input.cols.get(c);
                        match op {
                            BinOp::Eq => cs
                                .filter(|s| s.distinct > 0)
                                .map(|s| 1.0 / s.distinct as f64)
                                .unwrap_or(DEFAULT_EQ_SELECTIVITY),
                            BinOp::NotEq => {
                                1.0 - cs
                                    .filter(|s| s.distinct > 0)
                                    .map(|s| 1.0 / s.distinct as f64)
                                    .unwrap_or(DEFAULT_EQ_SELECTIVITY)
                            }
                            BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                                self.range_selectivity(cs, &v, op)
                            }
                            _ => DEFAULT_SELECTIVITY,
                        }
                    }
                    _ => DEFAULT_SELECTIVITY,
                }
            }
            Expr::Unary { op: xmlpub_expr::UnaryOp::Not, expr } => {
                1.0 - self.conjunct_selectivity(expr, input)
            }
            _ => DEFAULT_SELECTIVITY,
        }
    }

    fn range_selectivity(
        &self,
        cs: Option<&ColumnStats>,
        lit: &xmlpub_common::Value,
        op: BinOp,
    ) -> f64 {
        let (Some(cs), Some(v)) = (cs, lit.as_f64()) else {
            return DEFAULT_SELECTIVITY;
        };
        let (Some(min), Some(max)) = (cs.min, cs.max) else {
            return DEFAULT_SELECTIVITY;
        };
        if max <= min {
            return DEFAULT_SELECTIVITY;
        }
        let frac_below = ((v - min) / (max - min)).clamp(0.0, 1.0);
        match op {
            BinOp::Lt | BinOp::LtEq => frac_below,
            BinOp::Gt | BinOp::GtEq => 1.0 - frac_below,
            _ => DEFAULT_SELECTIVITY,
        }
    }

    /// Cost and output estimate, threaded through the group context.
    fn cost_inner(&self, plan: &LogicalPlan, group: Option<&PlanEstimate>) -> (f64, PlanEstimate) {
        let out = self.est(plan, group);
        let cost = match plan {
            LogicalPlan::Scan { .. } | LogicalPlan::GroupScan { .. } => out.rows,
            LogicalPlan::Select { input, .. } | LogicalPlan::Project { input, .. } => {
                // The engine evaluates these column-at-a-time over row
                // morsels, so the per-row work divides by the morsel dop
                // (1 when serial or below the engine's morsel floor).
                let (c, e) = self.cost_inner(input, group);
                let edop = self.morsel_dop(e.rows);
                c + e.rows / edop + worker_overhead(edop)
            }
            LogicalPlan::ScalarAgg { input, .. } => {
                let (c, e) = self.cost_inner(input, group);
                c + e.rows
            }
            LogicalPlan::Distinct { input } => {
                let (c, e) = self.cost_inner(input, group);
                // Hash-build factor.
                c + 1.2 * e.rows
            }
            LogicalPlan::GroupBy { input, .. } => {
                let (c, e) = self.cost_inner(input, group);
                // Hash-build factor; the engine hash-partitions the fold
                // across workers above its partition floor.
                let edop = self.partition_dop(e.rows);
                c + 1.2 * e.rows / edop + worker_overhead(edop)
            }
            LogicalPlan::OrderBy { input, .. } => {
                let (c, e) = self.cost_inner(input, group);
                c + sort_cost(e.rows)
            }
            LogicalPlan::Join { left, right, predicate, .. }
            | LogicalPlan::LeftOuterJoin { left, right, predicate } => {
                let (cl, el) = self.cost_inner(left, group);
                let (cr, er) = self.cost_inner(right, group);
                if has_equi_conjunct(predicate, left.schema().len()) {
                    // Probe + build (hashing) + output-row formation,
                    // each weighted above a plain scan pass: join rows
                    // hash, compare and concatenate. The engine probes
                    // over morsels of the left stream (output rows form
                    // inside those morsels) and builds per-chunk tables
                    // above its partition floor, so each side divides by
                    // its own effective dop.
                    let probe_dop = self.morsel_dop(el.rows);
                    let build_dop = self.partition_dop(er.rows);
                    cl + cr
                        + (el.rows + 2.0 * out.rows) / probe_dop
                        + 1.5 * er.rows / build_dop
                        + worker_overhead(probe_dop.max(build_dop))
                } else {
                    cl + cr + el.rows * er.rows
                }
            }
            LogicalPlan::UnionAll { inputs } => {
                inputs.iter().map(|i| self.cost_inner(i, group).0).sum()
            }
            LogicalPlan::Apply { outer, inner, .. } => {
                let (co, eo) = self.cost_inner(outer, group);
                let (ci, _) = self.cost_inner(inner, group);
                if plan_is_correlated(inner, 0) {
                    co + eo.rows * ci
                } else {
                    // Uncorrelated inner is cached across outer rows.
                    co + ci + eo.rows
                }
            }
            LogicalPlan::Exists { input, .. } => {
                // Short-circuits after the first row on average.
                let (c, _) = self.cost_inner(input, group);
                0.5 * c
            }
            LogicalPlan::GApply { input, group_cols, pgq } => {
                let (ci, eo) = self.cost_inner(input, group);
                let groups = self.group_count(&eo, group_cols);
                let avg_group = eo.scaled(if eo.rows > 0.0 { 1.0 / groups.max(1.0) } else { 0.0 });
                let (per_group_cost, _) = self.cost_inner(pgq, Some(&avg_group));
                // §4.4: per-group cost × number of groups, plus the
                // partition phase (hash pass over the outer result).
                // With dop > 1 the execution phase splits across workers
                // (groups are independent, §3), so the per-group portion
                // divides by the effective dop; the partition pass and a
                // per-worker startup/merge charge stay serial. Below the
                // engine's group threshold the parallel path never
                // engages, so the estimate stays serial too.
                let edop = self.effective_dop(groups);
                ci + 1.2 * eo.rows
                    + groups * (per_group_cost + PGQ_OVERHEAD) / edop
                    + if edop > 1.0 { edop * PARALLEL_WORKER_OVERHEAD } else { 0.0 }
            }
        };
        (cost, out)
    }
}

/// Fixed per-group overhead of launching the per-group query.
const PGQ_OVERHEAD: f64 = 4.0;

/// Per-worker charge for a parallel GApply: plan cloning, thread spawn,
/// and the deterministic merge of per-worker buffers.
const PARALLEL_WORKER_OVERHEAD: f64 = 32.0;

/// Minimum group count for the engine's parallel GApply path to engage
/// (mirrors `ParallelConfig::group_threshold` in `xmlpub-engine`).
const PARALLEL_GROUP_THRESHOLD: f64 = 2.0;

/// Minimum input rows for the engine's morsel-parallel pipeline path
/// (mirrors `ParallelConfig::morsel_min_rows` in `xmlpub-engine`).
const MORSEL_MIN_ROWS: f64 = 16384.0;

/// Minimum input rows for the engine's partitioned hash build/fold
/// (mirrors `ParallelConfig::partition_min_rows` in `xmlpub-engine`).
const PARTITION_MIN_ROWS: f64 = 8192.0;

/// Minimum rows of work per morsel worker (mirrors
/// `ParallelConfig::morsel_rows_per_worker` in `xmlpub-engine`) — the
/// engine caps morsel workers at `rows / 8192`, so per-batch thread
/// startup only happens when each worker has many batches to process.
const MORSEL_ROWS_PER_WORKER: f64 = 8192.0;

/// Per-worker charge for a morsel-parallel operator: closure dispatch,
/// the shared cursor, and the morsel-order merge. Smaller than GApply's
/// [`PARALLEL_WORKER_OVERHEAD`] — no plan cloning or thread spawn per
/// operator, workers come from the engine's scoped pool.
const MORSEL_WORKER_OVERHEAD: f64 = 8.0;

/// Overhead charge for `edop` effective workers (zero when serial).
fn worker_overhead(edop: f64) -> f64 {
    if edop > 1.0 {
        edop * MORSEL_WORKER_OVERHEAD
    } else {
        0.0
    }
}

impl CostModel<'_> {
    /// Workers the engine would actually use for `groups` groups: 1 when
    /// serial or under the engine's group threshold, else `min(dop,
    /// groups)` — a worker can't be kept busy without a group to run.
    fn effective_dop(&self, groups: f64) -> f64 {
        if self.dop <= 1 || groups < PARALLEL_GROUP_THRESHOLD {
            1.0
        } else {
            (self.dop as f64).min(groups.max(1.0))
        }
    }

    /// Workers the engine's morsel scheduler would keep busy on a
    /// `rows`-long pipeline segment: 1 when serial or below the morsel
    /// floor, else dop capped so every worker gets at least a full
    /// worker-share of rows (whole workers, as the engine counts them).
    fn morsel_dop(&self, rows: f64) -> f64 {
        if self.dop <= 1 || rows < MORSEL_MIN_ROWS {
            1.0
        } else {
            (self.dop as f64).min((rows / MORSEL_ROWS_PER_WORKER).floor().max(1.0))
        }
    }

    /// Workers for the engine's partitioned hash build/fold on `rows`
    /// input rows: 1 when serial or below the partition floor.
    fn partition_dop(&self, rows: f64) -> f64 {
        if self.dop <= 1 || rows < PARTITION_MIN_ROWS {
            1.0
        } else {
            self.dop as f64
        }
    }
}

fn sort_cost(rows: f64) -> f64 {
    if rows <= 1.0 {
        rows
    } else {
        rows * rows.log2()
    }
}

fn has_equi_conjunct(predicate: &Expr, left_len: usize) -> bool {
    conjuncts(predicate).iter().any(|c| match c {
        Expr::Binary { op: BinOp::Eq, left, right } => matches!(
            (&**left, &**right),
            (Expr::Column(a), Expr::Column(b))
                if (*a < left_len) != (*b < left_len)
        ),
        _ => false,
    })
}

/// Does the plan reference the outer row of an apply `level` levels up?
fn plan_is_correlated(plan: &LogicalPlan, level: usize) -> bool {
    let mut found = false;
    let mut check = |e: &Expr| {
        if e.has_correlated_at(level) {
            found = true;
        }
    };
    match plan {
        LogicalPlan::Select { predicate, .. } => check(predicate),
        LogicalPlan::Project { items, .. } => items.iter().for_each(|i| check(&i.expr)),
        LogicalPlan::Join { predicate, .. } => check(predicate),
        LogicalPlan::GroupBy { aggs, .. } | LogicalPlan::ScalarAgg { aggs, .. } => {
            aggs.iter().filter_map(|a| a.arg.as_ref()).for_each(&mut check)
        }
        LogicalPlan::OrderBy { keys, .. } => keys.iter().for_each(|k| check(&k.expr)),
        _ => {}
    }
    if found {
        return true;
    }
    match plan {
        LogicalPlan::Apply { outer, inner, .. } => {
            plan_is_correlated(outer, level) || plan_is_correlated(inner, level + 1)
        }
        other => other.children().iter().any(|c| plan_is_correlated(c, level)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_algebra::Catalog;
    use xmlpub_algebra::TableDef;
    use xmlpub_common::{row, DataType, Field, Relation, Schema};
    use xmlpub_expr::AggExpr;

    fn catalog() -> Catalog {
        let schema =
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Float)]);
        let def = TableDef::new("t", schema);
        let mut rows = Vec::new();
        for k in 0..10 {
            for j in 0..10 {
                rows.push(row![k, (j as f64) * 10.0]);
            }
        }
        let data = Relation::new(def.schema.clone(), rows).unwrap();
        let mut cat = Catalog::new();
        cat.register(def, data).unwrap();
        cat
    }

    fn scan(cat: &Catalog) -> LogicalPlan {
        LogicalPlan::scan("t", cat.table("t").unwrap().schema.clone())
    }

    #[test]
    fn scan_estimate_uses_stats() {
        let cat = catalog();
        let stats = Statistics::from_catalog(&cat);
        let cm = CostModel::new(&stats);
        let est = cm.estimate(&scan(&cat));
        assert_eq!(est.rows, 100.0);
        assert_eq!(est.cols[0].distinct, 10);
    }

    #[test]
    fn selection_scales_rows() {
        let cat = catalog();
        let stats = Statistics::from_catalog(&cat);
        let cm = CostModel::new(&stats);
        // v ranges 0..90; v > 45 → ~half.
        let est = cm.estimate(&scan(&cat).select(Expr::col(1).gt(Expr::lit(45.0))));
        assert!((est.rows - 50.0).abs() < 5.0, "rows = {}", est.rows);
        // k = 3 → 1/10.
        let est = cm.estimate(&scan(&cat).select(Expr::col(0).eq(Expr::lit(3))));
        assert!((est.rows - 10.0).abs() < 1.0, "rows = {}", est.rows);
    }

    #[test]
    fn gapply_groups_by_distinct_count() {
        let cat = catalog();
        let stats = Statistics::from_catalog(&cat);
        let cm = CostModel::new(&stats);
        let outer = scan(&cat);
        let pgq = LogicalPlan::group_scan(outer.schema())
            .scalar_agg(vec![AggExpr::avg(Expr::col(1), "a")]);
        let plan = outer.gapply(vec![0], pgq);
        let est = cm.estimate(&plan);
        // 10 groups, one row per group.
        assert!((est.rows - 10.0).abs() < 0.5, "rows = {}", est.rows);
    }

    #[test]
    fn fk_join_estimates_left_rows() {
        let cat = catalog();
        let stats = Statistics::from_catalog(&cat);
        let cm = CostModel::new(&stats);
        let j = scan(&cat).fk_join(scan(&cat), Expr::col(0).eq(Expr::col(2)));
        assert_eq!(cm.estimate(&j).rows, 100.0);
    }

    #[test]
    fn correlated_apply_costs_per_row() {
        let cat = catalog();
        let stats = Statistics::from_catalog(&cat);
        let cm = CostModel::new(&stats);
        let correlated_inner = scan(&cat)
            .select(Expr::col(0).eq(Expr::Correlated { level: 0, index: 0 }))
            .scalar_agg(vec![AggExpr::count_star("c")]);
        let uncorrelated_inner = scan(&cat).scalar_agg(vec![AggExpr::count_star("c")]);
        let corr = cm.cost(&scan(&cat).apply(correlated_inner, xmlpub_algebra::ApplyMode::Cross));
        let uncorr =
            cm.cost(&scan(&cat).apply(uncorrelated_inner, xmlpub_algebra::ApplyMode::Cross));
        assert!(corr > 5.0 * uncorr, "correlated {corr} should dwarf uncorrelated {uncorr}");
    }

    #[test]
    fn cost_monotone_in_plan_size() {
        let cat = catalog();
        let stats = Statistics::from_catalog(&cat);
        let cm = CostModel::new(&stats);
        let base = cm.cost(&scan(&cat));
        let with_sort = cm.cost(&scan(&cat).order_by(vec![xmlpub_algebra::SortKey::asc(0)]));
        assert!(with_sort > base);
    }

    #[test]
    fn parallel_gapply_divides_per_group_cost() {
        let cat = catalog();
        let stats = Statistics::from_catalog(&cat);
        let cm = CostModel::new(&stats);
        let outer = scan(&cat);
        let pgq = LogicalPlan::group_scan(outer.schema())
            .scalar_agg(vec![AggExpr::avg(Expr::col(1), "a")]);
        let plan = outer.gapply(vec![0], pgq); // 10 groups
        let serial = cm.cost(&plan);
        let dop4 = cm.with_dop(4).cost(&plan);
        let dop1 = cm.with_dop(1).cost(&plan);
        assert_eq!(serial, dop1, "with_dop(1) must match serial costing");
        assert!(dop4 < serial, "dop=4 ({dop4}) should beat serial ({serial}) on 10 groups");
        // dop beyond the group count buys nothing over dop = groups.
        let dop10 = cm.with_dop(10).cost(&plan);
        let dop100 = cm.with_dop(100).cost(&plan);
        assert_eq!(dop10, dop100, "effective dop is capped at the group count");
    }

    #[test]
    fn parallel_gapply_stays_serial_below_group_threshold() {
        let cat = catalog();
        let stats = Statistics::from_catalog(&cat);
        let cm = CostModel::new(&stats);
        let outer = scan(&cat);
        // Grouping on a constant-ish single group: k = 3 filter leaves one
        // distinct k, so the group count estimate falls below the engine's
        // 2-group threshold and the parallel path never engages.
        let filtered = outer.select(Expr::col(0).eq(Expr::lit(3)));
        let pgq = LogicalPlan::group_scan(filtered.schema())
            .scalar_agg(vec![AggExpr::avg(Expr::col(1), "a")]);
        let plan = filtered.gapply(vec![0], pgq);
        assert_eq!(
            cm.cost(&plan),
            cm.with_dop(8).cost(&plan),
            "a single group must cost the same at any dop"
        );
    }

    /// 40000-row table — enough rows to give several morsel workers a
    /// full 8192-row share, and well above the 8192-row partition floor,
    /// so every pipeline dop divisor engages.
    fn big_catalog() -> Catalog {
        let schema =
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Float)]);
        let def = TableDef::new("big", schema);
        let mut rows = Vec::new();
        for k in 0..50 {
            for j in 0..800 {
                rows.push(row![k, (j as f64) * 0.5]);
            }
        }
        let data = Relation::new(def.schema.clone(), rows).unwrap();
        let mut cat = Catalog::new();
        cat.register(def, data).unwrap();
        cat
    }

    fn big_scan(cat: &Catalog) -> LogicalPlan {
        LogicalPlan::scan("big", cat.table("big").unwrap().schema.clone())
    }

    #[test]
    fn morsel_costing_divides_pipeline_work() {
        let cat = big_catalog();
        let stats = Statistics::from_catalog(&cat);
        let cm = CostModel::new(&stats);
        // Filter + project + self-join + aggregate: every arm the engine
        // runs through the morsel scheduler.
        let plan = big_scan(&cat)
            .select(Expr::col(1).gt(Expr::lit(10.0)))
            .join(big_scan(&cat), Expr::col(0).eq(Expr::col(2)))
            .group_by(vec![0], vec![AggExpr::count_star("c")]);
        let serial = cm.cost(&plan);
        assert_eq!(serial, cm.with_dop(1).cost(&plan), "with_dop(1) must match serial costing");
        let dop4 = cm.with_dop(4).cost(&plan);
        assert!(dop4 < serial, "dop=4 ({dop4}) should beat serial ({serial}) on 40000 rows");
        // More workers monotonically help (overhead grows slower than
        // the divided work shrinks at this size).
        let dop8 = cm.with_dop(8).cost(&plan);
        assert!(dop8 <= dop4, "dop=8 ({dop8}) should not cost more than dop=4 ({dop4})");
    }

    #[test]
    fn morsel_costing_stays_serial_below_row_floor() {
        let cat = catalog(); // 100 rows, far below both parallel floors
        let stats = Statistics::from_catalog(&cat);
        let cm = CostModel::new(&stats);
        let plan = scan(&cat)
            .select(Expr::col(1).gt(Expr::lit(10.0)))
            .group_by(vec![0], vec![AggExpr::count_star("c")]);
        assert_eq!(
            cm.cost(&plan),
            cm.with_dop(8).cost(&plan),
            "inputs below the morsel floor must cost the same at any dop"
        );
    }

    #[test]
    fn exists_probability_estimate() {
        let cat = catalog();
        let stats = Statistics::from_catalog(&cat);
        let cm = CostModel::new(&stats);
        let e = cm.estimate(&scan(&cat).exists());
        assert!(e.rows <= 1.0);
        let ne = cm.estimate(&scan(&cat).not_exists());
        assert!(ne.rows <= 1.0);
    }
}
