//! *Group Selection* (§4.2): queries that treat each group as a complex
//! object and keep or drop the *whole group* based on a predicate.
//!
//! Two variants, as in the paper:
//!
//! * [`ExistsGroupSelection`] — the per-group query returns the whole
//!   group iff *some* tuple satisfies a condition S (the XPath-style
//!   "suppliers that supply some expensive part"). Rewrites to: compute
//!   the qualifying group ids with a plain selection, then reconstruct
//!   the groups by joining the distinct ids back to the outer query
//!   (Figure 5/6).
//! * [`AggregateSelection`] — the group qualifies based on an aggregate
//!   (e.g. `avg(price) > 10000`). Rewrites to a pipelined group-by
//!   computing just the aggregate, a selection over it, and a join back.
//!
//! Both duplicate the outer query T, so they only win when the predicate
//! is selective; the paper's Table 1 shows average benefit < average-
//! over-wins for exactly this reason. When `RuleContext::cost_gate` is
//! set the rules fire only if the §4.4 cost model prefers the rewrite.

use crate::cost::CostModel;
use crate::rules::{Rule, RuleContext};
use xmlpub_algebra::analysis::direct_map;
use xmlpub_algebra::{ApplyMode, LogicalPlan, ProjectItem};
use xmlpub_analysis::{Claim, ClaimSubject};
use xmlpub_common::ColumnSet;
use xmlpub_expr::{AggFunc, Expr};

/// Extract the conjunction of selection conditions along a
/// select/project/distinct/orderby chain down to the group scan,
/// rewritten onto group-scan columns. `None` if the chain contains
/// anything else or a condition that does not rewrite cleanly.
fn extract_scan_condition(plan: &LogicalPlan) -> Option<Expr> {
    match plan {
        LogicalPlan::GroupScan { .. } => Some(Expr::lit(true)),
        LogicalPlan::Select { input, predicate } => {
            let below = extract_scan_condition(input)?;
            if predicate.has_correlated() {
                return None;
            }
            let dm = direct_map(input);
            let cond = predicate.remap_columns(&|c| dm.get(c).copied().flatten())?;
            Some(if below == Expr::lit(true) { cond } else { below.and(cond) })
        }
        LogicalPlan::Project { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::OrderBy { input, .. } => extract_scan_condition(input),
        _ => None,
    }
}

/// Equality join of the group ids (left, positions `0..k`) with the
/// outer query (right) on the grouping columns `c_i`.
fn ids_join_predicate(group_cols: &[usize], key_len: usize) -> Expr {
    let mut pred = Expr::lit(true);
    for (i, &c) in group_cols.iter().enumerate() {
        let eq = Expr::col(i).eq(Expr::col(key_len + c));
        pred = if i == 0 { eq } else { pred.and(eq) };
    }
    pred
}

/// If the per-group result is projected through bare scan columns on top
/// of `inner`, peel the projection off. Returns (core, projected scan
/// columns or `None` for "whole group").
fn peel_scan_projection(pgq: &LogicalPlan) -> (&LogicalPlan, Option<Vec<usize>>) {
    if let LogicalPlan::Project { input, items } = pgq {
        let dm = direct_map(input);
        let cols: Option<Vec<usize>> = items
            .iter()
            .map(|it| match (&it.expr, &it.alias) {
                (Expr::Column(i), None) => dm.get(*i).copied().flatten(),
                _ => None,
            })
            .collect();
        if let Some(cols) = cols {
            return (input, Some(cols));
        }
    }
    (pgq, None)
}

fn gate(
    ctx: &RuleContext<'_>,
    rule: &'static str,
    original: &LogicalPlan,
    rewritten: &LogicalPlan,
) -> bool {
    if !ctx.cost_gate {
        return true;
    }
    let cm = CostModel::new(ctx.stats);
    if cm.cost(rewritten) < cm.cost(original) {
        true
    } else {
        ctx.record_veto(rule);
        false
    }
}

/// The exists-style group selection rule (Figure 5).
pub struct ExistsGroupSelection;

impl Rule for ExistsGroupSelection {
    fn name(&self) -> &'static str {
        "group-selection-exists"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RuleContext<'_>) -> Option<LogicalPlan> {
        let LogicalPlan::GApply { input: t, group_cols, pgq } = plan else {
            return None;
        };
        let (core, projection) = peel_scan_projection(pgq);
        // Core shape: Apply(GroupScan, Exists(σ_S(GroupScan …))).
        let LogicalPlan::Apply { outer, inner, mode: ApplyMode::Cross } = core else {
            return None;
        };
        if !matches!(**outer, LogicalPlan::GroupScan { .. }) {
            return None;
        }
        let LogicalPlan::Exists { input: cond_plan, negated: false } = &**inner else {
            return None;
        };
        let s = extract_scan_condition(cond_plan)?;
        if s == Expr::lit(true) {
            return None;
        }

        // Figure 5's right-hand side: distinct ids of qualifying groups,
        // joined back to T on the grouping columns.
        let key_len = group_cols.len();
        let ids = t
            .as_ref()
            .clone()
            .select(s)
            .project(group_cols.iter().map(|&c| ProjectItem::col(c)).collect())
            .distinct();
        // Side condition: the join-back must reproduce each qualifying
        // group exactly once, i.e. the ids relation must be unique on
        // the grouping columns. The analyzer proves it (distinct makes
        // the whole row a key); the claim is re-checked by lint.
        let ids_key: ColumnSet = (0..key_len).collect();
        if !ctx.derive(&ids).has_key_within(&ids_key) {
            return None;
        }
        let joined = ids.join(t.as_ref().clone(), ids_join_predicate(group_cols, key_len));
        let (rewritten, ids_at) = match projection {
            None => (joined, vec![0]),
            Some(cols) => (
                joined.project(
                    (0..key_len)
                        .map(ProjectItem::col)
                        .chain(cols.iter().map(|&c| ProjectItem::col(key_len + c)))
                        .collect(),
                ),
                vec![0, 0],
            ),
        };
        if !gate(ctx, self.name(), plan, &rewritten) {
            return None;
        }
        ctx.claim(Claim::key_within(
            ClaimSubject::Output,
            ids_at,
            ids_key,
            "qualifying group ids must be duplicate-free before the join-back",
        ));
        Some(rewritten)
    }
}

/// The aggregate-based group selection rule (§4.2, second query).
pub struct AggregateSelection;

impl Rule for AggregateSelection {
    fn name(&self) -> &'static str {
        "group-selection-aggregate"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RuleContext<'_>) -> Option<LogicalPlan> {
        let LogicalPlan::GApply { input: t, group_cols, pgq } = plan else {
            return None;
        };
        let gs_len = t.schema().len();
        let key_len = group_cols.len();
        let (core, projection) = peel_scan_projection(pgq);
        // Core shape: σ_cond(Apply(GroupScan, aggregate(σ_Sin(GroupScan)))).
        let LogicalPlan::Select { input: sel_in, predicate: cond } = core else {
            return None;
        };
        let LogicalPlan::Apply { outer, inner, mode } = &**sel_in else {
            return None;
        };
        if !matches!(mode, ApplyMode::Cross | ApplyMode::Scalar)
            || !matches!(**outer, LogicalPlan::GroupScan { .. })
        {
            return None;
        }
        let LogicalPlan::ScalarAgg { input: agg_src, aggs } = &**inner else {
            return None;
        };
        let s_in = extract_scan_condition(agg_src)?;
        // With an inner filter, a group whose rows all fail it vanishes
        // from the rewritten group-by; that only matches the original
        // semantics for NULL-on-empty aggregates (avg/sum/min/max), whose
        // NULL result fails any comparison. count(∅) = 0 could pass.
        if s_in != Expr::lit(true)
            && aggs.iter().any(|a| {
                matches!(a.func, AggFunc::Count | AggFunc::CountStar | AggFunc::CountDistinct)
            })
        {
            return None;
        }
        // Remap aggregate arguments onto scan columns.
        let src_map = direct_map(agg_src);
        let aggs_on_t = aggs
            .iter()
            .map(|a| {
                a.remap_columns(&|c| src_map.get(c).copied().flatten())
                    .filter(|r| !r.arg.as_ref().is_some_and(|e| e.has_correlated()))
            })
            .collect::<Option<Vec<_>>>()?;
        // The selection condition may reference group-scan columns only
        // if they are grouping columns, plus the aggregate outputs.
        let cond_on_gb = cond.remap_columns(&|c| {
            if c < gs_len {
                group_cols.iter().position(|&g| g == c)
            } else {
                Some(key_len + (c - gs_len))
            }
        })?;
        if cond.has_correlated() {
            return None;
        }
        // The per-group result must not expose the aggregate columns —
        // they do not exist in the join-back plan.
        let exposed = match &projection {
            Some(cols) => cols.clone(),
            // No projection: the Apply's output includes the aggregate
            // column, which we cannot rebuild; bail.
            None => return None,
        };

        let base = if s_in == Expr::lit(true) {
            t.as_ref().clone()
        } else {
            t.as_ref().clone().select(s_in)
        };
        let ids = base
            .group_by(group_cols.clone(), aggs_on_t)
            .select(cond_on_gb)
            .project((0..key_len).map(ProjectItem::col).collect());
        // Side condition: one id row per qualifying group, or the
        // join-back duplicates groups. Provable because the group-by
        // keys are a key of its output and survive the select/project.
        let ids_key: ColumnSet = (0..key_len).collect();
        if !ctx.derive(&ids).has_key_within(&ids_key) {
            return None;
        }
        let joined = ids.join(t.as_ref().clone(), ids_join_predicate(group_cols, key_len));
        let rewritten = joined.project(
            (0..key_len)
                .map(ProjectItem::col)
                .chain(exposed.iter().map(|&c| ProjectItem::col(key_len + c)))
                .collect(),
        );
        if !gate(ctx, self.name(), plan, &rewritten) {
            return None;
        }
        ctx.claim(Claim::key_within(
            ClaimSubject::Output,
            vec![0, 0],
            ids_key,
            "qualifying group ids must be duplicate-free before the join-back",
        ));
        Some(rewritten)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Statistics;
    use xmlpub_algebra::{Catalog, TableDef};
    use xmlpub_common::{row, DataType, Field, Relation, Schema};
    use xmlpub_expr::AggExpr;

    fn ctx(stats: &Statistics) -> RuleContext<'_> {
        RuleContext { stats, cost_gate: false, vetoes: None, claims: None }
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("name", DataType::Str),
            Field::new("price", DataType::Float),
        ])
    }

    fn catalog() -> Catalog {
        let def = TableDef::new("t", schema());
        let data = Relation::new(
            def.schema.clone(),
            vec![
                row![1, "a", 10.0],
                row![1, "b", 2000.0],
                row![2, "c", 5.0],
                row![2, "d", 7.0],
                row![3, "e", 9000.0],
            ],
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.register(def, data).unwrap();
        cat
    }

    fn scan(cat: &Catalog) -> LogicalPlan {
        LogicalPlan::scan("t", cat.table("t").unwrap().schema.clone())
    }

    /// PGQ: whole group iff some row has price > threshold.
    fn exists_pgq(gschema: &Schema, threshold: f64) -> LogicalPlan {
        let gs = || LogicalPlan::group_scan(gschema.clone());
        let cond = gs().select(Expr::col(2).gt(Expr::lit(threshold)));
        gs().apply(cond.exists(), ApplyMode::Cross)
    }

    #[test]
    fn exists_rule_rewrites_and_preserves_results() {
        let stats = Statistics::empty();
        let cat = catalog();
        let gschema = scan(&cat).schema();
        let plan = scan(&cat).gapply(vec![0], exists_pgq(&gschema, 1000.0));
        let out = ExistsGroupSelection.apply(&plan, &ctx(&stats)).unwrap();
        // Rewritten form is a join, no GApply left.
        assert!(!out.any_node(&|p| matches!(p, LogicalPlan::GApply { .. })));
        assert!(out.any_node(&|p| matches!(p, LogicalPlan::Distinct { .. })));
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&out, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
        // Groups 1 and 3 qualify → 2 + 1 rows, crossed with their key.
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn exists_rule_with_projection() {
        let stats = Statistics::empty();
        let cat = catalog();
        let gschema = scan(&cat).schema();
        let pgq = exists_pgq(&gschema, 1000.0).project_cols(&[1]);
        let plan = scan(&cat).gapply(vec![0], pgq);
        let out = ExistsGroupSelection.apply(&plan, &ctx(&stats)).unwrap();
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&out, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
        assert_eq!(a.schema().len(), 2); // key + name
    }

    #[test]
    fn exists_rule_ignores_other_shapes() {
        let stats = Statistics::empty();
        let cat = catalog();
        let gschema = scan(&cat).schema();
        // Plain aggregate PGQ is not a group selection.
        let pgq =
            LogicalPlan::group_scan(gschema.clone()).scalar_agg(vec![AggExpr::count_star("n")]);
        let plan = scan(&cat).gapply(vec![0], pgq);
        assert!(ExistsGroupSelection.apply(&plan, &ctx(&stats)).is_none());
        // NOT EXISTS is not handled by this rule.
        let gs = || LogicalPlan::group_scan(gschema.clone());
        let pgq =
            gs().apply(gs().select(Expr::col(2).gt(Expr::lit(1.0))).not_exists(), ApplyMode::Cross);
        let plan = scan(&cat).gapply(vec![0], pgq);
        assert!(ExistsGroupSelection.apply(&plan, &ctx(&stats)).is_none());
    }

    /// PGQ: the whole group (name, price part) iff avg(price) > x.
    fn agg_sel_pgq(gschema: &Schema, threshold: f64) -> LogicalPlan {
        let gs = || LogicalPlan::group_scan(gschema.clone());
        let avg = gs().scalar_agg(vec![AggExpr::avg(Expr::col(2), "avg")]);
        gs().apply(avg, ApplyMode::Scalar)
            .select(Expr::col(3).gt(Expr::lit(threshold)))
            .project_cols(&[1, 2])
    }

    #[test]
    fn aggregate_selection_rewrites_and_preserves_results() {
        let stats = Statistics::empty();
        let cat = catalog();
        let gschema = scan(&cat).schema();
        let plan = scan(&cat).gapply(vec![0], agg_sel_pgq(&gschema, 100.0));
        let out = AggregateSelection.apply(&plan, &ctx(&stats)).unwrap();
        assert!(!out.any_node(&|p| matches!(p, LogicalPlan::GApply { .. })));
        assert!(out.any_node(&|p| matches!(p, LogicalPlan::GroupBy { .. })));
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&out, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
        // Groups 1 (avg 1005) and 3 (avg 9000) qualify.
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn aggregate_selection_requires_projection() {
        let stats = Statistics::empty();
        let cat = catalog();
        let gschema = scan(&cat).schema();
        let gs = || LogicalPlan::group_scan(gschema.clone());
        let avg = gs().scalar_agg(vec![AggExpr::avg(Expr::col(2), "avg")]);
        // Without projecting the aggregate column away, the rewrite
        // cannot rebuild the output.
        let pgq = gs().apply(avg, ApplyMode::Scalar).select(Expr::col(3).gt(Expr::lit(100.0)));
        let plan = scan(&cat).gapply(vec![0], pgq);
        assert!(AggregateSelection.apply(&plan, &ctx(&stats)).is_none());
    }

    #[test]
    fn aggregate_selection_with_inner_filter() {
        let stats = Statistics::empty();
        let cat = catalog();
        let gschema = scan(&cat).schema();
        let gs = || LogicalPlan::group_scan(gschema.clone());
        // avg over rows with price > 5 only.
        let avg = gs()
            .select(Expr::col(2).gt(Expr::lit(5.0)))
            .scalar_agg(vec![AggExpr::avg(Expr::col(2), "avg")]);
        let pgq = gs()
            .apply(avg, ApplyMode::Scalar)
            .select(Expr::col(3).gt(Expr::lit(100.0)))
            .project_cols(&[1, 2]);
        let plan = scan(&cat).gapply(vec![0], pgq);
        let out = AggregateSelection.apply(&plan, &ctx(&stats)).unwrap();
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&out, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
    }

    #[test]
    fn aggregate_selection_count_with_inner_filter_blocked() {
        let stats = Statistics::empty();
        let cat = catalog();
        let gschema = scan(&cat).schema();
        let gs = || LogicalPlan::group_scan(gschema.clone());
        // count over a filtered group: count(∅)=0 could satisfy `< 1`,
        // so the rewrite is unsound and must not fire.
        let cnt =
            gs().select(Expr::col(2).gt(Expr::lit(1e9))).scalar_agg(vec![AggExpr::count_star("n")]);
        let pgq = gs()
            .apply(cnt, ApplyMode::Scalar)
            .select(Expr::col(3).lt(Expr::lit(1)))
            .project_cols(&[1, 2]);
        let plan = scan(&cat).gapply(vec![0], pgq);
        assert!(AggregateSelection.apply(&plan, &ctx(&stats)).is_none());
    }

    #[test]
    fn cost_gate_blocks_unselective_predicates() {
        let cat = catalog();
        let stats = Statistics::from_catalog(&cat);
        let gschema = scan(&cat).schema();
        // price > 1.0 keeps every group: the rewrite doubles the work for
        // nothing, so the gated rule declines.
        let plan = scan(&cat).gapply(vec![0], exists_pgq(&gschema, 1.0));
        let gated = RuleContext { stats: &stats, cost_gate: true, vetoes: None, claims: None };
        assert!(ExistsGroupSelection.apply(&plan, &gated).is_none());
        // A selective predicate passes the gate.
        let plan = scan(&cat).gapply(vec![0], exists_pgq(&gschema, 8500.0));
        assert!(ExistsGroupSelection.apply(&plan, &gated).is_some());
    }
}
