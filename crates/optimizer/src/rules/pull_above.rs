//! Pulling GApply *above* a join — the companion rule the paper
//! attributes to Galindo-Legaria & Joshi: "A rule to pull GApply above a
//! join is proposed in [12]" (§4.3). The inverse direction of invariant
//! grouping: given
//!
//! ```text
//! Join_fk( GApply(T, C, PGQ), R )        -- join on grouping columns
//! ```
//!
//! move the join below the operator:
//!
//! ```text
//! GApply( Join_fk(T, R), C, PGQ' × per-group R-columns )
//! ```
//!
//! Sound when the join is a foreign-key join whose predicate touches only
//! grouping columns on the GApply side: then every row of a group joins
//! the *same* single `R` row, so groups keep their contents (extended by
//! constant columns) and the `R` columns can be re-emitted per group via
//! `min` aggregates over the widened group.
//!
//! Not in the default pass pipeline — it is the inverse of invariant
//! grouping and the two would thrash; it exists for plans where the
//! caller wants one partition pass over a pre-joined input (and as the
//! [12] reference implementation). Enable with
//! `OptimizerConfig::only("pull-gapply-above-join")`.

use crate::rules::{Rule, RuleContext};
use xmlpub_algebra::analysis::adapted_pgq;
use xmlpub_algebra::{ApplyMode, LogicalPlan};
use xmlpub_expr::{AggExpr, AggFunc, Expr};

/// The pull-above rule.
pub struct PullGApplyAboveJoin;

impl Rule for PullGApplyAboveJoin {
    fn name(&self) -> &'static str {
        "pull-gapply-above-join"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &RuleContext<'_>) -> Option<LogicalPlan> {
        let LogicalPlan::Join { left, right, predicate, fk_left_to_right: true } = plan else {
            return None;
        };
        let LogicalPlan::GApply { input, group_cols, pgq } = &**left else {
            return None;
        };
        if predicate.has_correlated() {
            return None;
        }
        let key_len = group_cols.len();
        let ga_len = left.schema().len();
        // Join predicate may reference only grouping columns on the
        // GApply side (otherwise a per-row value feeds the join and the
        // groups would not share their match).
        if !predicate.columns().iter().all(|c| c < key_len || c >= ga_len) {
            return None;
        }

        // Rebase the predicate onto Join(T, R): key position i → the
        // grouping column C[i] of T; right column j → shifted left by
        // (ga_len - input_len).
        let input_len = input.schema().len();
        let pred = predicate.remap_columns(&|c| {
            if c < key_len {
                Some(group_cols[c])
            } else {
                Some(c - ga_len + input_len)
            }
        })?;
        let new_input = LogicalPlan::Join {
            left: input.clone(),
            right: right.clone(),
            predicate: pred,
            fk_left_to_right: true,
        };
        let widened = new_input.schema();

        // The per-group query sees the same columns at the same indices
        // (the R columns are appended), so adaptation is a pure widening.
        let base_map: Vec<Option<usize>> = (0..input_len).map(Some).collect();
        let new_pgq = adapted_pgq(pgq, &base_map, &widened)?;

        // Re-emit the R columns per group: they are constant within a
        // group (FK join on the grouping columns), so `min` over the
        // widened group reproduces them; the cross apply attaches them to
        // every per-group output row.
        let right_width = right.schema().len();
        let right_fields = right.schema();
        let aggs: Vec<AggExpr> = (0..right_width)
            .map(|j| {
                AggExpr::new(
                    AggFunc::Min,
                    Expr::col(input_len + j),
                    right_fields.field(j).name.clone(),
                )
            })
            .collect();
        let constants = LogicalPlan::group_scan(widened.clone()).scalar_agg(aggs);
        let combined = new_pgq.apply(constants, ApplyMode::Cross);

        Some(new_input.gapply(group_cols.clone(), combined))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::invariant_grouping::InvariantGrouping;
    use crate::stats::Statistics;
    use xmlpub_algebra::{Catalog, TableDef};
    use xmlpub_common::{row, DataType, Field, Relation, Schema};

    fn ctx(stats: &Statistics) -> RuleContext<'_> {
        RuleContext { stats, cost_gate: false, vetoes: None, claims: None }
    }

    fn catalog() -> Catalog {
        let ps_schema = Schema::new(vec![
            Field::new("ps_suppkey", DataType::Int),
            Field::new("price", DataType::Float),
        ]);
        let ps = TableDef::new("partsupp", ps_schema).with_foreign_key(
            &["ps_suppkey"],
            "supplier",
            &["s_suppkey"],
        );
        let ps_data = Relation::new(
            ps.schema.clone(),
            vec![row![1, 5.0], row![1, 9.0], row![2, 2.0], row![2, 8.0]],
        )
        .unwrap();
        let sup_schema = Schema::new(vec![
            Field::new("s_suppkey", DataType::Int),
            Field::new("s_name", DataType::Str),
        ]);
        let sup = TableDef::new("supplier", sup_schema).with_primary_key(&["s_suppkey"]);
        let sup_data =
            Relation::new(sup.schema.clone(), vec![row![1, "Acme"], row![2, "Globex"]]).unwrap();
        let mut cat = Catalog::new();
        cat.register(ps, ps_data).unwrap();
        cat.register(sup, sup_data).unwrap();
        cat
    }

    /// `Join_fk(GApply(partsupp, [0], min-price), supplier)`.
    fn pulled_shape(cat: &Catalog) -> LogicalPlan {
        let ps = LogicalPlan::scan("partsupp", cat.table("partsupp").unwrap().schema.clone());
        let sup = LogicalPlan::scan("supplier", cat.table("supplier").unwrap().schema.clone());
        let pgq = LogicalPlan::group_scan(ps.schema())
            .scalar_agg(vec![AggExpr::min(Expr::col(1), "minp")]);
        let ga = ps.gapply(vec![0], pgq);
        // GA output: ps_suppkey, minp. Join key position 0 = supplier key.
        LogicalPlan::Join {
            left: Box::new(ga),
            right: Box::new(sup),
            predicate: Expr::col(0).eq(Expr::col(2)),
            fk_left_to_right: true,
        }
    }

    #[test]
    fn pulls_join_below_gapply_and_preserves_results() {
        let stats = Statistics::empty();
        let cat = catalog();
        let plan = pulled_shape(&cat);
        let out = PullGApplyAboveJoin.apply(&plan, &ctx(&stats)).unwrap();
        // New shape: GApply over the join.
        match &out {
            LogicalPlan::GApply { input, .. } => {
                assert!(matches!(**input, LogicalPlan::Join { .. }));
            }
            other => panic!("expected GApply on top, got {other:?}"),
        }
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&out, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn non_fk_join_declines() {
        let stats = Statistics::empty();
        let cat = catalog();
        let LogicalPlan::Join { left, right, predicate, .. } = pulled_shape(&cat) else {
            unreachable!()
        };
        let plan = LogicalPlan::Join { left, right, predicate, fk_left_to_right: false };
        assert!(PullGApplyAboveJoin.apply(&plan, &ctx(&stats)).is_none());
    }

    #[test]
    fn join_on_pgq_output_column_declines() {
        let stats = Statistics::empty();
        let cat = catalog();
        let ps = LogicalPlan::scan("partsupp", cat.table("partsupp").unwrap().schema.clone());
        let sup = LogicalPlan::scan("supplier", cat.table("supplier").unwrap().schema.clone());
        let pgq = LogicalPlan::group_scan(ps.schema())
            .scalar_agg(vec![AggExpr::min(Expr::col(1), "minp")]);
        let ga = ps.gapply(vec![0], pgq);
        // Join on the aggregate output (column 1): per-row value, not a key.
        let plan = LogicalPlan::Join {
            left: Box::new(ga),
            right: Box::new(sup),
            predicate: Expr::col(1).eq(Expr::col(2)),
            fk_left_to_right: true,
        };
        assert!(PullGApplyAboveJoin.apply(&plan, &ctx(&stats)).is_none());
    }

    #[test]
    fn round_trips_with_invariant_grouping() {
        // pull-above ∘ invariant-grouping is a semantic no-op: applying
        // the inverse rules in sequence keeps the result bag.
        let stats = Statistics::empty();
        let cat = catalog();
        let plan = pulled_shape(&cat);
        let pushed_down_form = PullGApplyAboveJoin.apply(&plan, &ctx(&stats)).unwrap();
        let baseline = xmlpub_engine::execute(&plan, &cat).unwrap();
        // Now push it back down with invariant grouping.
        if let Some(back) = InvariantGrouping.apply(&pushed_down_form, &ctx(&stats)) {
            let b = xmlpub_engine::execute(&back, &cat).unwrap();
            assert!(baseline.bag_eq(&b), "{}", baseline.bag_diff(&b));
        }
        let mid = xmlpub_engine::execute(&pushed_down_form, &cat).unwrap();
        assert!(baseline.bag_eq(&mid), "{}", baseline.bag_diff(&mid));
    }

    #[test]
    fn per_group_filter_survives_the_pull() {
        let stats = Statistics::empty();
        let cat = catalog();
        let ps = LogicalPlan::scan("partsupp", cat.table("partsupp").unwrap().schema.clone());
        let sup = LogicalPlan::scan("supplier", cat.table("supplier").unwrap().schema.clone());
        let pgq = LogicalPlan::group_scan(ps.schema())
            .select(Expr::col(1).gt(Expr::lit(4.0)))
            .project_cols(&[1]);
        let ga = ps.gapply(vec![0], pgq);
        let plan = LogicalPlan::Join {
            left: Box::new(ga),
            right: Box::new(sup),
            predicate: Expr::col(0).eq(Expr::col(2)),
            fk_left_to_right: true,
        };
        let out = PullGApplyAboveJoin.apply(&plan, &ctx(&stats)).unwrap();
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&out, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
        // Supplier 2 contributes only its 8.0 row; supplier 1 both rows.
        assert_eq!(a.len(), 3);
    }
}
