//! The transformation rules of §4.
//!
//! Each rule pattern-matches at the root of a subtree and, when it fires,
//! returns a semantically equivalent replacement (multiset semantics).
//! The driver in [`crate::optimizer`] decides where and how often rules
//! run; rules themselves are pure plan → plan functions, which is what
//! makes them property-testable (see `tests/` at the workspace root:
//! every rewrite is checked for bag-equality against the original plan
//! on generated databases).

use crate::stats::Statistics;
use xmlpub_algebra::LogicalPlan;
use xmlpub_analysis::{Claim, PlanProperties};

pub mod decorrelate;
pub mod group_selection;
pub mod invariant_grouping;
pub mod project_before;
pub mod pull_above;
pub mod pull_through;
pub mod select_before;
pub mod select_pushdown;
pub mod to_groupby;

pub use decorrelate::DecorrelateScalarAgg;
pub use group_selection::{AggregateSelection, ExistsGroupSelection};
pub use invariant_grouping::InvariantGrouping;
pub use project_before::ProjectBeforeGApply;
pub use pull_above::PullGApplyAboveJoin;
pub use pull_through::{ProjectIntoPgq, RemoveIdentityProject, SelectIntoPgq};
pub use select_before::SelectBeforeGApply;
pub use select_pushdown::SelectPushdown;
pub use to_groupby::ConvertToGroupBy;

/// Collects the property [`Claim`]s a rule consumed while deciding to
/// fire. The driver drains the probe into the corresponding
/// [`crate::optimizer::RuleFiring`] record, where the claims become
/// both EXPLAIN output (`\explain --verify` lists consumed side
/// conditions) and lint obligations (the `properties` pass re-derives
/// each claim and attributes failures to the claiming rule).
#[derive(Debug, Default)]
pub struct ClaimProbe(std::cell::RefCell<Vec<Claim>>);

impl ClaimProbe {
    /// Record a consumed side condition.
    pub fn record(&self, claim: Claim) {
        self.0.borrow_mut().push(claim);
    }

    /// Drain the recorded claims.
    pub fn take(&self) -> Vec<Claim> {
        std::mem::take(&mut self.0.borrow_mut())
    }
}

/// Records cost-gate rejections ("vetoes") during an optimization run,
/// so the observability layer can expose per-rule fire/veto counters. A
/// rule that matched but whose rewrite the cost model rejected is
/// invisible in the firing log; this probe is the only trace it leaves.
#[derive(Debug, Default)]
pub struct VetoProbe(std::cell::RefCell<Vec<&'static str>>);

impl VetoProbe {
    /// Record that `rule` matched but was vetoed by the cost gate.
    pub fn record(&self, rule: &'static str) {
        self.0.borrow_mut().push(rule);
    }

    /// Drain the recorded vetoes (rule names, in veto order).
    pub fn take(&self) -> Vec<&'static str> {
        std::mem::take(&mut self.0.borrow_mut())
    }
}

/// Context handed to every rule application.
pub struct RuleContext<'a> {
    /// Statistics for cost-gated rules.
    pub stats: &'a Statistics,
    /// When true, group/aggregate selection fire only if the cost model
    /// prefers the rewrite; when false they fire whenever they match
    /// (used by the Table 1 sweeps to measure the rule itself).
    pub cost_gate: bool,
    /// Optional veto recorder; rules call
    /// [`record_veto`](RuleContext::record_veto) when the cost gate
    /// rejects a matching rewrite.
    pub vetoes: Option<&'a VetoProbe>,
    /// Optional claim recorder; rules call
    /// [`claim`](RuleContext::claim) for every derived property their
    /// side conditions consumed.
    pub claims: Option<&'a ClaimProbe>,
}

impl<'a> RuleContext<'a> {
    /// A bare context: no cost gate, no veto probe, no claim probe.
    pub fn new(stats: &'a Statistics) -> Self {
        RuleContext { stats, cost_gate: false, vetoes: None, claims: None }
    }

    /// Note a cost-gate veto of `rule` (no-op without a probe).
    pub fn record_veto(&self, rule: &'static str) {
        if let Some(probe) = self.vetoes {
            probe.record(rule);
        }
    }

    /// Derive plan properties against the catalog facts behind the
    /// statistics. This is how rule side conditions consult the
    /// analyzer.
    pub fn derive(&self, plan: &LogicalPlan) -> PlanProperties {
        xmlpub_analysis::derive(plan, self.stats.catalog_properties())
    }

    /// Record a consumed side condition (no-op without a probe).
    pub fn claim(&self, claim: Claim) {
        if let Some(probe) = self.claims {
            probe.record(claim);
        }
    }
}

/// A transformation rule.
pub trait Rule {
    /// Stable rule name (appears in firing logs and EXPERIMENTS.md).
    fn name(&self) -> &'static str;
    /// Try to rewrite the subtree rooted at `plan`.
    fn apply(&self, plan: &LogicalPlan, ctx: &RuleContext<'_>) -> Option<LogicalPlan>;
}
