//! The transformation rules of §4.
//!
//! Each rule pattern-matches at the root of a subtree and, when it fires,
//! returns a semantically equivalent replacement (multiset semantics).
//! The driver in [`crate::optimizer`] decides where and how often rules
//! run; rules themselves are pure plan → plan functions, which is what
//! makes them property-testable (see `tests/` at the workspace root:
//! every rewrite is checked for bag-equality against the original plan
//! on generated databases).

use crate::stats::Statistics;
use xmlpub_algebra::LogicalPlan;

pub mod decorrelate;
pub mod group_selection;
pub mod invariant_grouping;
pub mod project_before;
pub mod pull_above;
pub mod pull_through;
pub mod select_before;
pub mod select_pushdown;
pub mod to_groupby;

pub use decorrelate::DecorrelateScalarAgg;
pub use group_selection::{AggregateSelection, ExistsGroupSelection};
pub use invariant_grouping::InvariantGrouping;
pub use project_before::ProjectBeforeGApply;
pub use pull_above::PullGApplyAboveJoin;
pub use pull_through::{ProjectIntoPgq, RemoveIdentityProject, SelectIntoPgq};
pub use select_before::SelectBeforeGApply;
pub use select_pushdown::SelectPushdown;
pub use to_groupby::ConvertToGroupBy;

/// Context handed to every rule application.
pub struct RuleContext<'a> {
    /// Statistics for cost-gated rules.
    pub stats: &'a Statistics,
    /// When true, group/aggregate selection fire only if the cost model
    /// prefers the rewrite; when false they fire whenever they match
    /// (used by the Table 1 sweeps to measure the rule itself).
    pub cost_gate: bool,
}

/// A transformation rule.
pub trait Rule {
    /// Stable rule name (appears in firing logs and EXPERIMENTS.md).
    fn name(&self) -> &'static str;
    /// Try to rewrite the subtree rooted at `plan`.
    fn apply(&self, plan: &LogicalPlan, ctx: &RuleContext<'_>) -> Option<LogicalPlan>;
}
