//! The traversal-free pull-through identities (§4, second rule class):
//!
//! * `σ(RE₁ GA_C RE₂) = RE₁ GA_C σ(RE₂)` when σ involves only columns
//!   returned by RE₂;
//! * `π_{C∪B}(RE₁ GA_C RE₂) = RE₁ GA_C π_B(RE₂)`.

use crate::rules::{Rule, RuleContext};
use xmlpub_algebra::{LogicalPlan, ProjectItem};
use xmlpub_expr::Expr;

/// Push a selection over a GApply into the per-group query when it only
/// references per-group output columns.
pub struct SelectIntoPgq;

impl Rule for SelectIntoPgq {
    fn name(&self) -> &'static str {
        "select-into-pgq"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &RuleContext<'_>) -> Option<LogicalPlan> {
        let LogicalPlan::Select { input, predicate } = plan else {
            return None;
        };
        let LogicalPlan::GApply { input: outer, group_cols, pgq } = &**input else {
            return None;
        };
        if predicate.has_correlated() {
            return None;
        }
        let key_len = group_cols.len();
        // σ must involve only columns returned by the per-group query.
        if !predicate.columns().iter().all(|c| c >= key_len) {
            return None;
        }
        let remapped = predicate.remap_columns(&|c| Some(c - key_len))?;
        Some(LogicalPlan::GApply {
            input: outer.clone(),
            group_cols: group_cols.clone(),
            pgq: Box::new(pgq.as_ref().clone().select(remapped)),
        })
    }
}

/// Push a projection over a GApply into the per-group query: the keys
/// stay, the per-group query projects only the columns the outer
/// projection keeps.
pub struct ProjectIntoPgq;

impl Rule for ProjectIntoPgq {
    fn name(&self) -> &'static str {
        "project-into-pgq"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &RuleContext<'_>) -> Option<LogicalPlan> {
        let LogicalPlan::Project { input, items } = plan else {
            return None;
        };
        let LogicalPlan::GApply { input: outer, group_cols, pgq } = &**input else {
            return None;
        };
        let key_len = group_cols.len();
        let pgq_width = pgq.schema().len();
        // Bare-column projection only.
        let cols: Vec<usize> = items
            .iter()
            .map(|it| match (&it.expr, &it.alias) {
                (Expr::Column(i), None) => Some(*i),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()?;
        // All grouping columns must survive (π_{C∪B} form).
        if !(0..key_len).all(|k| cols.contains(&k)) {
            return None;
        }
        // B = per-group output columns referenced, in first-use order.
        let mut b: Vec<usize> = Vec::new();
        for &c in &cols {
            if c >= key_len && !b.contains(&(c - key_len)) {
                b.push(c - key_len);
            }
        }
        // Fire only when the per-group output actually shrinks, otherwise
        // this loops forever rewriting a no-op.
        if b.len() >= pgq_width {
            return None;
        }
        let new_pgq =
            pgq.as_ref().clone().project(b.iter().map(|&c| ProjectItem::col(c)).collect());
        let gapply = LogicalPlan::GApply {
            input: outer.clone(),
            group_cols: group_cols.clone(),
            pgq: Box::new(new_pgq),
        };
        // Outer projection reorders onto the shrunk output.
        let new_items = cols
            .iter()
            .map(|&c| {
                if c < key_len {
                    ProjectItem::col(c)
                } else {
                    let pos = b.iter().position(|&x| x == c - key_len).unwrap();
                    ProjectItem::col(key_len + pos)
                }
            })
            .collect();
        Some(gapply.project(new_items))
    }
}

/// Remove a projection that is the exact identity (items are
/// `Column(0..n)` in order, no aliases). The binder emits one on top of
/// every SELECT list; stripping it lets the pattern rules (GApply →
/// groupby, group selection) see the real per-group query shape.
pub struct RemoveIdentityProject;

impl Rule for RemoveIdentityProject {
    fn name(&self) -> &'static str {
        "remove-identity-project"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &RuleContext<'_>) -> Option<LogicalPlan> {
        let LogicalPlan::Project { input, items } = plan else {
            return None;
        };
        if items.len() != input.schema().len() {
            return None;
        }
        let identity = items
            .iter()
            .enumerate()
            .all(|(i, it)| it.alias.is_none() && matches!(it.expr, Expr::Column(c) if c == i));
        identity.then(|| input.as_ref().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Statistics;
    use xmlpub_common::{DataType, Field, Schema};
    use xmlpub_expr::AggExpr;

    fn ctx(stats: &Statistics) -> RuleContext<'_> {
        RuleContext { stats, cost_gate: false, vetoes: None, claims: None }
    }

    fn schema3() -> Schema {
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("a", DataType::Float),
            Field::new("b", DataType::Str),
        ])
    }

    fn gapply_plan() -> LogicalPlan {
        let outer = LogicalPlan::scan("t", schema3());
        let pgq = LogicalPlan::group_scan(schema3())
            .project(vec![ProjectItem::col(1), ProjectItem::col(2)]);
        outer.gapply(vec![0], pgq)
    }

    #[test]
    fn select_pushes_into_pgq() {
        let stats = Statistics::empty();
        // Output: [k, a, b]; predicate on a (col 1 ≥ key_len 1).
        let plan = gapply_plan().select(Expr::col(1).gt(Expr::lit(5.0)));
        let out = SelectIntoPgq.apply(&plan, &ctx(&stats)).unwrap();
        match &out {
            LogicalPlan::GApply { pgq, .. } => match &**pgq {
                LogicalPlan::Select { predicate, .. } => {
                    assert_eq!(*predicate, Expr::col(0).gt(Expr::lit(5.0)));
                }
                other => panic!("expected Select in pgq, got {other:?}"),
            },
            other => panic!("expected GApply, got {other:?}"),
        }
    }

    #[test]
    fn select_on_key_columns_does_not_push() {
        let stats = Statistics::empty();
        let plan = gapply_plan().select(Expr::col(0).eq(Expr::lit(1)));
        assert!(SelectIntoPgq.apply(&plan, &ctx(&stats)).is_none());
        // Mixed key + per-group reference also stays.
        let plan = gapply_plan()
            .select(Expr::col(0).eq(Expr::lit(1)).and(Expr::col(1).gt(Expr::lit(0.0))));
        assert!(SelectIntoPgq.apply(&plan, &ctx(&stats)).is_none());
    }

    #[test]
    fn project_pushes_into_pgq() {
        let stats = Statistics::empty();
        // Keep key and only column a of the per-group output.
        let plan = gapply_plan().project_cols(&[0, 1]);
        let out = ProjectIntoPgq.apply(&plan, &ctx(&stats)).unwrap();
        match &out {
            LogicalPlan::Project { input, items } => {
                assert_eq!(items.len(), 2);
                match &**input {
                    LogicalPlan::GApply { pgq, .. } => {
                        assert_eq!(pgq.schema().len(), 1);
                        assert_eq!(pgq.schema().field(0).name, "a");
                    }
                    other => panic!("expected GApply, got {other:?}"),
                }
            }
            other => panic!("expected Project, got {other:?}"),
        }
        // Second application is a no-op (b already minimal).
        assert!(ProjectIntoPgq.apply(&out, &ctx(&stats)).is_none());
    }

    #[test]
    fn project_requires_all_keys() {
        let stats = Statistics::empty();
        let plan = gapply_plan().project_cols(&[1]);
        assert!(ProjectIntoPgq.apply(&plan, &ctx(&stats)).is_none());
    }

    #[test]
    fn project_with_expressions_does_not_fire() {
        let stats = Statistics::empty();
        let plan = gapply_plan().project(vec![
            ProjectItem::col(0),
            ProjectItem::named(Expr::col(1).gt(Expr::lit(0.0)), "pos"),
        ]);
        assert!(ProjectIntoPgq.apply(&plan, &ctx(&stats)).is_none());
    }

    #[test]
    fn select_into_pgq_preserves_results_end_to_end() {
        use xmlpub_algebra::{Catalog, TableDef};
        use xmlpub_common::{row, Relation};
        let stats = Statistics::empty();
        let def = TableDef::new("t", schema3());
        let data = Relation::new(
            def.schema.clone(),
            vec![row![1, 10.0, "x"], row![1, 2.0, "y"], row![2, 7.0, "z"]],
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.register(def, data).unwrap();

        let outer = LogicalPlan::scan("t", cat.table("t").unwrap().schema.clone());
        let pgq = LogicalPlan::group_scan(outer.schema())
            .project(vec![ProjectItem::col(1), ProjectItem::col(2)]);
        let plan = outer.gapply(vec![0], pgq).select(Expr::col(1).gt(Expr::lit(5.0)));
        let rewritten = SelectIntoPgq.apply(&plan, &ctx(&stats)).unwrap();
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&rewritten, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn pgq_with_aggregate_still_accepts_pushed_select() {
        let stats = Statistics::empty();
        let outer = LogicalPlan::scan("t", schema3());
        let pgq =
            LogicalPlan::group_scan(schema3()).scalar_agg(vec![AggExpr::avg(Expr::col(1), "avg")]);
        let plan = outer.gapply(vec![0], pgq).select(Expr::col(1).gt(Expr::lit(3.0)));
        let out = SelectIntoPgq.apply(&plan, &ctx(&stats)).unwrap();
        assert!(matches!(out, LogicalPlan::GApply { .. }));
    }
}

#[cfg(test)]
mod identity_tests {
    use super::*;
    use crate::stats::Statistics;
    use xmlpub_common::{DataType, Field, Schema};

    fn ctx(stats: &Statistics) -> RuleContext<'_> {
        RuleContext { stats, cost_gate: false, vetoes: None, claims: None }
    }

    fn schema2() -> Schema {
        Schema::new(vec![Field::new("a", DataType::Int), Field::new("b", DataType::Str)])
    }

    #[test]
    fn strips_exact_identity() {
        let stats = Statistics::empty();
        let plan = LogicalPlan::scan("t", schema2()).project_cols(&[0, 1]);
        let out = RemoveIdentityProject.apply(&plan, &ctx(&stats)).unwrap();
        assert!(matches!(out, LogicalPlan::Scan { .. }));
    }

    #[test]
    fn keeps_reordering_and_renaming_projections() {
        let stats = Statistics::empty();
        // Reordered columns: not an identity.
        let plan = LogicalPlan::scan("t", schema2()).project_cols(&[1, 0]);
        assert!(RemoveIdentityProject.apply(&plan, &ctx(&stats)).is_none());
        // Aliased column: not an identity (renames the output).
        let plan = LogicalPlan::scan("t", schema2())
            .project(vec![ProjectItem::named(Expr::col(0), "renamed"), ProjectItem::col(1)]);
        assert!(RemoveIdentityProject.apply(&plan, &ctx(&stats)).is_none());
        // Narrowing projection: not an identity.
        let plan = LogicalPlan::scan("t", schema2()).project_cols(&[0]);
        assert!(RemoveIdentityProject.apply(&plan, &ctx(&stats)).is_none());
    }
}
