//! *Placing Projections Before GApply* (§4.1).
//!
//! "We extract from the outer query only those columns required by the
//! per-group query: only the grouping columns and those columns referred
//! to somewhere in PGQ need be projected from the result of the outer
//! query. Since the syntax binds all columns of the outer query to the
//! relation-valued variable, this rule can have a significant impact."

use crate::rules::{Rule, RuleContext};
use xmlpub_algebra::analysis::{adapted_pgq, used_columns};
use xmlpub_algebra::{LogicalPlan, ProjectItem};
use xmlpub_common::ColumnSet;

/// The §4.1 projection rule.
pub struct ProjectBeforeGApply;

impl Rule for ProjectBeforeGApply {
    fn name(&self) -> &'static str {
        "project-before-gapply"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &RuleContext<'_>) -> Option<LogicalPlan> {
        let LogicalPlan::GApply { input, group_cols, pgq } = plan else {
            return None;
        };
        let width = input.schema().len();
        let needed =
            used_columns(pgq).union(&ColumnSet::from_iter_cols(group_cols.iter().copied()));
        // Fire only when something can actually be pruned.
        if needed.len() >= width {
            return None;
        }
        let keep: Vec<usize> = needed.iter().collect();
        let new_input =
            input.as_ref().clone().project(keep.iter().map(|&c| ProjectItem::col(c)).collect());
        let new_schema = new_input.schema();
        // Old column i now lives at its position within `keep`.
        let base_map: Vec<Option<usize>> =
            (0..width).map(|i| keep.iter().position(|&k| k == i)).collect();
        let new_pgq = adapted_pgq(pgq, &base_map, &new_schema)?;
        let new_group_cols = group_cols.iter().map(|&c| base_map[c]).collect::<Option<Vec<_>>>()?;
        Some(LogicalPlan::GApply {
            input: Box::new(new_input),
            group_cols: new_group_cols,
            pgq: Box::new(new_pgq),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Statistics;
    use xmlpub_algebra::{Catalog, TableDef};
    use xmlpub_common::{row, DataType, Field, Relation, Schema};
    use xmlpub_expr::{AggExpr, Expr};

    fn ctx(stats: &Statistics) -> RuleContext<'_> {
        RuleContext { stats, cost_gate: false, vetoes: None, claims: None }
    }

    fn wide_schema() -> Schema {
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("a", DataType::Float),
            Field::new("b", DataType::Str),
            Field::new("c", DataType::Str),
            Field::new("d", DataType::Int),
        ])
    }

    fn catalog() -> Catalog {
        let def = TableDef::new("w", wide_schema());
        let data = Relation::new(
            def.schema.clone(),
            vec![
                row![1, 1.5, "x", "junk", 9],
                row![1, 2.5, "y", "junk", 9],
                row![2, 9.0, "z", "junk", 9],
            ],
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.register(def, data).unwrap();
        cat
    }

    fn scan(cat: &Catalog) -> LogicalPlan {
        LogicalPlan::scan("w", cat.table("w").unwrap().schema.clone())
    }

    #[test]
    fn prunes_unused_columns() {
        let stats = Statistics::empty();
        let cat = catalog();
        // PGQ touches only column a (aggregated); keys = k. Columns b, c,
        // d are dead weight carried into every group.
        let pgq = LogicalPlan::group_scan(scan(&cat).schema())
            .scalar_agg(vec![AggExpr::avg(Expr::col(1), "avg")]);
        let plan = scan(&cat).gapply(vec![0], pgq);
        let out = ProjectBeforeGApply.apply(&plan, &ctx(&stats)).unwrap();
        match &out {
            LogicalPlan::GApply { input, group_cols, .. } => {
                assert_eq!(input.schema().len(), 2); // k, a
                assert_eq!(group_cols, &vec![0]);
            }
            other => panic!("unexpected {other:?}"),
        }
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&out, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
        // Idempotent: nothing more to prune.
        assert!(ProjectBeforeGApply.apply(&out, &ctx(&stats)).is_none());
    }

    #[test]
    fn keeps_passthrough_projection_columns() {
        let stats = Statistics::empty();
        let cat = catalog();
        // PGQ returns b (pass-through) and aggregates a: both stay, c/d go.
        let pgq = LogicalPlan::group_scan(scan(&cat).schema())
            .select(Expr::col(1).gt(Expr::lit(2.0)))
            .project_cols(&[2]);
        let plan = scan(&cat).gapply(vec![0], pgq);
        let out = ProjectBeforeGApply.apply(&plan, &ctx(&stats)).unwrap();
        match &out {
            LogicalPlan::GApply { input, .. } => {
                // k, a (selection), b (projected) survive.
                assert_eq!(input.schema().len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&out, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
    }

    #[test]
    fn whole_group_pgq_blocks_pruning() {
        let stats = Statistics::empty();
        let cat = catalog();
        // PGQ returns the whole group: nothing can be pruned.
        let pgq = LogicalPlan::group_scan(scan(&cat).schema());
        let plan = scan(&cat).gapply(vec![0], pgq);
        assert!(ProjectBeforeGApply.apply(&plan, &ctx(&stats)).is_none());
    }

    #[test]
    fn grouping_columns_always_kept() {
        let stats = Statistics::empty();
        let cat = catalog();
        // PGQ ignores the key column entirely; it must still survive.
        let pgq =
            LogicalPlan::group_scan(scan(&cat).schema()).scalar_agg(vec![AggExpr::count_star("n")]);
        let plan = scan(&cat).gapply(vec![4, 0], pgq);
        let out = ProjectBeforeGApply.apply(&plan, &ctx(&stats)).unwrap();
        match &out {
            LogicalPlan::GApply { input, group_cols, .. } => {
                assert_eq!(input.schema().len(), 2); // k and d
                                                     // Keys remapped to the projected positions (keep order of
                                                     // the original group_cols: d=4→1, k=0→0).
                assert_eq!(group_cols, &vec![1, 0]);
            }
            other => panic!("unexpected {other:?}"),
        }
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&out, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
    }
}
