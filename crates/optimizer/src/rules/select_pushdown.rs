//! Classical selection pushdown.
//!
//! "The selection that is inserted on top of the outer tree [by the
//! select-before-GApply rule] can then be pushed down using the
//! traditional rules for doing so" (§4.1). This rule pushes conjuncts of
//! a selection through joins toward the leaves and merges adjacent
//! selections; that is all the paper's outer queries (left-deep join
//! trees) need.

use crate::rules::{Rule, RuleContext};
use xmlpub_algebra::LogicalPlan;
#[cfg(test)]
use xmlpub_expr::Expr;
use xmlpub_expr::{conjunction, conjuncts};

/// Push selections through joins and merge stacked selections.
pub struct SelectPushdown;

impl Rule for SelectPushdown {
    fn name(&self) -> &'static str {
        "select-pushdown"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &RuleContext<'_>) -> Option<LogicalPlan> {
        let LogicalPlan::Select { input, predicate } = plan else {
            return None;
        };
        match &**input {
            // Merge σ_p(σ_q(x)) = σ_{q ∧ p}(x).
            LogicalPlan::Select { input: inner, predicate: q } => {
                Some(inner.as_ref().clone().select(q.clone().and(predicate.clone())))
            }
            LogicalPlan::Join { left, right, predicate: jp, fk_left_to_right } => {
                let left_len = left.schema().len();
                let mut to_left = Vec::new();
                let mut to_right = Vec::new();
                let mut stay = Vec::new();
                for c in conjuncts(predicate) {
                    if c.has_correlated() {
                        stay.push(c);
                        continue;
                    }
                    let cols = c.columns();
                    if cols.iter().all(|i| i < left_len) {
                        to_left.push(c);
                    } else if cols.iter().all(|i| i >= left_len) {
                        to_right.push(
                            c.remap_columns(&|i| Some(i - left_len))
                                .expect("all columns are right-side"),
                        );
                    } else {
                        stay.push(c);
                    }
                }
                if to_left.is_empty() && to_right.is_empty() {
                    return None;
                }
                let mut new_left = left.as_ref().clone();
                if !to_left.is_empty() {
                    new_left = new_left.select(conjunction(to_left));
                }
                let mut new_right = right.as_ref().clone();
                if !to_right.is_empty() {
                    new_right = new_right.select(conjunction(to_right));
                }
                let joined = LogicalPlan::Join {
                    left: Box::new(new_left),
                    right: Box::new(new_right),
                    predicate: jp.clone(),
                    fk_left_to_right: *fk_left_to_right,
                };
                Some(if stay.is_empty() { joined } else { joined.select(conjunction(stay)) })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Statistics;
    use xmlpub_common::{DataType, Field, Schema};

    fn ctx(stats: &Statistics) -> RuleContext<'_> {
        RuleContext { stats, cost_gate: false, vetoes: None, claims: None }
    }

    fn schema2(prefix: &str) -> Schema {
        Schema::new(vec![
            Field::new(format!("{prefix}k"), DataType::Int),
            Field::new(format!("{prefix}v"), DataType::Float),
        ])
    }

    fn join_plan() -> LogicalPlan {
        LogicalPlan::scan("a", schema2("a"))
            .join(LogicalPlan::scan("b", schema2("b")), Expr::col(0).eq(Expr::col(2)))
    }

    #[test]
    fn splits_conjuncts_to_both_sides() {
        let stats = Statistics::empty();
        let pred = Expr::col(1)
            .gt(Expr::lit(1.0)) // left
            .and(Expr::col(3).lt(Expr::lit(2.0))) // right
            .and(Expr::col(1).lt(Expr::col(3))); // cross → stays
        let plan = join_plan().select(pred);
        let out = SelectPushdown.apply(&plan, &ctx(&stats)).unwrap();
        match &out {
            LogicalPlan::Select { input, predicate } => {
                assert_eq!(*predicate, Expr::col(1).lt(Expr::col(3)));
                let LogicalPlan::Join { left, right, .. } = &**input else {
                    panic!("expected join")
                };
                assert!(matches!(**left, LogicalPlan::Select { .. }));
                assert!(matches!(**right, LogicalPlan::Select { .. }));
                // Right-side predicate got rebased.
                if let LogicalPlan::Select { predicate, .. } = &**right {
                    assert_eq!(*predicate, Expr::col(1).lt(Expr::lit(2.0)));
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fully_pushable_leaves_no_top_select() {
        let stats = Statistics::empty();
        let plan = join_plan().select(Expr::col(0).eq(Expr::lit(5)));
        let out = SelectPushdown.apply(&plan, &ctx(&stats)).unwrap();
        assert!(matches!(out, LogicalPlan::Join { .. }));
    }

    #[test]
    fn cross_predicate_does_not_fire() {
        let stats = Statistics::empty();
        let plan = join_plan().select(Expr::col(1).lt(Expr::col(3)));
        assert!(SelectPushdown.apply(&plan, &ctx(&stats)).is_none());
    }

    #[test]
    fn merges_stacked_selects() {
        let stats = Statistics::empty();
        let plan = LogicalPlan::scan("a", schema2("a"))
            .select(Expr::col(0).gt(Expr::lit(1)))
            .select(Expr::col(1).gt(Expr::lit(2.0)));
        let out = SelectPushdown.apply(&plan, &ctx(&stats)).unwrap();
        match out {
            LogicalPlan::Select { input, predicate } => {
                assert!(matches!(*input, LogicalPlan::Scan { .. }));
                assert_eq!(conjuncts(&predicate).len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn correlated_conjuncts_stay_put() {
        let stats = Statistics::empty();
        let pred = Expr::col(1).gt(Expr::Correlated { level: 0, index: 0 });
        let plan = join_plan().select(pred);
        assert!(SelectPushdown.apply(&plan, &ctx(&stats)).is_none());
    }
}
