//! *Invariant Grouping* (§4.3, Theorem 2): push a GApply below
//! foreign-key joins of its left-deep outer join tree.
//!
//! A spine node `n` qualifies when (Definition 2):
//!
//! 1. the columns at `n` contain the grouping columns and the gp-eval
//!    columns of the per-group query;
//! 2. every join column of `n` is a grouping column;
//! 3. every join above `n` is a foreign-key join (left child holds the
//!    foreign key).
//!
//! The GApply then moves to sit directly on `n` with the *adapted*
//! per-group query (project lists lose the columns unavailable at `n`);
//! the joins above re-attach those columns, and a final projection
//! restores the original output column order (Figure 7).

use crate::rules::{Rule, RuleContext};
use xmlpub_algebra::analysis::{adapted_pgq_with_map, direct_map, gp_eval_columns};
use xmlpub_algebra::{LogicalPlan, ProjectItem};
use xmlpub_analysis::{Claim, ClaimSubject};
use xmlpub_common::ColumnSet;
use xmlpub_expr::Expr;

/// The invariant-grouping rule.
pub struct InvariantGrouping;

/// One join level of the left-deep spine (top-down order).
struct SpineLevel {
    right: LogicalPlan,
    predicate: Expr,
    fk: bool,
    left_len: usize,
}

/// The join columns of a spine level local to its right child.
fn right_join_cols(lvl: &SpineLevel) -> ColumnSet {
    lvl.predicate
        .columns()
        .iter()
        .filter(|&c| c >= lvl.left_len)
        .map(|c| c - lvl.left_len)
        .collect()
}

impl Rule for InvariantGrouping {
    fn name(&self) -> &'static str {
        "invariant-grouping"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RuleContext<'_>) -> Option<LogicalPlan> {
        let LogicalPlan::GApply { input, group_cols, pgq } = plan else {
            return None;
        };

        // Collect the left-deep join spine (top-down).
        let mut levels: Vec<SpineLevel> = Vec::new();
        let mut cur: &LogicalPlan = input;
        while let LogicalPlan::Join { left, right, predicate, fk_left_to_right } = cur {
            levels.push(SpineLevel {
                right: right.as_ref().clone(),
                predicate: predicate.clone(),
                fk: *fk_left_to_right,
                left_len: left.schema().len(),
            });
            cur = left;
        }
        if levels.is_empty() {
            return None;
        }
        let total_len = input.schema().len();
        let gp_eval = gp_eval_columns(pgq);
        let needed_prefix =
            group_cols.iter().copied().chain(gp_eval.iter()).max().map(|m| m + 1).unwrap_or(0);

        // Candidate nodes, deepest first: after skipping k top joins the
        // node is `levels[..k]`'s left child, with prefix length
        // levels[k-1].left_len. k ranges over 1..=levels.len().
        let mut choice: Option<(usize, usize)> = None; // (skip, prefix_len)
        for skip in (1..=levels.len()).rev() {
            let prefix_len = levels[skip - 1].left_len;
            // Condition 1: grouping + gp-eval columns live at n.
            if needed_prefix > prefix_len {
                continue;
            }
            // Conditions 2 & 3 for every join above n. The fk flag by
            // itself only states the binder's intent; the "at most one
            // match per left row" half is verified statically by asking
            // the analyzer for a candidate key of the join's right side
            // contained in its join columns.
            let ok = levels[..skip].iter().all(|lvl| {
                lvl.fk
                    && lvl
                        .predicate
                        .columns()
                        .iter()
                        .filter(|&c| c < prefix_len)
                        .all(|c| group_cols.contains(&c))
                    && !lvl.predicate.has_correlated()
                    && ctx.derive(&lvl.right).has_key_within(&right_join_cols(lvl))
            });
            if ok {
                choice = Some((skip, prefix_len));
                break;
            }
        }
        let (skip, prefix_len) = choice?;

        // Record the consumed side conditions: one key claim per skipped
        // join, addressed at the right child's position in the matched
        // plan ($.0 is the spine top; each deeper level adds a .0).
        for (i, lvl) in levels[..skip].iter().enumerate() {
            let mut at = vec![0; i + 1];
            at.push(1);
            ctx.claim(Claim::key_within(
                ClaimSubject::Input,
                at,
                right_join_cols(lvl),
                "fk-join right side must match at most one row per left row",
            ));
        }

        // Node n (owned).
        let mut n_plan: &LogicalPlan = input;
        for _ in 0..skip {
            let LogicalPlan::Join { left, .. } = n_plan else { unreachable!() };
            n_plan = left;
        }
        let n_plan = n_plan.clone();
        let n_schema = n_plan.schema();

        // Adapt the per-group query to the narrower group schema.
        let base_map: Vec<Option<usize>> =
            (0..total_len).map(|i| (i < prefix_len).then_some(i)).collect();
        let (new_pgq, out_map) = adapted_pgq_with_map(pgq, &base_map, &n_schema)?;

        // Build the pushed-down GApply.
        let key_len = group_cols.len();
        let ga = n_plan.gapply(group_cols.clone(), new_pgq.clone());
        let ga_len = ga.schema().len();
        // Old input column i maps into the rebuilt plan as:
        //   i < prefix_len: only if i is a grouping column → its key slot;
        //   i ≥ prefix_len: appended right-side columns shift uniformly.
        let shift = ga_len as i64 - prefix_len as i64;
        let map_old = |i: usize| -> Option<usize> {
            if i < prefix_len {
                group_cols.iter().position(|&g| g == i)
            } else {
                Some((i as i64 + shift) as usize)
            }
        };

        // Re-apply the skipped joins (bottom-up).
        let mut rebuilt = ga;
        for lvl in levels[..skip].iter().rev() {
            let pred = lvl.predicate.remap_columns(&map_old)?;
            rebuilt = LogicalPlan::Join {
                left: Box::new(rebuilt),
                right: Box::new(lvl.right.clone()),
                predicate: pred,
                fk_left_to_right: lvl.fk,
            };
        }

        // Final projection: original output = keys ++ old per-group
        // outputs. Kept outputs come from the pushed GApply; dropped ones
        // are recomputed from the re-attached join columns.
        let old_out_names: Vec<String> =
            plan.schema().fields().iter().map(|f| f.name.clone()).collect();
        let pgq_direct = direct_map(pgq);
        let mut items: Vec<ProjectItem> = (0..key_len).map(ProjectItem::col).collect();
        for (o, slot) in out_map.iter().enumerate() {
            match slot {
                Some(new_idx) => items.push(ProjectItem::col(key_len + new_idx)),
                None => {
                    // Restore from the join side. The dropped output must
                    // be a clean pass-through of an outer column.
                    let src = pgq_direct.get(o).copied().flatten()?;
                    let new_src = map_old(src)?;
                    items.push(ProjectItem::named(
                        Expr::col(new_src),
                        old_out_names[key_len + o].clone(),
                    ));
                }
            }
        }
        Some(rebuilt.project(items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Statistics;
    use xmlpub_algebra::{Catalog, TableDef};
    use xmlpub_common::{row, DataType, Field, Relation, Schema};
    use xmlpub_expr::AggExpr;

    fn ctx(stats: &Statistics) -> RuleContext<'_> {
        RuleContext { stats, cost_gate: false, vetoes: None, claims: None }
    }

    /// partsupp(ps_suppkey, ps_partkey, price) ⋈fk supplier(s_suppkey, s_name)
    fn catalog() -> Catalog {
        let ps_schema = Schema::new(vec![
            Field::new("ps_suppkey", DataType::Int),
            Field::new("ps_partkey", DataType::Int),
            Field::new("price", DataType::Float),
        ]);
        let ps = TableDef::new("partsupp", ps_schema).with_foreign_key(
            &["ps_suppkey"],
            "supplier",
            &["s_suppkey"],
        );
        let ps_data = Relation::new(
            ps.schema.clone(),
            vec![row![1, 10, 5.0], row![1, 11, 9.0], row![2, 10, 2.0], row![2, 12, 8.0]],
        )
        .unwrap();
        let sup_schema = Schema::new(vec![
            Field::new("s_suppkey", DataType::Int),
            Field::new("s_name", DataType::Str),
        ]);
        let sup = TableDef::new("supplier", sup_schema).with_primary_key(&["s_suppkey"]);
        let sup_data =
            Relation::new(sup.schema.clone(), vec![row![1, "Acme"], row![2, "Globex"]]).unwrap();
        let mut cat = Catalog::new();
        cat.register(ps, ps_data).unwrap();
        cat.register(sup, sup_data).unwrap();
        cat
    }

    fn scans(cat: &Catalog) -> (LogicalPlan, LogicalPlan) {
        (
            LogicalPlan::scan("partsupp", cat.table("partsupp").unwrap().schema.clone()),
            LogicalPlan::scan("supplier", cat.table("supplier").unwrap().schema.clone()),
        )
    }

    /// Figure 7: per supplier, the supplier name and the least expensive
    /// part. The GApply sits above partsupp ⋈fk supplier; the rule pushes
    /// it below the supplier join, dropping s_name from the per-group
    /// projection.
    fn figure7_plan(cat: &Catalog) -> LogicalPlan {
        let (ps, sup) = scans(cat);
        let joined = ps.fk_join(sup, Expr::col(0).eq(Expr::col(3)));
        // Join schema: ps_suppkey, ps_partkey, price, s_suppkey, s_name.
        let gschema = joined.schema();
        let gs = || LogicalPlan::group_scan(gschema.clone());
        let min_price = gs().scalar_agg(vec![AggExpr::min(Expr::col(2), "minp")]);
        let pgq = gs()
            .apply(min_price, xmlpub_algebra::ApplyMode::Scalar)
            .select(Expr::col(2).eq(Expr::col(5)))
            .project_cols(&[1, 2, 4]); // ps_partkey, price, s_name
        joined.gapply(vec![0], pgq)
    }

    #[test]
    fn figure7_pushes_below_supplier_join() {
        let cat = catalog();
        let stats = Statistics::from_catalog(&cat);
        let plan = figure7_plan(&cat);
        let out = InvariantGrouping.apply(&plan, &ctx(&stats)).unwrap();
        // Shape: Project(Join(GApply(partsupp …), supplier)).
        match &out {
            LogicalPlan::Project { input, .. } => match &**input {
                LogicalPlan::Join { left, .. } => {
                    assert!(
                        matches!(**left, LogicalPlan::GApply { .. }),
                        "GApply should now be the join's left child: {left:?}"
                    );
                }
                other => panic!("expected Join, got {other:?}"),
            },
            other => panic!("expected Project on top, got {other:?}"),
        }
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&out, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
        assert_eq!(a.len(), 2); // one cheapest part per supplier
        assert_eq!(a.schema().len(), b.schema().len());
    }

    #[test]
    fn fk_flag_without_provable_key_blocks() {
        // Same plan as Figure 7, but with empty statistics the analyzer
        // cannot prove the supplier side is unique on its join column —
        // the binder's fk flag alone no longer suffices.
        let stats = Statistics::empty();
        let cat = catalog();
        let plan = figure7_plan(&cat);
        assert!(InvariantGrouping.apply(&plan, &ctx(&stats)).is_none());
    }

    #[test]
    fn firing_records_key_claims() {
        let cat = catalog();
        let stats = Statistics::from_catalog(&cat);
        let plan = figure7_plan(&cat);
        let probe = crate::rules::ClaimProbe::default();
        let mut c = ctx(&stats);
        c.claims = Some(&probe);
        InvariantGrouping.apply(&plan, &c).unwrap();
        let claims = probe.take();
        assert_eq!(claims.len(), 1);
        assert_eq!(claims[0].at, vec![0, 1]); // the supplier scan
        assert!(claims[0].check(&plan, &plan, stats.catalog_properties()).is_ok());
    }

    #[test]
    fn non_fk_join_blocks_the_rule() {
        let stats = Statistics::empty();
        let cat = catalog();
        let (ps, sup) = scans(&cat);
        let joined = ps.join(sup, Expr::col(0).eq(Expr::col(3))); // not marked fk
        let gschema = joined.schema();
        let pgq =
            LogicalPlan::group_scan(gschema).scalar_agg(vec![AggExpr::min(Expr::col(2), "minp")]);
        let plan = joined.gapply(vec![0], pgq);
        assert!(InvariantGrouping.apply(&plan, &ctx(&stats)).is_none());
    }

    #[test]
    fn join_column_not_in_grouping_blocks() {
        let stats = Statistics::empty();
        let cat = catalog();
        let (ps, sup) = scans(&cat);
        let joined = ps.fk_join(sup, Expr::col(0).eq(Expr::col(3)));
        let gschema = joined.schema();
        let pgq =
            LogicalPlan::group_scan(gschema).scalar_agg(vec![AggExpr::min(Expr::col(2), "minp")]);
        // Group by ps_partkey: the join column ps_suppkey is not a
        // grouping column, so the push-down is invalid.
        let plan = joined.gapply(vec![1], pgq);
        assert!(InvariantGrouping.apply(&plan, &ctx(&stats)).is_none());
    }

    #[test]
    fn gp_eval_column_above_prefix_blocks() {
        let stats = Statistics::empty();
        let cat = catalog();
        let (ps, sup) = scans(&cat);
        let joined = ps.fk_join(sup, Expr::col(0).eq(Expr::col(3)));
        let gschema = joined.schema();
        // Aggregating s_name-side column (4) makes it gp-eval: cannot
        // push below the join that provides it.
        let pgq = LogicalPlan::group_scan(gschema)
            .scalar_agg(vec![AggExpr::max(Expr::col(4), "maxname")]);
        let plan = joined.gapply(vec![0], pgq);
        assert!(InvariantGrouping.apply(&plan, &ctx(&stats)).is_none());
    }

    #[test]
    fn no_join_below_means_no_fire() {
        let stats = Statistics::empty();
        let cat = catalog();
        let (ps, _) = scans(&cat);
        let gschema = ps.schema();
        let pgq =
            LogicalPlan::group_scan(gschema).scalar_agg(vec![AggExpr::min(Expr::col(2), "minp")]);
        let plan = ps.gapply(vec![0], pgq);
        assert!(InvariantGrouping.apply(&plan, &ctx(&stats)).is_none());
    }

    #[test]
    fn two_level_spine_pushes_to_deepest_valid_node() {
        // partsupp ⋈fk supplier ⋈fk supplier2 (a second FK hop for depth —
        // semantically artificial but structurally a left-deep spine).
        let cat = catalog();
        let stats = Statistics::from_catalog(&cat);
        let (ps, sup) = scans(&cat);
        let sup2 = LogicalPlan::scan(
            "supplier",
            cat.table("supplier").unwrap().schema.with_qualifier("s2"),
        );
        let j1 = ps.fk_join(sup, Expr::col(0).eq(Expr::col(3)));
        let j2 = j1.fk_join(sup2, Expr::col(0).eq(Expr::col(5)));
        let gschema = j2.schema();
        let pgq =
            LogicalPlan::group_scan(gschema).scalar_agg(vec![AggExpr::min(Expr::col(2), "minp")]);
        let plan = j2.gapply(vec![0], pgq);
        let out = InvariantGrouping.apply(&plan, &ctx(&stats)).unwrap();
        // The GApply lands directly on the partsupp scan (deepest node).
        fn gapply_input_is_scan(p: &LogicalPlan) -> bool {
            match p {
                LogicalPlan::GApply { input, .. } => {
                    matches!(**input, LogicalPlan::Scan { .. })
                }
                _ => p.children().iter().any(|c| gapply_input_is_scan(c)),
            }
        }
        assert!(gapply_input_is_scan(&out), "{}", out.explain());
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&out, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
    }
}
