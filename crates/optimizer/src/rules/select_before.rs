//! *Placing Selections Before GApply* (§4.1, Theorem 1).
//!
//! Compute the covering range σ of the per-group query; if the per-group
//! query is emptyOnEmpty, rewrite
//!
//! `RE₁ GA_C RE₂  →  σ_range(RE₁) GA_C RE₂'`
//!
//! where `RE₂'` is `RE₂` with every selection that is logically
//! equivalent to the covering range removed (those selections are now
//! no-ops: every group row already satisfies the range).
//!
//! The driver runs this rule once per plan (not to fixpoint): the
//! selection it inserts gets pushed down through the outer join tree by
//! the classical pushdown rule afterwards, so a fixpoint driver would
//! keep re-adding it.

use crate::rules::{Rule, RuleContext};
use xmlpub_algebra::analysis::{covering_range, direct_map, empty_on_empty};
use xmlpub_algebra::LogicalPlan;
use xmlpub_expr::predicate::equivalent;
use xmlpub_expr::Expr;

/// The §4.1 selection rule.
pub struct SelectBeforeGApply;

impl Rule for SelectBeforeGApply {
    fn name(&self) -> &'static str {
        "select-before-gapply"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &RuleContext<'_>) -> Option<LogicalPlan> {
        let LogicalPlan::GApply { input, group_cols, pgq } = plan else {
            return None;
        };
        let range = covering_range(pgq);
        if range == Expr::lit(true) {
            return None;
        }
        if !empty_on_empty(pgq) {
            return None;
        }
        // Idempotence guard: if the outer query already starts with this
        // exact selection, do nothing.
        if let LogicalPlan::Select { predicate, .. } = &**input {
            if equivalent(predicate, &range) {
                return None;
            }
        }
        let new_pgq = eliminate_equivalent_selects(pgq.as_ref().clone(), &range);
        Some(LogicalPlan::GApply {
            input: Box::new(input.as_ref().clone().select(range)),
            group_cols: group_cols.clone(),
            pgq: Box::new(new_pgq),
        })
    }
}

/// Remove selections inside the per-group query whose condition —
/// rewritten onto group-scan columns — is logically equivalent to the
/// pushed covering range. With the range enforced on the outer query,
/// those selections pass every row.
fn eliminate_equivalent_selects(plan: LogicalPlan, range: &Expr) -> LogicalPlan {
    let plan = match plan {
        LogicalPlan::Select { input, predicate } => {
            let scan_cond = if predicate.has_correlated() {
                None
            } else {
                predicate.remap_columns(&|c| direct_map(&input).get(c).copied().flatten())
            };
            match scan_cond {
                Some(cond) if equivalent(&cond, range) => {
                    return eliminate_equivalent_selects(*input, range)
                }
                _ => LogicalPlan::Select { input, predicate },
            }
        }
        other => other,
    };
    plan.map_children(&mut |c| eliminate_equivalent_selects(c, range))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Statistics;
    use xmlpub_algebra::{plan::null_item, ApplyMode, Catalog, ProjectItem, TableDef};
    use xmlpub_common::{row, DataType, Field, Relation, Schema};
    use xmlpub_expr::AggExpr;

    fn ctx(stats: &Statistics) -> RuleContext<'_> {
        RuleContext { stats, cost_gate: false, vetoes: None, claims: None }
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("brand", DataType::Str),
            Field::new("price", DataType::Float),
        ])
    }

    fn catalog() -> Catalog {
        let def = TableDef::new("t", schema());
        let data = Relation::new(
            def.schema.clone(),
            vec![
                row![1, "A", 10.0],
                row![1, "B", 20.0],
                row![1, "C", 30.0],
                row![2, "A", 5.0],
                row![2, "C", 50.0],
            ],
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.register(def, data).unwrap();
        cat
    }

    fn scan(cat: &Catalog) -> LogicalPlan {
        LogicalPlan::scan("t", cat.table("t").unwrap().schema.clone())
    }

    #[test]
    fn pushes_simple_selection_and_eliminates_it() {
        let stats = Statistics::empty();
        let cat = catalog();
        let gschema = scan(&cat).schema();
        // PGQ: names of brand-A rows.
        let pgq = LogicalPlan::group_scan(gschema.clone())
            .select(Expr::col(1).eq(Expr::lit("A")))
            .project_cols(&[2]);
        let plan = scan(&cat).gapply(vec![0], pgq);
        let out = SelectBeforeGApply.apply(&plan, &ctx(&stats)).unwrap();
        // Outer gained the selection...
        match &out {
            LogicalPlan::GApply { input, pgq, .. } => {
                assert!(matches!(**input, LogicalPlan::Select { .. }));
                // ...and the equivalent inner selection is gone.
                assert!(!pgq.any_node(&|p| matches!(p, LogicalPlan::Select { .. })));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Results agree.
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&out, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
        // Idempotent.
        assert!(SelectBeforeGApply.apply(&out, &ctx(&stats)).is_none());
    }

    #[test]
    fn figure3_disjunctive_range_keeps_inner_selects() {
        let stats = Statistics::empty();
        let cat = catalog();
        let gschema = scan(&cat).schema();
        let gs = || LogicalPlan::group_scan(gschema.clone());
        // Brand-A rows priced above the avg of brand-B rows.
        let avg_b = gs()
            .select(Expr::col(1).eq(Expr::lit("B")))
            .scalar_agg(vec![AggExpr::avg(Expr::col(2), "avgb")]);
        let pgq = gs()
            .select(Expr::col(1).eq(Expr::lit("A")))
            .apply(avg_b, ApplyMode::Scalar)
            .select(Expr::col(2).gt(Expr::col(3)))
            .project_cols(&[2]);
        let plan = scan(&cat).gapply(vec![0], pgq);
        let out = SelectBeforeGApply.apply(&plan, &ctx(&stats)).unwrap();
        match &out {
            LogicalPlan::GApply { input, pgq, .. } => {
                // Outer selection is brand=A ∨ brand=B.
                let LogicalPlan::Select { predicate, .. } = &**input else {
                    panic!("no outer select")
                };
                let expected = Expr::col(1).eq(Expr::lit("A")).or(Expr::col(1).eq(Expr::lit("B")));
                assert!(equivalent(predicate, &expected), "{predicate:?}");
                // Inner brand selections are NOT equivalent to the range,
                // so they stay.
                let mut selects = 0;
                fn count(p: &LogicalPlan, n: &mut usize) {
                    if matches!(p, LogicalPlan::Select { .. }) {
                        *n += 1;
                    }
                    for c in p.children() {
                        count(c, n);
                    }
                }
                count(pgq, &mut selects);
                assert_eq!(selects, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Correctness: filtering to brands A and B does not change the
        // result (C rows never mattered).
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&out, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
    }

    #[test]
    fn blocked_when_not_empty_on_empty() {
        let stats = Statistics::empty();
        let cat = catalog();
        let gschema = scan(&cat).schema();
        // count(*) over a filtered group is NOT emptyOnEmpty: a group
        // whose rows all fail the filter still yields a 0 row.
        let pgq = LogicalPlan::group_scan(gschema)
            .select(Expr::col(1).eq(Expr::lit("A")))
            .scalar_agg(vec![AggExpr::count_star("n")]);
        let plan = scan(&cat).gapply(vec![0], pgq);
        assert!(SelectBeforeGApply.apply(&plan, &ctx(&stats)).is_none());
    }

    #[test]
    fn blocked_when_range_is_whole_group() {
        let stats = Statistics::empty();
        let cat = catalog();
        let gschema = scan(&cat).schema();
        let pgq = LogicalPlan::group_scan(gschema).project_cols(&[2]);
        let plan = scan(&cat).gapply(vec![0], pgq);
        assert!(SelectBeforeGApply.apply(&plan, &ctx(&stats)).is_none());
    }

    #[test]
    fn union_branch_ranges_push_as_disjunction() {
        let stats = Statistics::empty();
        let cat = catalog();
        let gschema = scan(&cat).schema();
        let gs = || LogicalPlan::group_scan(gschema.clone());
        let pgq = LogicalPlan::union_all(vec![
            gs().select(Expr::col(1).eq(Expr::lit("A")))
                .project(vec![ProjectItem::col(2), null_item("x")]),
            gs().select(Expr::col(1).eq(Expr::lit("B")))
                .project(vec![null_item("price"), ProjectItem::col(2)]),
        ]);
        let plan = scan(&cat).gapply(vec![0], pgq);
        let out = SelectBeforeGApply.apply(&plan, &ctx(&stats)).unwrap();
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&out, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
        // Supplier 1 contributes its A and B rows; supplier 2 (brands
        // A, C) contributes only its A row.
        assert_eq!(a.len(), 3);
    }
}
