//! Scalar-aggregate subquery decorrelation ("magic decorrelation" in the
//! style of Galindo-Legaria & Joshi [12], the paper this work builds on).
//!
//! `Apply(R, aggregate(σ_{c = R.o ∧ rest}(S)))` — the shape the §2
//! classic formulations produce for their correlated average subqueries —
//! rewrites to
//!
//! ```text
//! π_{R.*, aggs}( R ⟕_{R.o = k} GroupBy_{k}(σ_rest(S), aggs) )
//! ```
//!
//! computing the per-key aggregates **once** instead of once per outer
//! row. The left *outer* join preserves the scalar-subquery semantics for
//! outer rows with no matching inner rows (the aggregate over ∅ is NULL
//! for sum/avg/min/max — count aggregates return 0 over ∅, which an outer
//! join cannot reproduce, so the rule declines them).
//!
//! This matters for faithfulness: SQL Server 2000 decorrelated the
//! paper's baseline queries, so *their* "without GApply" numbers reflect
//! decorrelated plans. Without this rule our baselines would re-execute
//! the subquery per distinct key and wildly overstate Figure 8.

use crate::rules::{Rule, RuleContext};
use xmlpub_algebra::{ApplyMode, LogicalPlan, ProjectItem};
use xmlpub_analysis::{Claim, ClaimSubject};
use xmlpub_common::ColumnSet;
use xmlpub_expr::{conjunction, conjuncts, AggFunc, Expr};

/// The decorrelation rule.
pub struct DecorrelateScalarAgg;

impl Rule for DecorrelateScalarAgg {
    fn name(&self) -> &'static str {
        "decorrelate-scalar-agg"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RuleContext<'_>) -> Option<LogicalPlan> {
        let LogicalPlan::Apply { outer, inner, mode: ApplyMode::Scalar | ApplyMode::Cross } = plan
        else {
            return None;
        };
        let LogicalPlan::ScalarAgg { input: inner_src, aggs } = &**inner else {
            return None;
        };
        // Group scans are tiny (already partitioned); decorrelating them
        // would also smuggle a join into a per-group query, which the
        // algebra forbids.
        let has_group_scan =
            |p: &LogicalPlan| p.any_node(&|n| matches!(n, LogicalPlan::GroupScan { .. }));
        if has_group_scan(outer) || has_group_scan(inner) {
            return None;
        }
        // count(∅) = 0 ≠ NULL: outer-join padding cannot reproduce it.
        if aggs
            .iter()
            .any(|a| matches!(a.func, AggFunc::Count | AggFunc::CountStar | AggFunc::CountDistinct))
        {
            return None;
        }
        if aggs.iter().any(|a| a.arg.as_ref().is_some_and(|e| e.has_correlated())) {
            return None;
        }

        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let stripped = strip(inner_src, &mut pairs)?;
        if pairs.is_empty() {
            return None; // uncorrelated: the Apply spool already handles it
        }
        // Deduplicate identical (inner, outer) pairs.
        pairs.sort_unstable();
        pairs.dedup();

        let keys: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let gb = stripped.group_by(keys.clone(), aggs.clone());
        // Side condition: the outer join must match at most one group row
        // per outer row, or the rewrite duplicates outer tuples. That
        // holds iff the grouped relation has a candidate key within the
        // join columns — consult the analyzer rather than assuming it.
        let gb_key: ColumnSet = (0..keys.len()).collect();
        if !ctx.derive(&gb).has_key_within(&gb_key) {
            return None;
        }
        ctx.claim(Claim::key_within(
            ClaimSubject::Output,
            vec![0, 1],
            gb_key,
            "grouped subquery must be unique on its join keys",
        ));
        let outer_len = outer.schema().len();
        let mut join_pred = Expr::lit(true);
        for (i, (_, outer_col)) in pairs.iter().enumerate() {
            let eq = Expr::col(*outer_col).eq(Expr::col(outer_len + i));
            join_pred = if i == 0 { eq } else { join_pred.and(eq) };
        }
        let joined = outer.as_ref().clone().left_outer_join(gb, join_pred);
        // Output: outer columns, then the aggregates (skipping the keys).
        let items: Vec<ProjectItem> = (0..outer_len)
            .map(ProjectItem::col)
            .chain((0..aggs.len()).map(|i| ProjectItem::col(outer_len + keys.len() + i)))
            .collect();
        Some(joined.project(items))
    }
}

/// Remove correlated equality conjuncts (`local = Correlated{0, o}`) from
/// the tree, recording `(local column in the returned plan's output,
/// outer column)` pairs. Fails on shapes where the removal or the column
/// mapping is not obviously sound.
fn strip(plan: &LogicalPlan, pairs: &mut Vec<(usize, usize)>) -> Option<LogicalPlan> {
    match plan {
        LogicalPlan::Scan { .. } => Some(plan.clone()),
        LogicalPlan::Select { input, predicate } => {
            let stripped = strip(input, pairs)?;
            let mut kept = Vec::new();
            for c in conjuncts(predicate) {
                if let Some((local, outer_col)) = correlated_equality(&c) {
                    pairs.push((local, outer_col));
                    continue;
                }
                if c.has_correlated_at(0) {
                    return None; // non-equality correlation: unsupported
                }
                kept.push(c);
            }
            Some(if kept.is_empty() { stripped } else { stripped.select(conjunction(kept)) })
        }
        LogicalPlan::Project { input, items } => {
            if items.iter().any(|it| it.expr.has_correlated_at(0)) {
                return None;
            }
            let mut inner_pairs = Vec::new();
            let stripped = strip(input, &mut inner_pairs)?;
            // Every recorded inner column must survive the projection as
            // a bare pass-through.
            for (local, outer_col) in inner_pairs {
                let pos = items.iter().position(|it| it.expr == Expr::col(local))?;
                pairs.push((pos, outer_col));
            }
            Some(stripped.project(items.clone()))
        }
        LogicalPlan::Join { left, right, predicate, fk_left_to_right } => {
            if predicate.has_correlated_at(0) {
                return None;
            }
            let left_len = left.schema().len();
            let mut lp = Vec::new();
            let l = strip(left, &mut lp)?;
            let mut rp = Vec::new();
            let r = strip(right, &mut rp)?;
            pairs.extend(lp);
            pairs.extend(rp.into_iter().map(|(c, o)| (c + left_len, o)));
            Some(LogicalPlan::Join {
                left: Box::new(l),
                right: Box::new(r),
                predicate: predicate.clone(),
                fk_left_to_right: *fk_left_to_right,
            })
        }
        LogicalPlan::Distinct { input } => {
            // σ_{k=K} ∘ distinct = distinct ∘ σ_{k=K} when k is a column,
            // so stripping below a distinct is sound.
            Some(strip(input, pairs)?.distinct())
        }
        LogicalPlan::OrderBy { input, keys } => {
            if keys.iter().any(|k| k.expr.has_correlated_at(0)) {
                return None;
            }
            Some(strip(input, pairs)?.order_by(keys.clone()))
        }
        // Aggregations, unions, applies, group scans: bail.
        _ => None,
    }
}

/// Match `Column(c) = Correlated{level: 0, index: o}` in either
/// orientation.
fn correlated_equality(conjunct: &Expr) -> Option<(usize, usize)> {
    let Expr::Binary { op: xmlpub_expr::BinOp::Eq, left, right } = conjunct else {
        return None;
    };
    match (&**left, &**right) {
        (Expr::Column(c), Expr::Correlated { level: 0, index: o })
        | (Expr::Correlated { level: 0, index: o }, Expr::Column(c)) => Some((*c, *o)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Statistics;
    use xmlpub_algebra::{Catalog, TableDef};
    use xmlpub_common::{row, DataType, Field, Relation, Schema};
    use xmlpub_expr::AggExpr;

    fn ctx(stats: &Statistics) -> RuleContext<'_> {
        RuleContext { stats, cost_gate: false, vetoes: None, claims: None }
    }

    fn catalog() -> Catalog {
        let schema =
            Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Float)]);
        let def = TableDef::new("t", schema);
        let data = Relation::new(
            def.schema.clone(),
            vec![row![1, 10.0], row![1, 20.0], row![2, 5.0], row![3, 7.0]],
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.register(def, data).unwrap();

        // An outer table with keys that include a value (4) missing from
        // t, plus a NULL key — the empty-group/NULL cases.
        let schema = Schema::new(vec![Field::new("ok", DataType::Int)]);
        let def = TableDef::new("o", schema);
        let data = Relation::new(
            def.schema.clone(),
            vec![row![1], row![2], row![4], row![xmlpub_common::Value::Null]],
        )
        .unwrap();
        cat.register(def, data).unwrap();
        cat
    }

    fn scan(cat: &Catalog, t: &str) -> LogicalPlan {
        LogicalPlan::scan(t, cat.table(t).unwrap().schema.clone())
    }

    /// `Apply(o, avg(σ_{t.k = o.ok}(t)))`
    fn correlated_avg(cat: &Catalog) -> LogicalPlan {
        let inner = scan(cat, "t")
            .select(Expr::col(0).eq(Expr::Correlated { level: 0, index: 0 }))
            .scalar_agg(vec![AggExpr::avg(Expr::col(1), "avg_v")]);
        scan(cat, "o").apply(inner, ApplyMode::Scalar)
    }

    #[test]
    fn rewrites_to_outer_join_groupby() {
        let stats = Statistics::empty();
        let cat = catalog();
        let plan = correlated_avg(&cat);
        let out = DecorrelateScalarAgg.apply(&plan, &ctx(&stats)).unwrap();
        assert!(out.any_node(&|p| matches!(p, LogicalPlan::LeftOuterJoin { .. })));
        assert!(out.any_node(&|p| matches!(p, LogicalPlan::GroupBy { .. })));
        assert!(!out.any_node(&|p| matches!(p, LogicalPlan::Apply { .. })));

        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&out, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
        // Empty group (ok=4) and NULL key both yield NULL aggregates.
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn count_aggregates_decline() {
        let stats = Statistics::empty();
        let cat = catalog();
        let inner = scan(&cat, "t")
            .select(Expr::col(0).eq(Expr::Correlated { level: 0, index: 0 }))
            .scalar_agg(vec![AggExpr::count_star("n")]);
        let plan = scan(&cat, "o").apply(inner, ApplyMode::Scalar);
        assert!(DecorrelateScalarAgg.apply(&plan, &ctx(&stats)).is_none());
    }

    #[test]
    fn uncorrelated_inner_declines() {
        let stats = Statistics::empty();
        let cat = catalog();
        let inner = scan(&cat, "t").scalar_agg(vec![AggExpr::avg(Expr::col(1), "a")]);
        let plan = scan(&cat, "o").apply(inner, ApplyMode::Scalar);
        assert!(DecorrelateScalarAgg.apply(&plan, &ctx(&stats)).is_none());
    }

    #[test]
    fn non_equality_correlation_declines() {
        let stats = Statistics::empty();
        let cat = catalog();
        let inner = scan(&cat, "t")
            .select(Expr::col(0).gt(Expr::Correlated { level: 0, index: 0 }))
            .scalar_agg(vec![AggExpr::avg(Expr::col(1), "a")]);
        let plan = scan(&cat, "o").apply(inner, ApplyMode::Scalar);
        assert!(DecorrelateScalarAgg.apply(&plan, &ctx(&stats)).is_none());
    }

    #[test]
    fn group_scan_inner_declines() {
        let stats = Statistics::empty();
        let gschema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let inner = LogicalPlan::group_scan(gschema.clone())
            .scalar_agg(vec![AggExpr::avg(Expr::col(0), "a")]);
        let plan = LogicalPlan::group_scan(gschema).apply(inner, ApplyMode::Scalar);
        assert!(DecorrelateScalarAgg.apply(&plan, &ctx(&stats)).is_none());
    }

    #[test]
    fn extra_filters_are_kept() {
        let stats = Statistics::empty();
        let cat = catalog();
        // avg over rows with v > 6 only, correlated by key.
        let inner = scan(&cat, "t")
            .select(
                Expr::col(0)
                    .eq(Expr::Correlated { level: 0, index: 0 })
                    .and(Expr::col(1).gt(Expr::lit(6.0))),
            )
            .scalar_agg(vec![AggExpr::avg(Expr::col(1), "a")]);
        let plan = scan(&cat, "o").apply(inner, ApplyMode::Scalar);
        let out = DecorrelateScalarAgg.apply(&plan, &ctx(&stats)).unwrap();
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&out, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
    }

    #[test]
    fn correlation_through_projection() {
        let stats = Statistics::empty();
        let cat = catalog();
        let inner = scan(&cat, "t")
            .select(Expr::col(0).eq(Expr::Correlated { level: 0, index: 0 }))
            .project_cols(&[0, 1])
            .scalar_agg(vec![AggExpr::max(Expr::col(1), "m")]);
        let plan = scan(&cat, "o").apply(inner, ApplyMode::Scalar);
        let out = DecorrelateScalarAgg.apply(&plan, &ctx(&stats)).unwrap();
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&out, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
    }
}
