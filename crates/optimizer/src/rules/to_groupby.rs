//! *Converting GApply to groupby* (§4.1, Figure 4).
//!
//! Two shapes convert:
//!
//! * the per-group query is a single aggregate over the group —
//!   `GApply(C, aggregate(aggs))` becomes `GroupBy(C, aggs)`;
//! * the per-group query is a group-by on columns B —
//!   `GApply(C, groupby(B, aggs))` becomes `GroupBy(C ∪ B, aggs)`.
//!
//! Both are safe because every group a GApply processes is non-empty, so
//! the "aggregate emits a row even on ∅" discrepancy never materialises.
//! The win the paper measures is modest (GroupBy does the same work) but
//! real: GApply is blocking per group while GroupBy pipelines its output.

use crate::rules::{Rule, RuleContext};
use xmlpub_algebra::LogicalPlan;

/// The GApply → groupby conversion.
pub struct ConvertToGroupBy;

impl Rule for ConvertToGroupBy {
    fn name(&self) -> &'static str {
        "gapply-to-groupby"
    }

    fn apply(&self, plan: &LogicalPlan, _ctx: &RuleContext<'_>) -> Option<LogicalPlan> {
        let LogicalPlan::GApply { input, group_cols, pgq } = plan else {
            return None;
        };
        match &**pgq {
            // aggregate directly over the group.
            LogicalPlan::ScalarAgg { input: agg_in, aggs } => {
                if !matches!(**agg_in, LogicalPlan::GroupScan { .. }) {
                    return None;
                }
                if aggs.iter().any(|a| a.arg.as_ref().is_some_and(|e| e.has_correlated())) {
                    return None;
                }
                Some(LogicalPlan::GroupBy {
                    input: input.clone(),
                    keys: group_cols.clone(),
                    aggs: aggs.clone(),
                })
            }
            // groupby over the group: fold its keys into the partition
            // columns.
            LogicalPlan::GroupBy { input: gb_in, keys, aggs } => {
                if !matches!(**gb_in, LogicalPlan::GroupScan { .. }) {
                    return None;
                }
                if aggs.iter().any(|a| a.arg.as_ref().is_some_and(|e| e.has_correlated())) {
                    return None;
                }
                // Group-scan columns are outer columns (same indices), so
                // the inner keys splice straight in after the outer keys.
                let mut new_keys = group_cols.clone();
                new_keys.extend(keys.iter().copied());
                Some(LogicalPlan::GroupBy {
                    input: input.clone(),
                    keys: new_keys,
                    aggs: aggs.clone(),
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Statistics;
    use xmlpub_algebra::{Catalog, TableDef};
    use xmlpub_common::{row, DataType, Field, Relation, Schema};
    use xmlpub_expr::{AggExpr, Expr};

    fn ctx(stats: &Statistics) -> RuleContext<'_> {
        RuleContext { stats, cost_gate: false, vetoes: None, claims: None }
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("size", DataType::Int),
            Field::new("price", DataType::Float),
        ])
    }

    fn catalog() -> Catalog {
        let def = TableDef::new("t", schema());
        let data = Relation::new(
            def.schema.clone(),
            vec![row![1, 5, 10.0], row![1, 5, 20.0], row![1, 7, 30.0], row![2, 5, 40.0]],
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.register(def, data).unwrap();
        cat
    }

    fn scan(cat: &Catalog) -> LogicalPlan {
        LogicalPlan::scan("t", cat.table("t").unwrap().schema.clone())
    }

    #[test]
    fn scalar_agg_converts() {
        let stats = Statistics::empty();
        let cat = catalog();
        let pgq = LogicalPlan::group_scan(scan(&cat).schema())
            .scalar_agg(vec![AggExpr::avg(Expr::col(2), "avg"), AggExpr::count_star("n")]);
        let plan = scan(&cat).gapply(vec![0], pgq);
        let out = ConvertToGroupBy.apply(&plan, &ctx(&stats)).unwrap();
        assert!(matches!(out, LogicalPlan::GroupBy { .. }));
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&out, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn inner_groupby_folds_keys() {
        let stats = Statistics::empty();
        let cat = catalog();
        // Per supplier and size, the average price (the Q4 building
        // block).
        let pgq = LogicalPlan::group_scan(scan(&cat).schema())
            .group_by(vec![1], vec![AggExpr::avg(Expr::col(2), "avg")]);
        let plan = scan(&cat).gapply(vec![0], pgq);
        let out = ConvertToGroupBy.apply(&plan, &ctx(&stats)).unwrap();
        match &out {
            LogicalPlan::GroupBy { keys, .. } => assert_eq!(keys, &vec![0, 1]),
            other => panic!("unexpected {other:?}"),
        }
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&out, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn aggregate_on_grouping_column_still_converts() {
        // "With a little care, this can be extended even if the aggregate
        // is on grouping columns."
        let stats = Statistics::empty();
        let cat = catalog();
        let pgq = LogicalPlan::group_scan(scan(&cat).schema())
            .scalar_agg(vec![AggExpr::max(Expr::col(0), "maxk")]);
        let plan = scan(&cat).gapply(vec![0], pgq);
        let out = ConvertToGroupBy.apply(&plan, &ctx(&stats)).unwrap();
        let a = xmlpub_engine::execute(&plan, &cat).unwrap();
        let b = xmlpub_engine::execute(&out, &cat).unwrap();
        assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
    }

    #[test]
    fn filtered_group_does_not_convert() {
        // σ below the aggregate breaks the equivalence (a fully filtered
        // group still emits a count-0 row under GApply, but would vanish
        // under GroupBy(σ(T))).
        let stats = Statistics::empty();
        let cat = catalog();
        let pgq = LogicalPlan::group_scan(scan(&cat).schema())
            .select(Expr::col(2).gt(Expr::lit(100.0)))
            .scalar_agg(vec![AggExpr::count_star("n")]);
        let plan = scan(&cat).gapply(vec![0], pgq);
        assert!(ConvertToGroupBy.apply(&plan, &ctx(&stats)).is_none());
    }

    #[test]
    fn non_aggregate_pgq_does_not_convert() {
        let stats = Statistics::empty();
        let cat = catalog();
        let pgq = LogicalPlan::group_scan(scan(&cat).schema()).project_cols(&[2]);
        let plan = scan(&cat).gapply(vec![0], pgq);
        assert!(ConvertToGroupBy.apply(&plan, &ctx(&stats)).is_none());
    }
}
