//! Table and column statistics.
//!
//! §4.4 reduces GApply costing to classical statistics questions: the
//! number of groups is the number of distinct values in the grouping
//! columns, and the average group size is the outer cardinality divided
//! by that. We gather exact per-column distinct counts and numeric
//! min/max by scanning the (in-memory) tables once; at this workspace's
//! scales that is cheap, and it keeps the estimator honest.

use std::collections::{BTreeMap, HashSet};
use xmlpub_algebra::Catalog;
use xmlpub_analysis::CatalogProperties;
use xmlpub_common::Value;

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct non-NULL values.
    pub distinct: u64,
    /// Fraction of NULL values.
    pub null_fraction: f64,
    /// Minimum value (numeric columns only).
    pub min: Option<f64>,
    /// Maximum value (numeric columns only).
    pub max: Option<f64>,
}

impl ColumnStats {
    /// Stats representing a column we know nothing about.
    pub fn unknown() -> Self {
        ColumnStats { distinct: 0, null_fraction: 0.0, min: None, max: None }
    }
}

/// Statistics for one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Row count.
    pub rows: u64,
    /// Per-column statistics, positionally aligned with the schema.
    pub columns: Vec<ColumnStats>,
}

/// Statistics for every table in a catalog.
#[derive(Debug, Clone, Default)]
pub struct Statistics {
    tables: BTreeMap<String, TableStats>,
    /// Constraint facts (keys, foreign keys, row counts) the property
    /// analyzer seeds its derivations from.
    properties: CatalogProperties,
}

impl Statistics {
    /// Empty statistics (the estimator falls back to defaults).
    pub fn empty() -> Self {
        Statistics::default()
    }

    /// Gather statistics by scanning every table in the catalog.
    pub fn from_catalog(catalog: &Catalog) -> Self {
        let mut tables = BTreeMap::new();
        for def in catalog.tables() {
            let Ok(data) = catalog.data(&def.name) else {
                continue;
            };
            let ncols = def.schema.len();
            let mut distinct: Vec<HashSet<&Value>> = vec![HashSet::new(); ncols];
            let mut nulls = vec![0u64; ncols];
            let mut mins = vec![f64::INFINITY; ncols];
            let mut maxs = vec![f64::NEG_INFINITY; ncols];
            let mut numeric = vec![true; ncols];
            for row in data.rows() {
                for (i, v) in row.values().iter().enumerate() {
                    if v.is_null() {
                        nulls[i] += 1;
                        continue;
                    }
                    distinct[i].insert(v);
                    match v.as_f64() {
                        Some(f) => {
                            mins[i] = mins[i].min(f);
                            maxs[i] = maxs[i].max(f);
                        }
                        None => numeric[i] = false,
                    }
                }
            }
            let rows = data.len() as u64;
            let columns = (0..ncols)
                .map(|i| ColumnStats {
                    distinct: distinct[i].len() as u64,
                    null_fraction: if rows == 0 { 0.0 } else { nulls[i] as f64 / rows as f64 },
                    min: (numeric[i] && mins[i].is_finite()).then_some(mins[i]),
                    max: (numeric[i] && maxs[i].is_finite()).then_some(maxs[i]),
                })
                .collect();
            tables.insert(def.name.to_ascii_lowercase(), TableStats { rows, columns });
        }
        Statistics { tables, properties: CatalogProperties::from_catalog(catalog) }
    }

    /// Catalog constraint facts for the property analyzer.
    pub fn catalog_properties(&self) -> &CatalogProperties {
        &self.properties
    }

    /// Stats for one table, if gathered.
    pub fn table(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Row count of a table (0 when unknown).
    pub fn rows(&self, name: &str) -> u64 {
        self.table(name).map(|t| t.rows).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlpub_algebra::TableDef;
    use xmlpub_common::{row, DataType, Field, Relation, Schema};

    fn catalog() -> Catalog {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
            Field::new("s", DataType::Str),
        ]);
        let def = TableDef::new("t", schema);
        let data = Relation::new(
            def.schema.clone(),
            vec![
                row![1, 10.0, "a"],
                row![1, 20.0, "b"],
                row![2, 30.0, "a"],
                row![3, xmlpub_common::Value::Null, "c"],
            ],
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.register(def, data).unwrap();
        cat
    }

    #[test]
    fn gathers_counts_and_ranges() {
        let stats = Statistics::from_catalog(&catalog());
        let t = stats.table("t").unwrap();
        assert_eq!(t.rows, 4);
        assert_eq!(t.columns[0].distinct, 3);
        assert_eq!(t.columns[0].min, Some(1.0));
        assert_eq!(t.columns[0].max, Some(3.0));
        assert_eq!(t.columns[1].distinct, 3);
        assert!((t.columns[1].null_fraction - 0.25).abs() < 1e-9);
        assert_eq!(t.columns[2].distinct, 3);
        assert_eq!(t.columns[2].min, None); // strings have no numeric range
    }

    #[test]
    fn unknown_tables_default() {
        let stats = Statistics::from_catalog(&catalog());
        assert!(stats.table("ghost").is_none());
        assert_eq!(stats.rows("ghost"), 0);
        assert_eq!(stats.rows("T"), 4); // case-insensitive
    }

    #[test]
    fn empty_statistics() {
        let s = Statistics::empty();
        assert!(s.table("t").is_none());
        let u = ColumnStats::unknown();
        assert_eq!(u.distinct, 0);
    }
}
