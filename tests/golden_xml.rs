//! Golden-output regression test for the publishing pipeline: fixed
//! seed, fixed scale, exact document prefix. Deterministic because the
//! generator is seeded and sort-based clustering fixes the order.

use xmlpub::xml::supplier_parts_view;
use xmlpub::Database;

#[test]
fn published_document_prefix_is_stable() {
    let db = Database::tpch(0.0002).unwrap(); // 2 suppliers, 40 parts
    let view = supplier_parts_view(db.catalog()).unwrap();
    let xml = db.publish(&view, true).unwrap();

    let lines: Vec<&str> = xml.lines().collect();
    assert_eq!(lines[0], "<suppliers>");
    assert_eq!(lines[1], "  <supplier s_suppkey=\"1\">");
    assert_eq!(lines[2], "    <s_name>Supplier#000000001</s_name>");
    assert_eq!(lines[3], "    <part>");
    // Part contents come from the seeded generator; pin the shape rather
    // than the words.
    assert!(lines[4].starts_with("      <p_name>"), "{}", lines[4]);
    assert!(lines[5].starts_with("      <p_retailprice>"), "{}", lines[5]);
    assert_eq!(lines[6], "    </part>");
    assert_eq!(lines.last(), Some(&"</suppliers>"));

    // Global shape: 2 suppliers, 160 partsupp rows → 160 part elements.
    assert_eq!(xml.matches("<supplier s_suppkey=").count(), 2);
    assert_eq!(xml.matches("<part>").count(), 160);

    // Determinism: a second pipeline run gives the identical document.
    let again = db.publish(&view, true).unwrap();
    assert_eq!(xml, again);

    // And a fresh database from the same seed too.
    let db2 = Database::tpch(0.0002).unwrap();
    let view2 = supplier_parts_view(db2.catalog()).unwrap();
    assert_eq!(db2.publish(&view2, true).unwrap(), xml);

    // Batch size and parallelism are invisible to publishing: every
    // dop × batch-size combination — the tuple-at-a-time degenerate,
    // parallel GApply, and the morsel-parallel pipeline operators —
    // produces the identical document byte-for-byte.
    for dop in [1usize, 2, 4] {
        for batch_size in [1usize, 1024] {
            let mut dbp = Database::tpch(0.0002).unwrap();
            dbp.config_mut().engine.dop = dop;
            dbp.config_mut().engine.batch_size = batch_size;
            let viewp = supplier_parts_view(dbp.catalog()).unwrap();
            assert_eq!(
                dbp.publish(&viewp, true).unwrap(),
                xml,
                "document diverges at dop={dop} batch_size={batch_size}"
            );
        }
    }
}

#[test]
fn compact_and_pretty_have_identical_content() {
    let db = Database::tpch(0.0002).unwrap();
    let view = supplier_parts_view(db.catalog()).unwrap();
    let pretty = db.publish(&view, true).unwrap();
    let compact = db.publish(&view, false).unwrap();
    use xmlpub_testkit::normalize::strip_whitespace;
    // Only whitespace differs (attribute spaces excepted — keep those).
    assert_eq!(
        strip_whitespace(&pretty).len(),
        strip_whitespace(&compact).len(),
        "pretty and compact diverge beyond whitespace"
    );
}

/// Streaming and concurrency leave the document untouched: publishing
/// into a caller-supplied sink, and publishing from 8 sessions at once
/// through the server's worker pool, all yield bytes identical to the
/// serial in-memory pipeline.
#[test]
fn concurrent_streaming_publishes_are_byte_identical() {
    use xmlpub_server::{Server, ServerConfig};

    let db = Database::tpch(0.0002).unwrap();
    let view = supplier_parts_view(db.catalog()).unwrap();
    let golden_pretty = db.publish(&view, true).unwrap();
    let golden_compact = db.publish(&view, false).unwrap();

    // The io::Write sink path is the same bytes as the String path.
    let sunk = db.publish_to(&view, true, Vec::new()).unwrap();
    assert_eq!(String::from_utf8(sunk).unwrap(), golden_pretty);

    let server = Server::new(
        Database::tpch(0.0002).unwrap(),
        ServerConfig { workers: 4, queue_depth: 16, ..ServerConfig::default() },
    );
    std::thread::scope(|s| {
        for _ in 0..8 {
            let server = &server;
            let golden_pretty = &golden_pretty;
            let golden_compact = &golden_compact;
            s.spawn(move || {
                let session = server.session();
                let view = supplier_parts_view(session.database().catalog()).unwrap();
                assert_eq!(&session.publish(&view, true).unwrap(), golden_pretty);
                assert_eq!(&session.publish(&view, false).unwrap(), golden_compact);
            });
        }
    });
}

/// Observability is a pure observer of the publishing pipeline: server
/// sessions running with full tracing and metrics enabled publish the
/// byte-identical document, and the trace actually records the work.
#[test]
fn traced_sessions_publish_byte_identical_documents() {
    use xmlpub::{BufferSink, MetricsHandle, Observability, SpanRecord, TraceHandle};
    use xmlpub_server::{Server, ServerConfig};

    let db = Database::tpch(0.0002).unwrap();
    let view = supplier_parts_view(db.catalog()).unwrap();
    let golden = db.publish(&view, true).unwrap();

    let sink = BufferSink::new();
    let mut traced_db = Database::tpch(0.0002).unwrap();
    traced_db.set_observability(Observability {
        metrics: MetricsHandle::new_registry(),
        tracer: TraceHandle::new(Box::new(sink.clone())),
    });
    let server = Server::new(
        traced_db,
        ServerConfig { workers: 4, queue_depth: 16, ..ServerConfig::default() },
    );
    std::thread::scope(|s| {
        for _ in 0..4 {
            let server = &server;
            let golden = &golden;
            s.spawn(move || {
                let session = server.session();
                let view = supplier_parts_view(session.database().catalog()).unwrap();
                assert_eq!(&session.publish(&view, true).unwrap(), golden);
            });
        }
    });

    // Concurrent emission still yields one well-formed JSONL record per
    // span, with each session's publish recorded.
    let records = SpanRecord::parse_all(&sink.contents()).expect("trace must parse");
    assert_eq!(records.iter().filter(|r| r.name == "publish").count(), 4);
    let snap = xmlpub::parse_text(&server.metrics_text()).unwrap();
    assert_eq!(snap.counter("server.publish.count"), Some(4));
}
