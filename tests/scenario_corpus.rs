//! The declarative scenario corpus (`tests/scenarios/**/*.scn`).
//!
//! Each test below enumerates one corpus directory and hands every
//! `.scn` file to `xmlpub-testkit`, which runs the scenario across the
//! full batch × dop × plan-cache × trace matrix (plus a full-recompute
//! oracle wherever the scenario republishes) and pins the rendered
//! output against the `.snap` file next to it. Adding a scenario is a
//! data-only change: drop a file under `tests/scenarios/` and bless it
//! with `cargo run -p xmlpub-testkit --bin bless`. See `docs/testing.md`.

use std::path::{Path, PathBuf};

fn corpus() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/scenarios")
}

fn run(subdir: &str) -> usize {
    match xmlpub_testkit::run_dir(&corpus().join(subdir)) {
        Ok(count) => count,
        Err(e) => panic!("{e}"),
    }
}

#[test]
fn fig8_scenarios() {
    assert!(run("fig8") >= 5, "Fig. 8 corpus shrank");
}

#[test]
fn rollup_scenarios() {
    assert!(run("rollup") >= 4, "rollup/cube corpus shrank");
}

#[test]
fn edge_scenarios() {
    assert!(run("edge") >= 3, "edge-case corpus shrank");
}

#[test]
fn incremental_scenarios() {
    assert!(run("incremental") >= 1, "incremental corpus shrank");
}

/// The acceptance floor for the corpus as a whole: at least 12
/// scenarios, each with a pinned snapshot.
#[test]
fn corpus_is_populated() {
    let files = xmlpub_testkit::scenario_files(&corpus()).unwrap();
    assert!(files.len() >= 12, "corpus has only {} scenarios", files.len());
    for scn in &files {
        let snap = xmlpub_testkit::snap_path(scn);
        assert!(snap.exists(), "missing snapshot for {}", scn.display());
    }
}
