//! Golden tests for the human-facing reports: the `\explain --analyze`
//! operator breakdown and the `\metrics` text exposition. Timings vary
//! run to run, so every timing field is normalized to `_` before
//! comparison — everything else (plan shape, row counts, counter
//! values, metric names) is pinned exactly.

use xmlpub::Database;
use xmlpub_server::{Server, ServerConfig};
use xmlpub_testkit::normalize::normalize_timings;

#[test]
fn analyze_report_matches_golden() {
    let db = Database::tpch(0.001).unwrap();
    let (result, report) = db
        .sql_analyzed(
            "select gapply(select p_name, max(p_retailprice) from g group by p_name) \
             from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g",
        )
        .unwrap();
    assert!(!result.rows().is_empty());
    // The optimizer rewrites the per-group aggregate into a plain
    // GroupBy over the join — the report pins that plan, the exact
    // per-operator row counts, and the engine counters.
    let expected = "\
== optimized plan ==
GroupBy keys=[partsupp.ps_suppkey, part.p_name] aggs=[max(part.p_retailprice)]
  Join (fk) on (partsupp.ps_partkey = part.p_partkey)
    Scan partsupp
    Scan part

== operators (analyze) ==
HashAggregate  rows_in=800 rows_out=800 batches=1 open=1 next=2 close=1 time_us=_ self_us=_
  HashJoin  rows_in=1000 rows_out=800 batches=1 open=1 next=2 close=1 time_us=_ self_us=_
    TableScan(partsupp)  rows_in=0 rows_out=800 batches=1 open=1 next=2 close=1 time_us=_ self_us=_
    TableScan(part)  rows_in=0 rows_out=200 batches=1 open=1 next=2 close=1 time_us=_ self_us=_

== engine counters ==
  batch size 1024
  ExecStats { rows_scanned: 1000, group_rows_scanned: 0, join_probes: 800, \
groups_processed: 0, pgq_executions: 0, apply_inner_executions: 0, apply_cache_hits: 0, \
rows_sorted: 0, rows_hashed: 1000, plan_cache_hits: 0, plan_cache_misses: 0 }
";
    assert_eq!(normalize_timings(&report), expected, "normalized report:\n{report}");
}

#[test]
fn metrics_exposition_matches_golden() {
    let mut db = Database::tpch(0.001).unwrap();
    // Pin the database-level observability so the golden set of metric
    // names is identical whether or not the suite runs under
    // XMLPUB_TRACE=1 (tracing adds engine.* counters to the registry).
    db.set_observability(xmlpub::Observability::disabled());
    let server = Server::new(
        db,
        // dop_budget is pinned (auto would derive dop_cap from the
        // machine's core count and break the golden across hosts).
        ServerConfig {
            workers: 2,
            dop_budget: 2,
            slow_query_us: 1_000_000,
            ..ServerConfig::default()
        },
    );
    let session = server.session();
    session.execute("select p_name from part where p_retailprice > 1500.0").unwrap();
    session.execute("select p_name from part where p_retailprice > 1500.0").unwrap();
    let view = xmlpub::xml::supplier_parts_view(server.database().catalog()).unwrap();
    session.publish(&view, false).unwrap();

    // `pool.executed` is bumped after the job body returns (the caller
    // already has its result by then) — wait for the counter to settle
    // so the gauge below is deterministic.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.stats().pool.executed < 3 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }

    let expected = "# xmlpub metrics v1\n\
                    counter server.publish.count 1\n\
                    counter server.query.count 2\n\
                    gauge server.cache.entries 2\n\
                    gauge server.cache.evictions 0\n\
                    gauge server.cache.hits 1\n\
                    gauge server.cache.misses 2\n\
                    gauge server.dop_cap 1\n\
                    gauge server.pool.admitted 3\n\
                    gauge server.pool.executed 3\n\
                    gauge server.pool.in_queue 0\n\
                    gauge server.pool.panicked 0\n\
                    gauge server.pool.shed 0\n\
                    gauge server.slow.seen 0\n\
                    gauge server.slow.threshold_us _\n\
                    gauge server.workers 2\n\
                    histogram server.publish_us count=1 sum_us=_ buckets=_\n\
                    histogram server.query_us count=2 sum_us=_ buckets=_\n";
    let text = server.metrics_text();
    assert_eq!(normalize_timings(&text), expected, "normalized exposition:\n{text}");
}
