//! Property-based tests over random databases.
//!
//! Strategy: generate a random `(k, brand, price)` table, build the
//! paper's plan shapes over it with random parameters, and check the
//! semantic invariants:
//!
//! 1. the physical GApply (hash and sort partitioning) matches the
//!    formal definition `⋃_c {c} × PGQ(σ_{C=c}(R))` evaluated naively;
//! 2. every optimizer rule is a bag-equivalence;
//! 3. Theorem 1 directly: filtering a group to its covering range never
//!    changes the per-group result;
//! 4. both SQL formulations of the XQuery workloads agree;
//! 5. batched execution is invisible: every batch-size target produces
//!    the same bag as the tuple-at-a-time degenerate (`batch_size = 1`).

use proptest::prelude::*;
use std::sync::Arc;
use xmlpub::algebra::{
    analysis::{covering_range, empty_on_empty},
    Catalog, LogicalPlan, TableDef,
};
use xmlpub::engine::ops::drain;
use xmlpub::engine::{ExecContext, PhysicalPlanner};
use xmlpub::expr::{AggExpr, Expr};
use xmlpub::{
    DataType, Database, EngineConfig, Field, OptimizerConfig, PartitionStrategy, Relation, Schema,
    Tuple, Value,
};

fn table_schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("brand", DataType::Str),
        Field::new("price", DataType::Float),
    ])
}

/// Random rows: small key domain (so groups collide), 3 brands, prices
/// with duplicates and occasional NULLs.
fn rows_strategy() -> impl Strategy<Value = Vec<Tuple>> {
    let row = (0..6i64, 0..3usize, 0..40i64, 0..20u8).prop_map(|(k, b, p, null_roll)| {
        let brand = ["A", "B", "C"][b];
        let price = if null_roll == 0 { Value::Null } else { Value::Float(p as f64 / 2.0) };
        Tuple::new(vec![Value::Int(k), Value::str(brand), price])
    });
    proptest::collection::vec(row, 0..60)
}

fn catalog_from(rows: Vec<Tuple>) -> Catalog {
    let def = TableDef::new("t", table_schema());
    let data = Relation::new(def.schema.clone(), rows).unwrap();
    let mut cat = Catalog::new();
    cat.register(def, data).unwrap();
    cat
}

fn scan(cat: &Catalog) -> LogicalPlan {
    LogicalPlan::scan("t", cat.table("t").unwrap().schema.clone())
}

/// A family of per-group queries covering the paper's shapes, selected
/// by an index and parameterised by a threshold.
fn pgq(shape: usize, threshold: f64, gschema: &Schema) -> LogicalPlan {
    let gs = || LogicalPlan::group_scan(gschema.clone());
    match shape {
        // Whole group.
        0 => gs(),
        // Filter + project.
        1 => gs().select(Expr::col(2).gt(Expr::lit(threshold))).project_cols(&[1, 2]),
        // Aggregates.
        2 => gs().scalar_agg(vec![AggExpr::avg(Expr::col(2), "avg"), AggExpr::count_star("n")]),
        // Inner group-by.
        3 => gs().group_by(vec![1], vec![AggExpr::max(Expr::col(2), "maxp")]),
        // Union of a listing and an aggregate (Q1 shape).
        4 => LogicalPlan::union_all(vec![
            gs().project(vec![
                xmlpub::algebra::ProjectItem::col(2),
                xmlpub::algebra::plan::null_item("pad"),
            ]),
            gs().scalar_agg(vec![AggExpr::min(Expr::col(2), "minp")]).project(vec![
                xmlpub::algebra::plan::null_item("price"),
                xmlpub::algebra::ProjectItem::col(0),
            ]),
        ]),
        // Exists-style group selection.
        5 => {
            let cond = gs().select(Expr::col(2).gt(Expr::lit(threshold)));
            gs().apply(cond.exists(), xmlpub::algebra::ApplyMode::Cross)
        }
        // Aggregate selection shape.
        6 => {
            let avg = gs().scalar_agg(vec![AggExpr::avg(Expr::col(2), "avg")]);
            gs().apply(avg, xmlpub::algebra::ApplyMode::Scalar)
                .select(Expr::col(3).gt(Expr::lit(threshold)))
                .project_cols(&[1, 2])
        }
        // Q2 shape: count above the group average.
        _ => {
            let avg = gs().scalar_agg(vec![AggExpr::avg(Expr::col(2), "avg")]);
            gs().apply(avg, xmlpub::algebra::ApplyMode::Scalar)
                .select(Expr::col(2).gt_eq(Expr::col(3)))
                .scalar_agg(vec![AggExpr::count_star("above")])
        }
    }
}

/// Naive evaluation of the formal GApply definition.
fn naive_gapply(
    cat: &Catalog,
    input: &LogicalPlan,
    group_cols: &[usize],
    per_group: &LogicalPlan,
) -> Relation {
    let planner = PhysicalPlanner::default();
    let input_rel = {
        let mut op = planner.plan(input).unwrap();
        let mut ctx = ExecContext::new(cat);
        let rows = drain(op.as_mut(), &mut ctx).unwrap();
        Relation::from_rows_unchecked(op.schema().clone(), rows)
    };
    // distinct(π_C(RE1))
    let mut keys: Vec<Vec<Value>> = input_rel
        .rows()
        .iter()
        .map(|r| group_cols.iter().map(|&c| r.value(c).clone()).collect())
        .collect();
    keys.sort();
    keys.dedup();
    let mut out_rows = Vec::new();
    let mut out_schema = None;
    for key in keys {
        let group_rows: Vec<Tuple> = input_rel
            .rows()
            .iter()
            .filter(|r| group_cols.iter().enumerate().all(|(i, &c)| r.value(c) == &key[i]))
            .cloned()
            .collect();
        let group = Relation::from_rows_unchecked(input_rel.schema().clone(), group_rows);
        let mut op = planner.plan(per_group).unwrap();
        let mut ctx = ExecContext::new(cat);
        ctx.groups.push(Arc::new(group));
        let rows = drain(op.as_mut(), &mut ctx).unwrap();
        if out_schema.is_none() {
            out_schema = Some(
                Schema::new(
                    group_cols.iter().map(|&c| input_rel.schema().field(c).clone()).collect(),
                )
                .join(op.schema()),
            );
        }
        for r in rows {
            out_rows.push(Tuple::new(key.iter().cloned().chain(r.into_values()).collect()));
        }
    }
    let schema = out_schema.unwrap_or_else(|| {
        Schema::new(group_cols.iter().map(|&c| input_rel.schema().field(c).clone()).collect())
            .join(&per_group.schema())
    });
    Relation::from_rows_unchecked(schema, out_rows)
}

fn execute_with(cat: &Catalog, plan: &LogicalPlan, strategy: PartitionStrategy) -> Relation {
    let config = EngineConfig { partition_strategy: strategy, ..Default::default() };
    xmlpub::engine::execute_with_config(plan, cat, &config).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariant 1: the operator implements its formal definition, under
    /// both partitioning strategies.
    #[test]
    fn gapply_matches_formal_definition(
        rows in rows_strategy(),
        shape in 0usize..8,
        threshold in 0.0f64..20.0,
    ) {
        let cat = catalog_from(rows);
        let outer = scan(&cat);
        let per_group = pgq(shape, threshold, &outer.schema());
        let plan = outer.clone().gapply(vec![0], per_group.clone());
        let expected = naive_gapply(&cat, &outer, &[0], &per_group);
        for strategy in [PartitionStrategy::Hash, PartitionStrategy::Sort] {
            let got = execute_with(&cat, &plan, strategy);
            prop_assert!(
                got.bag_eq(&expected),
                "{strategy:?}: {}",
                got.bag_diff(&expected)
            );
        }
    }

    /// Invariant 2: the full optimizer (and each rule alone) preserves
    /// the result bag.
    #[test]
    fn optimizer_rules_preserve_semantics(
        rows in rows_strategy(),
        shape in 0usize..8,
        threshold in 0.0f64..20.0,
    ) {
        let cat = catalog_from(rows);
        let outer = scan(&cat);
        let per_group = pgq(shape, threshold, &outer.schema());
        let plan = outer.gapply(vec![0], per_group);
        let baseline = execute_with(&cat, &plan, PartitionStrategy::Hash);

        let mut db = Database::from_catalog(cat);
        // Full default pipeline.
        db.config_mut().optimizer = OptimizerConfig::default();
        db.config_mut().optimizer.cost_gate = false;
        let stats = xmlpub::optimizer::Statistics::from_catalog(db.catalog());
        let optimizer = xmlpub::optimizer::Optimizer::new(db.config().optimizer, &stats);
        let (optimized, _) = optimizer.optimize(plan.clone());
        let out = db.execute_plan(&optimized).unwrap().0;
        prop_assert!(baseline.bag_eq(&out), "{}", baseline.bag_diff(&out));
    }

    /// Invariant 3 (Theorem 1): `PGQ($gp) = PGQ(σ_range($gp))` whenever
    /// the range pushes (emptyOnEmpty); checked per group directly.
    #[test]
    fn covering_range_is_sound(
        rows in rows_strategy(),
        shape in 0usize..8,
        threshold in 0.0f64..20.0,
    ) {
        let cat = catalog_from(rows);
        let outer = scan(&cat);
        let per_group = pgq(shape, threshold, &outer.schema());
        let range = covering_range(&per_group);
        prop_assume!(range != Expr::lit(true));
        prop_assume!(empty_on_empty(&per_group));

        let plain = outer.clone().gapply(vec![0], per_group.clone());
        let filtered = outer
            .select(range)
            .gapply(vec![0], per_group);
        let a = execute_with(&cat, &plain, PartitionStrategy::Hash);
        let b = execute_with(&cat, &filtered, PartitionStrategy::Hash);
        prop_assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
    }

    /// Invariant 5: batch size is semantically invisible. Running the
    /// same plan at batch-size targets 2, 7 and 1024 yields the same bag
    /// as the tuple-at-a-time reference (`batch_size = 1`).
    #[test]
    fn batch_size_is_semantically_invisible(
        rows in rows_strategy(),
        shape in 0usize..8,
        threshold in 0.0f64..20.0,
    ) {
        let cat = catalog_from(rows);
        let outer = scan(&cat);
        let per_group = pgq(shape, threshold, &outer.schema());
        let plan = outer.gapply(vec![0], per_group);
        let reference = xmlpub::engine::execute_with_config(
            &plan,
            &cat,
            &EngineConfig { batch_size: 1, ..Default::default() },
        )
        .unwrap();
        for batch_size in [2usize, 7, 1024] {
            let got = xmlpub::engine::execute_with_config(
                &plan,
                &cat,
                &EngineConfig { batch_size, ..Default::default() },
            )
            .unwrap();
            prop_assert!(
                got.bag_eq(&reference),
                "batch_size={batch_size}: {}",
                got.bag_diff(&reference)
            );
        }
    }

    /// Parallel GApply is *invisible*: at every degree of parallelism,
    /// both partition strategies produce row-for-row (order included)
    /// and counter-for-counter the same result as serial execution —
    /// the deterministic-merge contract, stronger than bag equality.
    #[test]
    fn parallel_gapply_is_row_and_stats_identical_to_serial(
        rows in rows_strategy(),
        shape in 0usize..8,
        threshold in 0.0f64..20.0,
    ) {
        let cat = catalog_from(rows);
        let outer = scan(&cat);
        let per_group = pgq(shape, threshold, &outer.schema());
        let plan = outer.gapply(vec![0], per_group);
        for strategy in [PartitionStrategy::Hash, PartitionStrategy::Sort] {
            let serial = EngineConfig { partition_strategy: strategy, dop: 1, ..Default::default() };
            let (reference, ref_stats) =
                xmlpub::engine::execute_with_stats(&plan, &cat, &serial).unwrap();
            for dop in [2usize, 8] {
                let cfg = EngineConfig { partition_strategy: strategy, dop, ..Default::default() };
                let (got, stats) = xmlpub::engine::execute_with_stats(&plan, &cat, &cfg).unwrap();
                prop_assert_eq!(&got, &reference, "rows diverge at dop={} {:?}", dop, strategy);
                prop_assert_eq!(&stats, &ref_stats, "stats diverge at dop={} {:?}", dop, strategy);
            }
        }
    }

    /// Same contract through *nested* parallel plans: a GApply whose
    /// outer input is itself a GApply (both parallel), with Apply-based
    /// per-group queries, stays row- and stats-identical to serial.
    #[test]
    fn nested_parallel_gapply_matches_serial(
        rows in rows_strategy(),
        threshold in 0.0f64..20.0,
    ) {
        let cat = catalog_from(rows);
        let outer = scan(&cat);
        // Inner GApply: aggregate-selection shape (Apply inside the PGQ)
        // emitting (k, brand, price); outer GApply re-groups by brand
        // with the Q2 count-above-average shape on top.
        let inner = outer.clone().gapply(vec![0], pgq(6, threshold, &outer.schema()));
        let plan = inner.clone().gapply(vec![1], pgq(7, threshold, &inner.schema()));
        for strategy in [PartitionStrategy::Hash, PartitionStrategy::Sort] {
            let serial = EngineConfig { partition_strategy: strategy, dop: 1, ..Default::default() };
            let (reference, ref_stats) =
                xmlpub::engine::execute_with_stats(&plan, &cat, &serial).unwrap();
            for dop in [2usize, 8] {
                let cfg = EngineConfig { partition_strategy: strategy, dop, ..Default::default() };
                let (got, stats) = xmlpub::engine::execute_with_stats(&plan, &cat, &cfg).unwrap();
                prop_assert_eq!(&got, &reference, "rows diverge at dop={} {:?}", dop, strategy);
                prop_assert_eq!(&stats, &ref_stats, "stats diverge at dop={} {:?}", dop, strategy);
            }
        }
    }

    /// The runtime property oracle (`EngineConfig::check_props`, i.e.
    /// the `XMLPUB_CHECK_PROPS=1` debugging mode) is *invisible* on
    /// sound plans: over random data and plan shapes — raw and
    /// optimizer-rewritten, wrapped in the operators whose derived
    /// properties the checker actually asserts (sort order, group-by
    /// keys, distinct, scalar-agg cardinality) — checked execution
    /// never errors and returns exactly the unchecked result. A checker
    /// firing here means the static derivation claimed something the
    /// engine does not deliver.
    #[test]
    fn property_checker_is_invisible_on_sound_plans(
        rows in rows_strategy(),
        shape in 0usize..8,
        threshold in 0.0f64..20.0,
    ) {
        use xmlpub::algebra::plan::SortKey;
        let cat = catalog_from(rows);
        let outer = scan(&cat);
        let per_group = pgq(shape, threshold, &outer.schema());
        let base = outer.clone().gapply(vec![0], per_group);
        let variants = vec![
            base.clone(),
            // Derived order claims on the root.
            base.clone().order_by(vec![SortKey::asc(0), SortKey::desc(1)]),
            // Derived key claims (group-by keys / distinct rows).
            outer.clone().group_by(vec![0, 1], vec![AggExpr::count_star("n")]),
            outer.clone().project_cols(&[0, 1]).distinct(),
            // Derived exact-one-row cardinality.
            outer.clone().scalar_agg(vec![AggExpr::count_star("n")]),
        ];
        let stats = xmlpub::optimizer::Statistics::from_catalog(&cat);
        let optimizer = xmlpub::optimizer::Optimizer::new(
            OptimizerConfig { cost_gate: false, ..Default::default() },
            &stats,
        );
        for plan in variants {
            let (optimized, _) = optimizer.optimize(plan.clone());
            for candidate in [&plan, &optimized] {
                let plain = xmlpub::engine::execute_with_config(
                    candidate,
                    &cat,
                    &EngineConfig { check_props: false, ..Default::default() },
                )
                .unwrap();
                let checked = xmlpub::engine::execute_with_config(
                    candidate,
                    &cat,
                    &EngineConfig { check_props: true, ..Default::default() },
                );
                match checked {
                    Ok(got) => prop_assert_eq!(&got, &plain, "checked run changed the result"),
                    Err(e) => prop_assert!(false, "checker fired on a sound plan: {e}"),
                }
            }
        }
    }

    /// Invariant 4: tuple ordering invariance — GApply output does not
    /// depend on the physical order of its input.
    #[test]
    fn gapply_is_input_order_insensitive(
        rows in rows_strategy(),
        shape in 0usize..8,
        threshold in 0.0f64..20.0,
    ) {
        let mut reversed = rows.clone();
        reversed.reverse();
        let cat_a = catalog_from(rows);
        let cat_b = catalog_from(reversed);
        let outer_a = scan(&cat_a);
        let per_group = pgq(shape, threshold, &outer_a.schema());
        let plan_a = outer_a.gapply(vec![0], per_group.clone());
        let plan_b = scan(&cat_b).gapply(vec![0], per_group);
        let a = execute_with(&cat_a, &plan_a, PartitionStrategy::Hash);
        let b = execute_with(&cat_b, &plan_b, PartitionStrategy::Sort);
        prop_assert!(a.bag_eq(&b), "{}", a.bag_diff(&b));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Large inputs cross the engine's parallel-*partition* threshold
    /// (512 rows), so this drives the chunked hash build / chunked sort
    /// + k-way merge paths as well as parallel group execution — and
    /// the result must still be row- and stats-identical to serial.
    #[test]
    fn parallel_partition_phase_is_identical_to_serial(
        rows in proptest::collection::vec(
            (0..25i64, 0..3usize, 0..40i64).prop_map(|(k, b, p)| {
                Tuple::new(vec![
                    Value::Int(k),
                    Value::str(["A", "B", "C"][b]),
                    Value::Float(p as f64 / 2.0),
                ])
            }),
            520..700,
        ),
        shape in 0usize..8,
        threshold in 0.0f64..20.0,
    ) {
        let cat = catalog_from(rows);
        let outer = scan(&cat);
        let per_group = pgq(shape, threshold, &outer.schema());
        let plan = outer.gapply(vec![0], per_group);
        for strategy in [PartitionStrategy::Hash, PartitionStrategy::Sort] {
            let serial = EngineConfig { partition_strategy: strategy, dop: 1, ..Default::default() };
            let (reference, ref_stats) =
                xmlpub::engine::execute_with_stats(&plan, &cat, &serial).unwrap();
            let cfg = EngineConfig { partition_strategy: strategy, dop: 4, ..Default::default() };
            let (got, stats) = xmlpub::engine::execute_with_stats(&plan, &cat, &cfg).unwrap();
            prop_assert_eq!(&got, &reference, "rows diverge under parallel partition {:?}", strategy);
            prop_assert_eq!(&stats, &ref_stats, "stats diverge under parallel partition {:?}", strategy);
        }
    }

    /// Morsel-driven parallelism inside the pipeline operators (filter,
    /// computed project, hash-join build/probe with a residual, hash
    /// aggregate) is invisible: a *non-GApply* plan large enough to
    /// cross the engine's 256-row morsel floor (and the 512-row
    /// partition floor) produces row- and counter-identical results at
    /// every dop × batch-size combination — with an order-sensitive
    /// float average in the aggregate to catch any reordering of the
    /// accumulation.
    #[test]
    fn morsel_parallel_pipeline_is_identical_to_serial(
        rows in proptest::collection::vec(
            (0..25i64, 0..3usize, 0..40i64).prop_map(|(k, b, p)| {
                Tuple::new(vec![
                    Value::Int(k),
                    Value::str(["A", "B", "C"][b]),
                    Value::Float(p as f64 / 2.0),
                ])
            }),
            520..700,
        ),
        threshold in 0.0f64..20.0,
    ) {
        use xmlpub::algebra::ProjectItem;
        use xmlpub::expr::BinOp;
        let cat = catalog_from(rows);
        let bump = Expr::Binary {
            op: BinOp::Add,
            left: Box::new(Expr::col(2)),
            right: Box::new(Expr::lit(0.25)),
        };
        // filter → computed project → equi-join with a residual →
        // group-by over the join output.
        let left = scan(&cat)
            .select(Expr::col(2).gt(Expr::lit(threshold)))
            .project(vec![
                ProjectItem::col(0),
                ProjectItem::col(1),
                ProjectItem::named(bump, "p2"),
            ]);
        let inner = left
            .join(scan(&cat), Expr::col(0).eq(Expr::col(3)).and(Expr::col(2).gt(Expr::col(5))))
            .group_by(vec![4], vec![AggExpr::avg(Expr::col(2), "avg"), AggExpr::count_star("n")]);
        // Left-outer probe path with NULL padding on the build side.
        let louter = scan(&cat).left_outer_join(
            scan(&cat).select(Expr::col(2).gt(Expr::lit(threshold))),
            Expr::col(0).eq(Expr::col(3)),
        );
        for plan in [&inner, &louter] {
            for batch_size in [1usize, 7, 1024] {
                let serial = EngineConfig { dop: 1, batch_size, ..Default::default() };
                let (reference, ref_stats) =
                    xmlpub::engine::execute_with_stats(plan, &cat, &serial).unwrap();
                for dop in [2usize, 8] {
                    let cfg = EngineConfig { dop, batch_size, ..Default::default() };
                    let (got, stats) =
                        xmlpub::engine::execute_with_stats(plan, &cat, &cfg).unwrap();
                    prop_assert_eq!(
                        &got, &reference,
                        "rows diverge at dop={} batch={}", dop, batch_size
                    );
                    prop_assert_eq!(
                        &stats, &ref_stats,
                        "stats diverge at dop={} batch={}", dop, batch_size
                    );
                }
            }
        }
    }

    /// Both SQL formulations of the Q1/Q3-style XQuery workloads agree on
    /// random thresholds (full-stack property).
    #[test]
    fn xquery_translations_agree(scale_ppm in 3u32..8, threshold in 900.0f64..2100.0) {
        use xmlpub::xml::xquery::{ChildCond, ReturnItem, ViewSql, XAgg, XQueryFor};
        use xmlpub::expr::BinOp;
        let db = Database::tpch(scale_ppm as f64 / 10_000.0).unwrap();
        let view = ViewSql::supplier_parts();
        let q = XQueryFor {
            var: "s".into(),
            where_clause: None,
            return_items: vec![
                ReturnItem::Nested {
                    fields: vec!["p_name".into()],
                    filter: Some(ChildCond::Compare {
                        field: "p_retailprice".into(),
                        op: BinOp::Gt,
                        value: Value::Float(threshold),
                    }),
                },
                ReturnItem::Aggregate {
                    agg: XAgg::Avg,
                    field: "p_retailprice".into(),
                    filter: None,
                },
            ],
        };
        let classic = db.sql(&q.to_classic_sql(&view)).unwrap();
        let gapply = db.sql(&q.to_gapply_sql(&view)).unwrap();
        prop_assert!(classic.bag_eq(&gapply), "{}", classic.bag_diff(&gapply));
    }
}

/// One column's worth of random values: homogeneous typed columns (the
/// dictionary/bitmap encodings) and fully mixed ones, all with NULLs
/// sprinkled in, so every `ColumnVec` variant gets exercised.
fn column_values() -> impl Strategy<Value = Vec<Value>> {
    // (type-class, payload, null-roll): class 0..4 fixes a homogeneous
    // column type (Int/Float/Bool/Str), 4 mixes per-value; one value in
    // five is NULL.
    (0..5usize, proptest::collection::vec((any::<i64>(), 0..5u8), 0..120)).prop_map(
        |(class, payload)| {
            payload
                .into_iter()
                .enumerate()
                .map(|(i, (bits, null_roll))| {
                    if null_roll == 0 {
                        return Value::Null;
                    }
                    let pick = if class == 4 { i % 4 } else { class };
                    match pick {
                        0 => Value::Int(bits),
                        1 => Value::Float((bits % 1_000_000) as f64 / 4.0),
                        2 => Value::Bool(bits & 1 == 0),
                        _ => Value::str(["", "a", "bb", "ccc"][(bits % 4).unsigned_abs() as usize]),
                    }
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The columnar encoding is lossless and its vector operations
    /// (slice + append, retain, gather) agree with the row-model
    /// reference on every variant — the contract the batch shims and
    /// the morsel range-slicing rely on.
    #[test]
    fn columnar_round_trip_matches_row_model(
        vals in column_values(),
        split_ppm in 0u32..=1_000_000,
        mask_mod in 1usize..6,
    ) {
        use xmlpub::ColumnVec;
        let col = ColumnVec::from_values(vals.clone());
        prop_assert_eq!(col.len(), vals.len());
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(&col.get(i), v, "get({i}) diverges");
            prop_assert_eq!(col.is_null(i), matches!(v, Value::Null));
        }
        prop_assert_eq!(col.clone().into_values(), vals.clone());

        // slice + append reassemble the original.
        let cut = (vals.len() as u64 * split_ppm as u64 / 1_000_000) as usize;
        let mut front = col.slice(0..cut);
        front.append(col.slice(cut..vals.len()));
        prop_assert_eq!(front.into_values(), vals.clone());

        // retain matches the row-model filter.
        let mask: Vec<bool> = (0..vals.len()).map(|i| i % mask_mod != 0).collect();
        let mut kept = col.clone();
        kept.retain(&mask);
        let expected: Vec<Value> = vals
            .iter()
            .zip(&mask)
            .filter(|(_, keep)| **keep)
            .map(|(v, _)| v.clone())
            .collect();
        prop_assert_eq!(kept.into_values(), expected);

        // gather (with duplicates and reordering) matches row indexing.
        if !vals.is_empty() {
            let indices: Vec<usize> = (0..vals.len()).map(|i| (i * 7 + 3) % vals.len()).collect();
            let gathered = col.gather(&indices);
            let expected: Vec<Value> = indices.iter().map(|&i| vals[i].clone()).collect();
            prop_assert_eq!(gathered.into_values(), expected);
        }
    }

    /// Row-oriented construction of a batch and its columnar storage
    /// are two views of the same data: `TupleBatch::new` from rows
    /// round-trips through `rows()`/`into_rows()` unchanged.
    #[test]
    fn batch_rows_round_trip_through_columns(
        rows in rows_strategy(),
    ) {
        let batch = xmlpub::TupleBatch::new(table_schema(), rows.clone());
        prop_assert_eq!(batch.len(), rows.len());
        prop_assert_eq!(batch.rows(), &rows[..]);
        for (i, row) in rows.iter().enumerate() {
            for c in 0..3 {
                prop_assert_eq!(&batch.columns()[c].get(i), row.value(c), "({i},{c})");
            }
        }
        prop_assert_eq!(batch.into_rows(), rows);
    }
}

/// The Figure 8 workloads answered by the concurrent publishing service
/// from 8 client threads are bag-equal to a serial single-threaded
/// execution of the same queries — both the prepared (warm) and ad-hoc
/// paths, with every client racing on the shared plan cache.
#[test]
fn concurrent_fig8_matches_serial_execution() {
    use xmlpub::xml::workloads::figure8_workloads;
    use xmlpub_server::{Server, ServerConfig};

    let scale = 0.001;
    let serial = Database::tpch(scale).unwrap();
    let workloads = figure8_workloads();
    let expected: Vec<Relation> =
        workloads.iter().map(|w| serial.sql(&w.gapply_sql).unwrap()).collect();

    let server = Server::new(
        Database::tpch(scale).unwrap(),
        ServerConfig { workers: 8, queue_depth: 32, ..ServerConfig::default() },
    );
    std::thread::scope(|s| {
        for client in 0..8 {
            let server = &server;
            let workloads = &workloads;
            let expected = &expected;
            s.spawn(move || {
                let mut session = server.session();
                // Rotate the starting query per client so cache fills race.
                for i in 0..workloads.len() {
                    let idx = (client + i) % workloads.len();
                    let w = &workloads[idx];
                    session.prepare(w.name, &w.gapply_sql).unwrap();
                    let (got, _) = session.execute_prepared(w.name).unwrap();
                    assert!(
                        got.bag_eq(&expected[idx]),
                        "{}: {}",
                        w.name,
                        got.bag_diff(&expected[idx])
                    );
                    // Ad-hoc path: same SQL text must now be a cache hit.
                    let (got2, stats) = session.execute(&w.gapply_sql).unwrap();
                    assert!(got2.bag_eq(&expected[idx]));
                    assert_eq!(stats.plan_cache_hits, 1);
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.pool.shed, 0, "queue depth 32 must absorb 8 closed-loop clients");
    assert!(stats.cache.hits > 0, "8 clients over 5 queries must share plans: {stats}");
}

// ---------------------------------------------------------------------
// Incremental publishing (delta-maintained documents).

/// A delta script interleaving appends and deletes against the base
/// relation, applied between `columns()` materialisations: the lazy
/// columnar cache must stay coherent with the row store through every
/// mutation, and the version stamp must advance exactly when the data
/// changes.
#[cfg(test)]
mod delta_coherence {
    use super::*;
    use xmlpub_common::DeltaBatch;

    fn delta_script() -> impl Strategy<Value = Vec<(bool, Vec<(i64, u16)>)>> {
        // (materialise columns first?, batch of (key, selector))
        proptest::collection::vec(
            (any::<bool>(), proptest::collection::vec((0..50i64, any::<u16>()), 1..8)),
            1..6,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn columns_cache_stays_coherent_across_deltas(
            rows in rows_strategy(),
            script in delta_script(),
        ) {
            let mut rel = Relation::new(table_schema(), rows).unwrap();
            for (materialise, ops) in script {
                if materialise {
                    // Populate the lazy columnar cache so the delta has
                    // something to keep coherent (or invalidate).
                    let _ = rel.columns();
                    prop_assert!(rel.columnar().is_some());
                }
                let before = rel.version();
                let mut batch = DeltaBatch::default();
                // Distinct indices only: a batch may not delete the same
                // physical row twice.
                let mut used = std::collections::HashSet::new();
                for (key, sel) in ops {
                    if sel % 3 == 0 && !rel.is_empty() {
                        // Delete an existing row, so the delete matches.
                        let idx = sel as usize % rel.len();
                        if !used.insert(idx) {
                            continue;
                        }
                        batch.deleted.push(rel.rows()[idx].clone());
                    } else {
                        batch.appended.push(Tuple::new(vec![
                            Value::Int(key),
                            Value::str(["A", "B", "C"][sel as usize % 3]),
                            Value::Float(sel as f64 / 8.0),
                        ]));
                    }
                }
                let changed = !batch.appended.is_empty() || !batch.deleted.is_empty();
                rel.apply_delta(&batch).unwrap();
                prop_assert_eq!(rel.version() > before, changed, "version stamp");
                // The columnar view, however it was produced, must agree
                // with the row store cell for cell.
                let rows: Vec<Tuple> = rel.rows().to_vec();
                let cols = rel.columns();
                for (i, row) in rows.iter().enumerate() {
                    for (c, col) in cols.iter().enumerate() {
                        prop_assert_eq!(&col.get(i), row.value(c), "({i},{c})");
                    }
                }
            }
        }
    }
}

/// The PR-9 differential: random append/delete interleavings against
/// the supplier and partsupp tables, republished through the
/// delta-maintained document cache, must stay **byte-identical** to a
/// full recompute — at every dop x batch-size combination, and across
/// them.
#[cfg(test)]
mod incremental_republish {
    use super::*;
    use xmlpub::xml::supplier_parts_view;
    use xmlpub_common::DeltaBatch;
    use xmlpub_server::{RepublishOutcome, Server, ServerConfig};

    /// (op selector, row selector) pairs; op % 4 picks the mutation.
    fn mutation_script() -> impl Strategy<Value = Vec<(u8, u16)>> {
        proptest::collection::vec((any::<u8>(), any::<u16>()), 1..8)
    }

    /// Returns `false` when the selected mutation was a guarded no-op
    /// (e.g. the delete that keeps the document non-trivial) — the
    /// caller then expects a `clean` republish instead of a splice.
    fn apply_mutation(db: &Database, op: u8, sel: u16, next_key: &mut i64) -> bool {
        let catalog = db.catalog();
        match op % 4 {
            // Rename a supplier: delete + append under the same key.
            0 => {
                let data = catalog.data("supplier").unwrap();
                let rows = data.rows();
                if rows.is_empty() {
                    return false;
                }
                let name_col =
                    catalog.table("supplier").unwrap().schema.resolve(None, "s_name").unwrap();
                let old = rows[sel as usize % rows.len()].clone();
                let mut vals = old.values().to_vec();
                vals[name_col] = Value::str(format!("renamed {sel}"));
                db.apply_delta("supplier", &DeltaBatch::new(vec![Tuple::new(vals)], vec![old]))
                    .unwrap();
            }
            // Delete a supplier outright: the whole group disappears.
            1 => {
                let data = catalog.data("supplier").unwrap();
                let rows = data.rows();
                if rows.len() <= 2 {
                    return false; // keep the document non-trivial
                }
                let old = rows[sel as usize % rows.len()].clone();
                db.apply_delta("supplier", &DeltaBatch::new(vec![], vec![old])).unwrap();
            }
            // Insert a fresh supplier: a new group appears (with no
            // parts — the sorted outer union pads it).
            2 => {
                let data = catalog.data("supplier").unwrap();
                let rows = data.rows();
                if rows.is_empty() {
                    return false;
                }
                let schema = &catalog.table("supplier").unwrap().schema;
                let key_col = schema.resolve(None, "s_suppkey").unwrap();
                let name_col = schema.resolve(None, "s_name").unwrap();
                *next_key += 1;
                let mut vals = rows[sel as usize % rows.len()].values().to_vec();
                vals[key_col] = Value::Int(*next_key);
                vals[name_col] = Value::str(format!("inserted {}", *next_key));
                db.apply_delta("supplier", &DeltaBatch::new(vec![Tuple::new(vals)], vec![]))
                    .unwrap();
            }
            // Delete a partsupp row: a child element vanishes from an
            // otherwise-clean group (delta on the non-key join side).
            _ => {
                let data = catalog.data("partsupp").unwrap();
                let rows = data.rows();
                if rows.is_empty() {
                    return false;
                }
                let old = rows[sel as usize % rows.len()].clone();
                db.apply_delta("partsupp", &DeltaBatch::new(vec![], vec![old])).unwrap();
            }
        }
        true
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn incremental_republish_is_byte_identical_under_random_churn(
            script in mutation_script(),
        ) {
            let mut final_docs: Vec<String> = Vec::new();
            for (dop, batch) in [(1usize, 1usize), (1, 1024), (4, 1), (4, 1024)] {
                let db = Database::tpch(0.001).unwrap();
                let mut defaults = db.config();
                defaults.engine.dop = dop;
                defaults.engine.batch_size = batch;
                let server = Server::new(
                    db,
                    ServerConfig { workers: 2, queue_depth: 32, defaults, ..ServerConfig::default() },
                );
                let view = supplier_parts_view(server.database().catalog()).unwrap();
                let mut session = server.session();
                let mut oracle = server.session();
                oracle.set_republish_threshold(0.0);
                session.republish(&view, false).unwrap();
                // Prime the oracle too, so its per-mutation outcomes
                // below are dirty-fraction recomputes, not first-publish.
                oracle.republish(&view, false).unwrap();
                let mut next_key = 100_000i64;
                for &(op, sel) in &script {
                    let applied = apply_mutation(server.database(), op, sel, &mut next_key);
                    let (got, outcome) = session.republish(&view, false).unwrap();
                    let (want, oracle_outcome) = oracle.republish(&view, false).unwrap();
                    // Every mutation dirties at most two of ~10 root
                    // groups — far below the 0.5 threshold — so the
                    // session must splice; the threshold-0 oracle must
                    // recompute for the same delta. A guarded no-op
                    // leaves both sides clean.
                    if applied {
                        prop_assert!(
                            matches!(outcome, RepublishOutcome::Incremental { .. }),
                            "dop {} batch {}: ({}, {}) should splice, got: {}",
                            dop, batch, op, sel, outcome
                        );
                        prop_assert!(
                            matches!(
                                oracle_outcome,
                                RepublishOutcome::Full { reason: "dirty-fraction" }
                            ),
                            "threshold-0 oracle must recompute, got: {}",
                            oracle_outcome
                        );
                    } else {
                        prop_assert!(
                            matches!(outcome, RepublishOutcome::Clean),
                            "dop {} batch {}: no-op ({}, {}) should be clean, got: {}",
                            dop, batch, op, sel, outcome
                        );
                        prop_assert!(
                            matches!(oracle_outcome, RepublishOutcome::Clean),
                            "oracle saw changes after a no-op mutation, got: {}",
                            oracle_outcome
                        );
                    }
                    prop_assert_eq!(
                        &got, &want,
                        "dop {} batch {}: doc diverged after ({}, {}); session outcome: {}; \
                         oracle outcome: {}",
                        dop, batch, op, sel, outcome, oracle_outcome
                    );
                }
                let (doc, _) = session.republish(&view, false).unwrap();
                final_docs.push(doc);
            }
            // dop and batch size are invisible in the published bytes.
            for pair in final_docs.windows(2) {
                prop_assert_eq!(&pair[0], &pair[1], "dop/batch changed the document");
            }
        }
    }

    /// The fallback paths answer byte-identically too: mass churn above
    /// the dirty-fraction threshold recomputes, and the document it
    /// caches is a sound baseline for the next (small) delta.
    #[test]
    fn fallback_then_incremental_stays_byte_identical() {
        let server = Server::new(Database::tpch(0.001).unwrap(), ServerConfig::default());
        let view = supplier_parts_view(server.database().catalog()).unwrap();
        let mut session = server.session();
        session.republish(&view, false).unwrap();

        // Rename most suppliers: dirty fraction above the default 0.5.
        let db = server.database();
        let rows = db.catalog().data("supplier").unwrap().rows().to_vec();
        let name_col =
            db.catalog().table("supplier").unwrap().schema.resolve(None, "s_name").unwrap();
        let churn = (rows.len() * 4).div_ceil(5).max(1);
        let mut batch = DeltaBatch::default();
        for old in rows.into_iter().take(churn) {
            let mut vals = old.values().to_vec();
            vals[name_col] = Value::str("mass renamed");
            batch.deleted.push(old);
            batch.appended.push(Tuple::new(vals));
        }
        db.apply_delta("supplier", &batch).unwrap();

        let (got, outcome) = session.republish(&view, false).unwrap();
        assert!(
            matches!(outcome, RepublishOutcome::Full { reason: "dirty-fraction" }),
            "80% churn must fall back on dirty-fraction, got: {outcome}"
        );
        assert_eq!(
            got,
            db.publish(&view, false).unwrap(),
            "fallback path diverged; outcome: {outcome}"
        );

        // And the recomputed document is a good splice baseline.
        let one = db.catalog().data("supplier").unwrap().rows()[0].clone();
        let mut vals = one.values().to_vec();
        vals[name_col] = Value::str("small touch");
        db.apply_delta("supplier", &DeltaBatch::new(vec![Tuple::new(vals)], vec![one])).unwrap();
        let (got, outcome) = session.republish(&view, false).unwrap();
        assert!(
            matches!(outcome, RepublishOutcome::Incremental { .. }),
            "single-group churn should splice, got: {outcome}"
        );
        assert_eq!(
            got,
            db.publish(&view, false).unwrap(),
            "post-fallback splice diverged; outcome: {outcome}"
        );
    }
}
