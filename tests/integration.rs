//! Cross-crate integration tests: the full stack (SQL → binder →
//! optimizer → engine → tagger) against generated TPC-H data, plus the
//! figure-level checks from the paper.

use xmlpub::xml::workloads;
use xmlpub::{Database, LogicalPlan, OptimizerConfig, PartitionStrategy};

fn db(scale: f64) -> Database {
    Database::tpch(scale).expect("tpch catalog")
}

#[test]
fn figure8_workloads_agree_between_formulations_and_configs() {
    let base = db(0.002);
    let mut raw = db(0.002);
    raw.config_mut().skip_optimizer = true;
    let mut sorted = db(0.002);
    sorted.config_mut().engine.partition_strategy = PartitionStrategy::Sort;

    for w in workloads::figure8_workloads() {
        let optimized = base.sql(&w.gapply_sql).unwrap();
        let unoptimized = raw.sql(&w.gapply_sql).unwrap();
        let sort_part = sorted.sql(&w.gapply_sql).unwrap();
        assert!(
            optimized.bag_eq(&unoptimized),
            "{}: optimizer changed the result\n{}",
            w.name,
            optimized.bag_diff(&unoptimized)
        );
        assert!(optimized.bag_eq(&sort_part), "{}: partition strategy changed the result", w.name);
    }
}

#[test]
fn optimizer_every_single_rule_preserves_results() {
    // Queries chosen so that collectively every rule fires at least once.
    let queries = [
        workloads::selection_sweep_sql(1500.0),
        workloads::projection_sweep_sql(false),
        workloads::to_groupby_sweep_sql(),
        workloads::exists_sweep_sql(2000.0),
        workloads::aggregate_selection_sweep_sql(1500.0),
        workloads::invariant_grouping_sweep_sql(),
        workloads::q1().gapply_sql,
        workloads::q2().gapply_sql,
    ];
    let rules = [
        "select-into-pgq",
        "project-into-pgq",
        "select-before-gapply",
        "project-before-gapply",
        "gapply-to-groupby",
        "group-selection-exists",
        "group-selection-aggregate",
        "invariant-grouping",
        "select-pushdown",
    ];
    let mut database = db(0.001);
    let mut fired_total = 0;
    for sql in &queries {
        database.config_mut().skip_optimizer = true;
        let baseline = database.sql(sql).unwrap();
        for rule in rules {
            database.config_mut().skip_optimizer = false;
            database.config_mut().optimizer = OptimizerConfig::only(rule);
            database.config_mut().optimizer.cost_gate = false;
            let (_, log) = database.optimized_plan(sql).unwrap();
            fired_total += log.len();
            let out = database.sql(sql).unwrap();
            assert!(baseline.bag_eq(&out), "rule {rule} broke {sql}\n{}", baseline.bag_diff(&out));
        }
    }
    assert!(fired_total > 10, "rules barely fired ({fired_total} times)");
}

#[test]
fn default_optimizer_composes_all_rules_safely() {
    let database = db(0.001);
    let mut raw = db(0.001);
    raw.config_mut().skip_optimizer = true;
    for sql in [
        workloads::selection_sweep_sql(1200.0),
        workloads::exists_sweep_sql(1900.0),
        workloads::aggregate_selection_sweep_sql(1450.0),
        workloads::invariant_grouping_sweep_sql(),
        workloads::q3().gapply_sql,
        workloads::q4().gapply_sql,
    ] {
        let a = database.sql(&sql).unwrap();
        let b = raw.sql(&sql).unwrap();
        assert!(a.bag_eq(&b), "{sql}\n{}", a.bag_diff(&b));
    }
}

#[test]
fn invariant_grouping_actually_moves_gapply_below_the_join() {
    let database = db(0.001);
    let (plan, log) = database.optimized_plan(&workloads::invariant_grouping_sweep_sql()).unwrap();
    assert!(
        log.iter().any(|f| f.rule == "invariant-grouping"),
        "rule did not fire: {log:?}\n{}",
        plan.explain()
    );
    // After the rewrite, some join sits above a GApply.
    fn join_above_gapply(p: &LogicalPlan) -> bool {
        match p {
            LogicalPlan::Join { left, .. } => {
                left.any_node(&|n| matches!(n, LogicalPlan::GApply { .. }))
            }
            _ => p.children().iter().any(|c| join_above_gapply(c)),
        }
    }
    assert!(join_above_gapply(&plan), "{}", plan.explain());
}

#[test]
fn engine_counters_show_the_redundancy_argument() {
    // §2's argument made measurable: the classic Q1 scans the base
    // tables once per union branch; the gapply Q1 scans them once.
    let database = db(0.002);
    let w = workloads::q1();
    let (_, classic) = database.sql_with_stats(&w.classic_sql).unwrap();
    let (_, gapply) = database.sql_with_stats(&w.gapply_sql).unwrap();
    assert!(
        classic.rows_scanned >= 2 * gapply.rows_scanned,
        "classic {} vs gapply {}",
        classic.rows_scanned,
        gapply.rows_scanned
    );
}

#[test]
fn xml_publication_is_stable_across_configs() {
    let mut database = db(0.0005);
    let view = xmlpub::xml::supplier_parts_view(database.catalog()).unwrap();
    let a = database.publish(&view, true).unwrap();
    database.config_mut().engine.partition_strategy = PartitionStrategy::Sort;
    let b = database.publish(&view, true).unwrap();
    assert_eq!(a, b, "publishing must not depend on engine configuration");
    assert!(a.contains("<s_name>"));
}

#[test]
fn gapply_sql_round_trips_through_explain() {
    let database = db(0.001);
    for w in workloads::figure8_workloads() {
        let text = database.explain(&w.gapply_sql).unwrap();
        assert!(text.contains("GApply"), "{}: {text}", w.name);
    }
}

#[test]
fn client_simulation_equals_native_for_all_workloads() {
    use xmlpub::engine::client_sim::simulate_gapply;
    let database = db(0.001);
    for w in workloads::figure8_workloads() {
        let plan = database.plan(&w.gapply_sql).unwrap();
        fn find(p: &LogicalPlan) -> Option<(&LogicalPlan, &[usize], &LogicalPlan)> {
            if let LogicalPlan::GApply { input, group_cols, pgq } = p {
                return Some((input, group_cols, pgq));
            }
            p.children().iter().find_map(|c| find(c))
        }
        let (outer, cols, pgq) = find(&plan).expect("gapply");
        let native =
            database.execute_plan(&outer.clone().gapply(cols.to_vec(), pgq.clone())).unwrap().0;
        for strategy in [PartitionStrategy::Hash, PartitionStrategy::Sort] {
            let sim = simulate_gapply(database.catalog(), outer, cols, pgq, strategy).unwrap();
            assert!(
                sim.result.bag_eq(&native),
                "{} ({strategy:?}): {}",
                w.name,
                sim.result.bag_diff(&native)
            );
        }
    }
}
