//! The paper's queries, exactly as printed, end to end.
//!
//! §2 gives the sorted-outer-union SQL for Q1 and Q2; §3.1 gives the
//! gapply formulations. These tests run both texts (modulo whitespace)
//! against generated TPC-H data and check they agree, plus the §4.2
//! XQuery examples in their gapply lowering.

use xmlpub::{Database, Value};

fn db() -> Database {
    Database::tpch(0.001).unwrap()
}

/// §2's Q1 push-down, verbatim structure.
const Q1_CLASSIC: &str = "
    (select ps_suppkey, p_name, p_retailprice, null
     from partsupp, part
     where ps_partkey = p_partkey
     union all
     select ps_suppkey, null, null, avg(p_retailprice)
     from partsupp, part
     where ps_partkey = p_partkey
     group by ps_suppkey)
    order by ps_suppkey";

/// §3.1's Q1, with PGQ1 inlined (the paper defines it out of line).
const Q1_GAPPLY: &str = "
    select gapply(
        select p_name, p_retailprice, null from tmpSupp
        union all
        select null, null, avg(p_retailprice) from tmpSupp
    )
    from partsupp, part
    where ps_partkey = p_partkey
    group by ps_suppkey : tmpSupp";

/// §2's Q2 push-down with the paper's correlated subqueries (alias ps1 /
/// ps2 exactly as printed).
const Q2_CLASSIC: &str = "
    (select ps_suppkey, count(*), null
     from partsupp ps1, part
     where p_partkey = ps_partkey and p_retailprice >=
       (select avg(p_retailprice) from partsupp, part
        where p_partkey = ps_partkey and ps_suppkey = ps1.ps_suppkey)
     group by ps_suppkey
     union all
     select ps_suppkey, null, count(*)
     from partsupp ps2, part
     where p_partkey = ps_partkey and p_retailprice <
       (select avg(p_retailprice) from partsupp, part
        where p_partkey = ps_partkey and ps_suppkey = ps2.ps_suppkey)
     group by ps_suppkey)
    order by ps_suppkey";

/// §3.1's Q2 with PGQ2 inlined.
const Q2_GAPPLY: &str = "
    select gapply(
        select count(*), null from tmpSupp
        where p_retailprice >= (select avg(p_retailprice) from tmpSupp)
        union all
        select null, count(*) from tmpSupp
        where p_retailprice < (select avg(p_retailprice) from tmpSupp)
    )
    from partsupp, part
    where ps_partkey = p_partkey
    group by ps_suppkey : tmpSupp";

#[test]
fn paper_q1_texts_agree() {
    let db = db();
    let classic = db.sql(Q1_CLASSIC).unwrap();
    let gapply = db.sql(Q1_GAPPLY).unwrap();
    assert!(classic.bag_eq(&gapply), "{}", classic.bag_diff(&gapply));
    // 800 part rows + 10 average rows.
    assert_eq!(gapply.len(), 810);
}

#[test]
fn paper_q2_texts_agree() {
    let db = db();
    let classic = db.sql(Q2_CLASSIC).unwrap();
    let gapply = db.sql(Q2_GAPPLY).unwrap();
    // The classic text loses groups whose branch is empty (GROUP BY over
    // zero rows); with 80 parts per supplier both branches are always
    // populated here, so the bags agree exactly.
    assert!(classic.bag_eq(&gapply), "{}", classic.bag_diff(&gapply));
    assert_eq!(gapply.len(), 20);
    // Counts per supplier sum to the group size (80 parts each).
    let mut above = 0i64;
    let mut below = 0i64;
    for row in gapply.rows() {
        if let Some(v) = row.value(1).as_int() {
            above += v;
        }
        if let Some(v) = row.value(2).as_int() {
            below += v;
        }
    }
    assert_eq!(above + below, 800);
}

#[test]
fn section_4_2_exists_query_lowering() {
    // "For $s … Where some $p in $s/part satisfies $p/p_retailprice >
    // 9000 Return $s" — the gapply lowering returns whole groups.
    let db = db();
    let r = db
        .sql(
            "select gapply(select * from g where exists
                 (select 1 from g where p_retailprice > 2000))
             from partsupp, part where ps_partkey = p_partkey
             group by ps_suppkey : g",
        )
        .unwrap();
    // Every returned supplier does have such a part.
    let suppliers = r.distinct_values(0);
    for s in &suppliers {
        let has_expensive = r
            .rows()
            .iter()
            .filter(|t| t.value(0) == s)
            .any(|t| t.value(7).as_f64().unwrap_or(0.0) > 2000.0);
        assert!(has_expensive, "supplier {s} has no part > 2000");
    }
}

#[test]
fn section_4_2_aggregate_query_lowering() {
    // "Where avg($s/part/p_retailprice) > 10000 Return $s" (threshold
    // adjusted to the generated price domain).
    let db = db();
    let r = db
        .sql(
            "select gapply(select * from g where
                 (select avg(p_retailprice) from g) > 1500)
             from partsupp, part where ps_partkey = p_partkey
             group by ps_suppkey : g",
        )
        .unwrap();
    // Whole groups: every qualifying supplier contributes all 80 rows.
    if !r.is_empty() {
        let suppliers = r.distinct_values(0).len();
        assert_eq!(r.len(), suppliers * 80);
    }
}

#[test]
fn q1_output_is_taggable_when_sorted() {
    // §2's point: the classic Q1 output is clustered by ps_suppkey so a
    // constant-space tagger can consume it. Verify the clustering.
    let db = db();
    let r = db.sql(Q1_CLASSIC).unwrap();
    let mut seen: Vec<Value> = Vec::new();
    for row in r.rows() {
        let k = row.value(0).clone();
        match seen.last() {
            Some(last) if *last == k => {}
            _ => {
                assert!(!seen.contains(&k), "supplier {k} appears in two runs");
                seen.push(k);
            }
        }
    }
    assert_eq!(seen.len(), 10);
}
