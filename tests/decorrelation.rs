//! End-to-end checks of the scalar-aggregate decorrelation rewrite on
//! the paper's own classic formulations.

use xmlpub::xml::workloads;
use xmlpub::{Database, LogicalPlan};

#[test]
fn classic_q2_decorrelates_into_outer_join_groupby() {
    let db = Database::tpch(0.001).unwrap();
    let (plan, log) = db.optimized_plan(&workloads::q2().classic_sql).unwrap();
    assert!(
        log.iter().filter(|f| f.rule == "decorrelate-scalar-agg").count() >= 2,
        "both branches' subqueries should decorrelate: {log:?}"
    );
    assert!(
        !plan.any_node(&|p| matches!(p, LogicalPlan::Apply { .. })),
        "no Apply should survive:\n{}",
        plan.explain()
    );
    assert!(plan.any_node(&|p| matches!(p, LogicalPlan::LeftOuterJoin { .. })));
    assert!(plan.any_node(&|p| matches!(p, LogicalPlan::GroupBy { .. })));
}

#[test]
fn decorrelated_and_raw_classic_agree() {
    let db = Database::tpch(0.001).unwrap();
    let mut raw = Database::tpch(0.001).unwrap();
    raw.config_mut().skip_optimizer = true;
    for w in [workloads::q2(), workloads::q3()] {
        let a = db.sql(&w.classic_sql).unwrap();
        let b = raw.sql(&w.classic_sql).unwrap();
        assert!(a.bag_eq(&b), "{}: {}", w.name, a.bag_diff(&b));
    }
}

#[test]
fn decorrelation_leaves_gapply_queries_alone() {
    // Per-group applies read the relation-valued variable; decorrelating
    // them would plant a join inside the PGQ. The rule must decline.
    let db = Database::tpch(0.001).unwrap();
    let (plan, log) = db.optimized_plan(&workloads::q2().gapply_sql).unwrap();
    assert!(!log.iter().any(|f| f.rule == "decorrelate-scalar-agg"), "{log:?}");
    assert!(plan.any_node(&|p| matches!(p, LogicalPlan::GApply { .. })));
}

#[test]
fn decorrelation_work_reduction_is_measurable() {
    // Engine counters: decorrelated classic Q2 runs the aggregate once
    // per branch instead of once per (supplier, branch).
    let db = Database::tpch(0.002).unwrap();
    let mut raw = Database::tpch(0.002).unwrap();
    raw.config_mut().skip_optimizer = true;
    let (_, with_rule) = db.sql_with_stats(&workloads::q2().classic_sql).unwrap();
    let (_, without) = raw.sql_with_stats(&workloads::q2().classic_sql).unwrap();
    assert_eq!(with_rule.apply_inner_executions, 0, "no applies left");
    assert!(without.apply_inner_executions > 0);
    assert!(with_rule.rows_scanned < without.rows_scanned);
}
