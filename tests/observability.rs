//! Differential observability tests: tracing must be a pure observer.
//!
//! Two properties are pinned here:
//!
//! 1. **Results are untouched** — a traced run (metrics + spans on)
//!    returns bag-identical relations and *byte-identical* published
//!    XML versus an untraced run, at dop 1 and dop 4.
//! 2. **The span tree is deterministic** — after normalization (span
//!    ids, timings, and the dop-dependent `gapply.worker` spans
//!    elided), a traced run at dop 4 produces exactly the span tree of
//!    the dop-1 run.

use xmlpub::xml::supplier_parts_view;
use xmlpub::{BufferSink, Database, MetricsHandle, Observability, SpanRecord, TraceHandle};
use xmlpub_testkit::normalize::normalized_span_tree;

/// A gapply query the optimizer would rewrite away; run with
/// `skip_optimizer` so a real GApply (and its parallel path at dop > 1)
/// executes.
const Q: &str = "select gapply(select p_name from g where p_retailprice > 1200.0) \
                 from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g";

fn traced_db(dop: usize, skip_optimizer: bool) -> (Database, BufferSink) {
    let mut db = Database::tpch(0.001).unwrap();
    db.config_mut().engine.dop = dop;
    db.config_mut().skip_optimizer = skip_optimizer;
    let sink = BufferSink::new();
    db.set_observability(Observability {
        metrics: MetricsHandle::new_registry(),
        tracer: TraceHandle::new(Box::new(sink.clone())),
    });
    (db, sink)
}

fn tree_of(sink: &BufferSink) -> String {
    normalized_span_tree(&sink.contents()).expect("trace output must parse")
}

#[test]
fn traced_query_results_and_span_tree_are_dop_invariant() {
    let mut untraced = Database::tpch(0.001).unwrap();
    untraced.config_mut().skip_optimizer = true;
    let baseline = untraced.sql(Q).unwrap();

    let mut trees = Vec::new();
    for dop in [1usize, 4] {
        let (db, sink) = traced_db(dop, true);
        let traced = db.sql(Q).unwrap();
        assert!(traced.bag_eq(&baseline), "dop={dop}:\n{}", traced.bag_diff(&baseline));
        trees.push(tree_of(&sink));
    }
    assert_eq!(trees[0], trees[1], "span tree differs between dop 1 and dop 4");
    // The normalized tree still shows the lifecycle and the operators.
    let tree = &trees[0];
    for needle in ["query", "parse", "execute", "op:GApply"] {
        assert!(tree.contains(needle), "missing {needle:?} in:\n{tree}");
    }
}

#[test]
fn traced_publish_is_byte_identical_and_dop_invariant() {
    let untraced = Database::tpch(0.001).unwrap();
    let view = supplier_parts_view(untraced.catalog()).unwrap();
    let golden = untraced.publish(&view, true).unwrap();

    let mut trees = Vec::new();
    for dop in [1usize, 4] {
        let (db, sink) = traced_db(dop, false);
        let view = supplier_parts_view(db.catalog()).unwrap();
        let traced = db.publish(&view, true).unwrap();
        assert_eq!(traced, golden, "traced publish diverges at dop={dop}");
        trees.push(tree_of(&sink));
    }
    assert_eq!(trees[0], trees[1], "publish span tree differs between dop 1 and dop 4");
    let tree = &trees[0];
    for needle in ["publish", "optimize", "execute", "tag", "op:"] {
        assert!(tree.contains(needle), "missing {needle:?} in:\n{tree}");
    }
}

/// Optimizer rule firings appear as `rule:<name>` spans under
/// `optimize`, and the per-rule counters agree with the span count.
#[test]
fn rule_firings_trace_and_count_consistently() {
    let (db, sink) = traced_db(1, false);
    db.sql(
        "select gapply(select avg(p_retailprice) from g) \
         from partsupp, part where ps_partkey = p_partkey group by ps_suppkey : g",
    )
    .unwrap();
    let records = SpanRecord::parse_all(&sink.contents()).unwrap();
    let rule_spans = records.iter().filter(|r| r.name.starts_with("rule:")).count();
    assert!(rule_spans > 0, "expected rule firings in the trace");
    let snap = db.observability().metrics.snapshot().unwrap();
    let fired: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("optimizer.rule_fired."))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(fired, rule_spans as u64, "rule counters disagree with rule spans");
}

/// Metrics alone (no tracer) must also leave results untouched — and
/// the registry totals must be identical across dop, because per-worker
/// folds are order-independent.
#[test]
fn metrics_rows_counters_are_dop_invariant() {
    let mut counts = Vec::new();
    for dop in [1usize, 4] {
        let mut db = Database::tpch(0.001).unwrap();
        db.config_mut().engine.dop = dop;
        db.config_mut().skip_optimizer = true;
        // profile_ops so the engine-level counters record.
        db.config_mut().engine.profile_ops = true;
        db.set_observability(Observability::with_metrics());
        db.sql(Q).unwrap();
        let snap = db.observability().metrics.snapshot().unwrap();
        counts.push((snap.counter("engine.rows_out"), snap.counter("engine.batches")));
    }
    assert_eq!(counts[0].0, counts[1].0, "rows_out differs across dop: {counts:?}");
    assert!(counts[0].0.unwrap_or(0) > 0);
}
