//! Case driver: configuration, seeds, rejection budget, failure report.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (the subset of upstream's knobs used here).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches upstream's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw a fresh case.
    Reject,
    /// `prop_assert!`-style failure with a message.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Mirror of upstream's `TestCaseError::reject` constructor.
    pub fn reject(_reason: impl Into<String>) -> Self {
        TestCaseError::Reject
    }
}

/// Drives the case loop for one `proptest!` test function.
pub struct Runner {
    config: ProptestConfig,
    test_name: &'static str,
    base_seed: u64,
    successes: u32,
    attempts: u32,
    current_seed: u64,
}

/// FNV-1a, used to derive a stable per-test base seed from its name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Runner {
    /// Build a runner for the named test.
    pub fn new(config: ProptestConfig, test_name: &'static str) -> Self {
        let base_seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s
                .trim()
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
            Err(_) => fnv1a(test_name.as_bytes()),
        };
        Runner { config, test_name, base_seed, successes: 0, attempts: 0, current_seed: 0 }
    }

    /// Hand out the RNG for the next case, or `None` once enough cases
    /// have succeeded. Panics if `prop_assume!` rejects too much.
    pub fn next_case(&mut self) -> Option<StdRng> {
        if self.successes >= self.config.cases {
            return None;
        }
        // Budget of rejected cases, proportional to the target count —
        // same spirit as upstream's max_global_rejects.
        let max_attempts = self.config.cases.saturating_mul(16).max(1024);
        if self.attempts >= max_attempts {
            panic!(
                "{}: gave up after {} attempts with only {}/{} cases passing \
                 prop_assume! — loosen the assumption or the generators",
                self.test_name, self.attempts, self.successes, self.config.cases
            );
        }
        self.current_seed = self.base_seed ^ splitmix(self.attempts as u64);
        self.attempts += 1;
        Some(StdRng::seed_from_u64(self.current_seed))
    }

    /// Record one case's outcome; panics with a reproducible report on
    /// failure. `rendered_inputs` is the `Debug` form of the generated
    /// arguments.
    pub fn finish_case(
        &mut self,
        outcome: std::thread::Result<Result<(), TestCaseError>>,
        rendered_inputs: &str,
    ) {
        match outcome {
            Ok(Ok(())) => self.successes += 1,
            Ok(Err(TestCaseError::Reject)) => {}
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!(
                    "{}: property failed at case {} (seed {:#018x}):\n{}\nwith inputs:\n  {}",
                    self.test_name, self.successes, self.current_seed, msg, rendered_inputs
                );
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                panic!(
                    "{}: case {} panicked (seed {:#018x}): {}\nwith inputs:\n  {}",
                    self.test_name, self.successes, self.current_seed, msg, rendered_inputs
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_exactly_the_configured_number_of_cases() {
        let mut runner = Runner::new(ProptestConfig::with_cases(10), "t::exact");
        let mut ran = 0;
        while let Some(_rng) = runner.next_case() {
            ran += 1;
            runner.finish_case(Ok(Ok(())), "");
        }
        assert_eq!(ran, 10);
    }

    #[test]
    fn rejections_do_not_count_as_successes() {
        let mut runner = Runner::new(ProptestConfig::with_cases(5), "t::rejects");
        let mut ran = 0;
        while let Some(_rng) = runner.next_case() {
            ran += 1;
            if ran <= 3 {
                runner.finish_case(Ok(Err(TestCaseError::Reject)), "");
            } else {
                runner.finish_case(Ok(Ok(())), "");
            }
        }
        assert_eq!(ran, 8, "3 rejected + 5 passing");
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failure_panics_with_report() {
        let mut runner = Runner::new(ProptestConfig::with_cases(5), "t::fails");
        let _rng = runner.next_case().unwrap();
        runner.finish_case(Ok(Err(TestCaseError::fail("boom"))), "x = 1");
    }

    #[test]
    fn seeds_differ_between_cases_but_are_stable() {
        let mut a = Runner::new(ProptestConfig::with_cases(3), "t::seeds");
        let mut b = Runner::new(ProptestConfig::with_cases(3), "t::seeds");
        for _ in 0..3 {
            a.next_case().unwrap();
            b.next_case().unwrap();
            assert_eq!(a.current_seed, b.current_seed);
            a.finish_case(Ok(Ok(())), "");
            b.finish_case(Ok(Ok(())), "");
        }
    }
}
