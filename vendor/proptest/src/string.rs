//! `&'static str` regex-lite patterns as string strategies.
//!
//! Supports the pattern subset the workspace's tests use: literal
//! characters, `.`, character classes with ranges (`[a-z0-9_]`), and the
//! repetition operators `{m,n}`, `{n}`, `*`, `+`, `?` applied to the
//! preceding atom. Anything fancier (alternation, groups, anchors) is
//! out of scope and rejected with a panic at generation time.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Character pool for `.` — diverse enough to stress lexers (ASCII
/// printable plus whitespace, quotes and a little non-ASCII).
const DOT_POOL: &[char] = &[
    'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '1', '9', ' ', '\t', '\n', '_', '-', '+', '*',
    '/', '%', '(', ')', '[', ']', '{', '}', '<', '>', '=', '!', '"', '\'', '`', ',', '.', ';', ':',
    '?', '@', '#', '$', '&', '|', '\\', '~', '^', 'é', 'λ', '€', '中',
];

#[derive(Clone, Debug)]
enum Atom {
    Literal(char),
    Dot,
    Class(Vec<(char, char)>),
}

impl Atom {
    fn pick(&self, rng: &mut StdRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::Dot => DOT_POOL[rng.gen_range(0..DOT_POOL.len())],
            Atom::Class(ranges) => {
                // Pick a range weighted by its width so every member of
                // the class is equally likely.
                let total: u32 = ranges.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
                let mut k = rng.gen_range(0..total);
                for (lo, hi) in ranges {
                    let width = *hi as u32 - *lo as u32 + 1;
                    if k < width {
                        return char::from_u32(*lo as u32 + k).expect("valid class char");
                    }
                    k -= width;
                }
                unreachable!("weighted pick within total")
            }
        }
    }
}

#[derive(Clone, Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Dot,
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let c = chars.next().unwrap_or_else(|| {
                        panic!("unterminated character class in pattern {pattern:?}")
                    });
                    if c == ']' {
                        break;
                    }
                    let lo = if c == '\\' {
                        chars
                            .next()
                            .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"))
                    } else {
                        c
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated range in pattern {pattern:?}"));
                        assert!(hi != ']', "unterminated range in pattern {pattern:?}");
                        assert!(lo <= hi, "inverted range {lo}-{hi} in pattern {pattern:?}");
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty character class in pattern {pattern:?}");
                Atom::Class(ranges)
            }
            '\\' => {
                let escaped = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                Atom::Literal(match escaped {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                })
            }
            '(' | ')' | '|' | '^' | '$' => {
                panic!("unsupported regex feature {c:?} in pattern {pattern:?} (vendored proptest supports literals, '.', classes and repetition only)")
            }
            other => Atom::Literal(other),
        };
        // Optional repetition suffix.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut body = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    body.push(c);
                }
                match body.split_once(',') {
                    Some((lo, hi)) => {
                        let lo: usize = lo.trim().parse().unwrap_or_else(|_| {
                            panic!("bad repetition {body:?} in pattern {pattern:?}")
                        });
                        let hi: usize = hi.trim().parse().unwrap_or_else(|_| {
                            panic!("bad repetition {body:?} in pattern {pattern:?}")
                        });
                        (lo, hi)
                    }
                    None => {
                        let n: usize = body.trim().parse().unwrap_or_else(|_| {
                            panic!("bad repetition {body:?} in pattern {pattern:?}")
                        });
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted repetition in pattern {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let n = rng.gen_range(piece.min..=piece.max);
            for _ in 0..n {
                out.push(piece.atom.pick(rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn class_with_repetition() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = "[a-z]{0,8}".generate(&mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn exact_repetition_and_literals() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let s = "ab[0-9]{3}".generate(&mut rng);
            assert_eq!(s.len(), 5);
            assert!(s.starts_with("ab"));
            assert!(s[2..].chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn dot_produces_varied_output() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..100 {
            distinct.extend(".{0,120}".generate(&mut rng).chars());
        }
        assert!(distinct.len() > 20, "dot pool should be diverse");
    }

    #[test]
    fn single_member_class() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            assert_eq!("[q]".generate(&mut rng), "q");
        }
    }
}
