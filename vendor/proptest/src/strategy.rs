//! The [`Strategy`] trait and core combinators.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest, a strategy here produces the value directly
/// (no value tree / shrinking); determinism comes from the seeded
/// [`StdRng`] the runner hands to each case.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `f` returns true (by re-drawing; gives
    /// up after a bounded number of attempts and returns the last draw).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, f }
    }

    /// Build recursive structures: `self` is the leaf strategy and
    /// `recurse` wraps an inner strategy into a branch strategy. `depth`
    /// bounds the nesting; `_desired_size` and `_branch_size` are
    /// accepted for API compatibility.
    fn prop_recursive<F, S2>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
        S2: Strategy<Value = Self::Value> + 'static,
    {
        let mut cur = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(cur.clone()).boxed();
            // 1/3 leaf at each level keeps generated structures small on
            // average while still reaching full depth regularly.
            cur = Union::new(vec![cur, deeper.clone(), deeper]).boxed();
        }
        cur
    }

    /// Type-erase into a clonable, shareable strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe view of a strategy, used by [`BoxedStrategy`].
trait ErasedStrategy<V> {
    fn generate_erased(&self, rng: &mut StdRng) -> V;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn generate_erased(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy (clonable and shareable,
/// which `prop_recursive` relies on).
pub struct BoxedStrategy<V>(Arc<dyn ErasedStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        self.0.generate_erased(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..64 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 64 draws in a row", self.whence);
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone() }
    }
}

impl<V: 'static> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------
// Ranges as strategies
// ---------------------------------------------------------------------

impl<T: SampleUniform + 'static> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + 'static> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

// ---------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

// ---------------------------------------------------------------------
// `any::<T>()`
// ---------------------------------------------------------------------

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite, human-scale values; NaN/inf handling is exercised by
        // dedicated tests, not by the generic generator.
        rng.gen_range(-1.0e6..1.0e6)
    }
}

/// Strategy for the whole domain of `T` (see [`Arbitrary`]).
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Entry point mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
