//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small, deterministic property-testing engine exposing the
//! subset of the proptest 1.x API its tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive`, `boxed`;
//! * [`strategy::Just`], ranges, tuples, and `&'static str` regex-lite
//!   string patterns as strategies;
//! * [`collection::vec`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assume!`] macros;
//! * [`test_runner::ProptestConfig`] (`with_cases`).
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its case number, seed and
//!   `Debug`-rendered inputs; re-running is deterministic, so the case
//!   reproduces exactly. (The differential oracle in `crates/lint`
//!   implements domain-aware plan shrinking on top of this.)
//! * Generation is driven by the vendored xoshiro `StdRng`; seeds are
//!   derived from the test's module path and name, overridable with the
//!   `PROPTEST_SEED` environment variable.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The main test-definition macro.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0i64..100, v in collection::vec(any::<bool>(), 0..8)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #![allow(unused_mut)]
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::Runner::new(
                    config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                while let Some(mut rng) = runner.next_case() {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = || {
                        let mut parts: Vec<String> = Vec::new();
                        $(parts.push(format!(
                            concat!(stringify!($arg), " = {:?}"),
                            &$arg
                        ));)+
                        parts.join(",\n  ")
                    };
                    let rendered = inputs();
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            Ok(())
                        }),
                    );
                    runner.finish_case(outcome, &rendered);
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a proptest body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case (does not count as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
