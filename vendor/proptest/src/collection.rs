//! Collection strategies (`proptest::collection`).

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Admissible lengths for a generated collection.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range for collection strategy");
        SizeRange { min: r.start, max_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (min, max_inclusive) = r.into_inner();
        assert!(min <= max_inclusive, "empty size range for collection strategy");
        SizeRange { min, max_inclusive }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Mirror of `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
