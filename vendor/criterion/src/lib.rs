//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so benchmarks run
//! against this minimal harness instead: it executes each benchmark
//! closure a fixed number of iterations after a short warm-up and prints
//! mean wall-clock time per iteration. There is no statistical analysis,
//! outlier detection, or HTML report — the numbers are indicative only,
//! but the benchmark *code* stays identical to what real criterion
//! would run.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Handed to each benchmark closure; drives the timing loop.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Time `f` over this bencher's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up outside the timed region.
        std_black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.total = start.elapsed();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark runs (upstream
    /// semantics differ — there it is the number of *samples* — but the
    /// intent "spend less time on this heavy group" carries over).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: self.sample_size as u64, total: Duration::ZERO };
        f(&mut b);
        let per_iter = b.total.as_secs_f64() / b.iters.max(1) as f64;
        println!(
            "{}/{}: {:>12.3} µs/iter ({} iters, {:.3} s total)",
            self.name,
            id.as_ref(),
            per_iter * 1e6,
            b.iters,
            b.total.as_secs_f64()
        );
        self
    }

    /// End the group (printing is already done per benchmark).
    pub fn finish(&mut self) {}
}

/// Top-level handle mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 20, _criterion: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Mirror of `criterion_group!`: defines a function running the listed
/// benchmark functions against a shared `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirror of `criterion_main!`: a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
