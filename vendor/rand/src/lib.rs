//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *small, deterministic* subset of the `rand` 0.8 API it
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over primitive integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! well-studied, fast PRNG. It is **not** the same stream as upstream
//! `StdRng` (ChaCha12), which only matters if exact upstream
//! reproducibility of seeded data is required; every use in this
//! workspace treats the stream as an arbitrary deterministic source.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open or inclusive
/// range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open(low: Self, high: Self, rng: &mut dyn RngCore) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive(low: Self, high: Self, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(low: Self, high: Self, rng: &mut dyn RngCore) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = bounded(span, rng);
                (low as i128 + v as i128) as $t
            }
            fn sample_inclusive(low: Self, high: Self, rng: &mut dyn RngCore) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = bounded(span, rng);
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(low: Self, high: Self, rng: &mut dyn RngCore) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                low + (high - low) * unit
            }
            fn sample_inclusive(low: Self, high: Self, rng: &mut dyn RngCore) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                low + (high - low) * unit
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Unbiased bounded sample in `[0, span)` (`span > 0`) by rejection.
fn bounded(span: u128, rng: &mut dyn RngCore) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64();
    }
    let span = span as u64;
    // Rejection sampling over the largest multiple of `span`.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from this range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(low, high, rng)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// A random bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(1..=7u32);
            assert!((1..=7).contains(&u));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(0..3usize);
            assert!(i < 3);
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
